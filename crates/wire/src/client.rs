//! Blocking wire client: one TCP connection, synchronous calls plus
//! explicit pipelining primitives for throughput-oriented callers.
//!
//! ## Failure model
//!
//! The client is built for an impolite network. Every socket operation is
//! bounded by a [`ClientConfig`] timeout, and the **idempotent**
//! synchronous calls ([`WireClient::ping`], [`WireClient::list_models`],
//! [`WireClient::stats`], [`WireClient::health`], [`WireClient::infer`])
//! are retried over a fresh connection with capped exponential backoff —
//! but only while it is provably safe: a call is retried **only if no
//! byte of its reply has arrived and no pipelined request is
//! outstanding**. Once reply bytes exist, the server may have executed
//! the request and the stream position is unknown, so the connection is
//! hard-closed instead and the error is returned. Pipelined
//! [`WireClient::send_infer`] traffic is **never** retried — replaying a
//! stream with unknown server progress could pair replies with the wrong
//! requests.
//!
//! Any framing or decode error likewise hard-closes the connection: a
//! desynchronized stream can never return a wrong-request reply, it can
//! only fail typed.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use circnn_serve::ServeStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::WireError;
use crate::frame::{self, HealthInfo, ModelInfo, Reply, Request, Tag, MAX_PAYLOAD};

/// Timeout and retry policy of a [`WireClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection (per resolved address);
    /// `None` blocks indefinitely.
    pub connect_timeout: Option<Duration>,
    /// Bound on waiting for reply bytes; `None` blocks indefinitely.
    pub read_timeout: Option<Duration>,
    /// Bound on writing request bytes (a peer that stops reading cannot
    /// wedge the caller); `None` blocks indefinitely.
    pub write_timeout: Option<Duration>,
    /// Retry budget for idempotent synchronous calls: how many times a
    /// safely-retryable failure is retried over a fresh connection before
    /// surfacing as [`WireError::RetriesExhausted`]. `0` disables retries.
    pub retries: u32,
    /// First backoff delay; each retry doubles it (capped at
    /// [`ClientConfig::backoff_cap`]) and applies jitter in `[0.5, 1.5)`.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff delay.
    pub backoff_cap: Duration,
    /// Seed of the deterministic jitter stream (two clients with the same
    /// seed back off identically — tests stay reproducible).
    pub retry_seed: u64,
    /// Protocol version to speak: `3` (request-id framing — replies may
    /// complete out of order, the id pairs them) or `2` (legacy: no ids,
    /// replies strictly in request order). Both the threaded and the
    /// event server answer either on the same port.
    pub protocol: u8,
}

impl Default for ClientConfig {
    /// 10 s connect, 30 s read/write, 2 retries backing off from 10 ms
    /// (capped at 1 s).
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            retry_seed: 0x5eed_c1bc,
            protocol: frame::VERSION,
        }
    }
}

/// What kind of pipelined request one outstanding slot holds — receives
/// must redeem slots in send order and with the matching `recv_*` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    Infer,
    Segment {
        row_start: u32,
        row_end: u32,
        batch: u32,
    },
}

/// One pipelined request awaiting its reply.
struct PendingReq {
    tag: Tag,
    kind: PendingKind,
}

/// Counts the bytes pulled through a reader, so the retry logic can
/// distinguish "the reply never started" (safe to retry an idempotent
/// call) from "the reply was cut off mid-frame" (the server may have
/// executed the request; never retry).
struct TrackedReader<'a> {
    inner: &'a mut TcpStream,
    progressed: &'a mut bool,
}

impl Read for TrackedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n > 0 {
            *self.progressed = true;
        }
        Ok(n)
    }
}

/// A blocking client over one connection.
///
/// Simple callers use the synchronous round-trip methods
/// ([`WireClient::infer`], [`WireClient::list_models`], …). Because the
/// server answers **in arrival order per connection**, a caller can also
/// pipeline: issue several [`WireClient::send_infer`]s, then collect the
/// matching [`WireClient::recv_infer`]s in the same order — that is what
/// keeps the server's batcher fed from a single socket.
///
/// See [`ClientConfig`] for the timeout/retry failure model; configure
/// it with [`WireClient::connect_with`].
pub struct WireClient {
    stream: TcpStream,
    /// Reused frame buffer (encode and decode share it).
    buf: Vec<u8>,
    cfg: ClientConfig,
    /// Resolved peer addresses, kept for reconnection.
    addrs: Vec<SocketAddr>,
    /// Set once the stream can no longer be trusted (I/O failure, torn or
    /// malformed frame). A broken stream is never read again; the next
    /// idempotent call reconnects.
    broken: bool,
    /// Pipelined requests sent but not yet received, in send order.
    /// While nonempty, no call is retried (a replay could re-pair
    /// replies with requests).
    pending: VecDeque<PendingReq>,
    /// Replies that arrived out of order (v3 only), parked until their
    /// `recv_*` call claims them by id.
    ready: HashMap<u64, Reply>,
    /// Next request id (v3). Monotonic per connection; ids of in-flight
    /// requests are unique, which is all the pairing needs.
    next_id: u64,
    /// Deterministic backoff jitter.
    rng: StdRng,
    /// Whether the last receive attempt saw any reply bytes.
    reply_started: bool,
}

impl core::fmt::Debug for WireClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WireClient")
            .field("peer", &self.stream.peer_addr().ok())
            .field("broken", &self.broken)
            .field("in_flight", &self.pending.len())
            .finish()
    }
}

impl WireClient {
    /// Connects to a [`WireServer`](crate::WireServer) with the default
    /// [`ClientConfig`] — bounded connect/read/write and a small retry
    /// budget, so a black-holed address fails in seconds instead of
    /// hanging forever.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with an explicit timeout/retry policy.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; fails with [`WireError::Malformed`] if
    /// `addr` resolves to no addresses.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Self, WireError> {
        if !(frame::MIN_VERSION..=frame::VERSION).contains(&cfg.protocol) {
            return Err(WireError::Malformed("unsupported protocol version"));
        }
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = Self::open_stream(&addrs, &cfg)?;
        let rng = StdRng::seed_from_u64(cfg.retry_seed);
        Ok(Self {
            stream,
            buf: Vec::new(),
            cfg,
            addrs,
            broken: false,
            pending: VecDeque::new(),
            ready: HashMap::new(),
            next_id: 1,
            rng,
            reply_started: false,
        })
    }

    /// Opens and configures one TCP stream, trying every resolved address.
    fn open_stream(addrs: &[SocketAddr], cfg: &ClientConfig) -> Result<TcpStream, WireError> {
        let mut last: Option<io::Error> = None;
        for addr in addrs {
            let attempt = match cfg.connect_timeout {
                Some(t) => TcpStream::connect_timeout(addr, t),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    // Frames are single contiguous writes; coalescing them
                    // behind Nagle only adds latency.
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(cfg.read_timeout);
                    let _ = stream.set_write_timeout(cfg.write_timeout);
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(match last {
            Some(e) => WireError::Io(e),
            None => WireError::Malformed("address resolved to no socket addresses"),
        })
    }

    /// Marks the stream untrustworthy and closes it. After a framing or
    /// decode failure the stream position is unknown — reading on could
    /// pair a stale reply with the wrong request, so the connection dies
    /// instead.
    fn hard_close(&mut self) {
        self.broken = true;
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Replaces a broken stream with a freshly connected one. Any
    /// pipelined requests outstanding on the old stream are lost (their
    /// [`WireClient::recv_infer`]s fail typed).
    fn reconnect(&mut self) -> Result<(), WireError> {
        let stream = Self::open_stream(&self.addrs, &self.cfg)?;
        self.stream = stream;
        self.broken = false;
        self.pending.clear();
        self.ready.clear();
        Ok(())
    }

    /// Whether `e` is safe to retry: the failure must be at the transport
    /// level, before any reply byte arrived, with no pipelined request
    /// outstanding. Anything else either already has an answer (a typed
    /// remote error) or has unknown server-side progress.
    fn retryable(&self, e: &WireError) -> bool {
        self.pending.is_empty() && !self.reply_started && matches!(e, WireError::Io(_))
    }

    /// Sleeps the capped exponential backoff delay for retry `attempt`
    /// (1-based), with deterministic jitter in `[0.5, 1.5)`.
    fn backoff(&mut self, attempt: u32) {
        let base = self.cfg.backoff_base.as_secs_f64();
        let cap = self.cfg.backoff_cap.as_secs_f64();
        let exp = base * f64::powi(2.0, attempt.saturating_sub(1).min(31) as i32);
        let jitter = 0.5 + self.rng.gen::<f64>();
        let delay = (exp * jitter).min(cap);
        if delay > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(delay));
        }
    }

    /// One request/reply round trip with no retry.
    fn attempt(&mut self, req: &Request) -> Result<Reply, WireError> {
        if self.broken {
            self.reconnect()?;
        }
        let tag = self.send(req)?;
        self.recv(tag)
    }

    /// Round-trips an **idempotent** request, retrying safely-retryable
    /// failures over fresh connections within the configured budget.
    fn call_idempotent(&mut self, req: &Request) -> Result<Reply, WireError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.attempt(req) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    if !self.retryable(&e) || self.cfg.retries == 0 {
                        return Err(e);
                    }
                    if attempts > self.cfg.retries {
                        return Err(WireError::RetriesExhausted {
                            attempts,
                            last: Box::new(e),
                        });
                    }
                    self.backoff(attempts);
                }
            }
        }
    }

    /// The reply was structurally valid but of the wrong kind — the stream
    /// is answering some other request, i.e. desynchronized. Hard-close so
    /// it can never mis-pair another reply.
    fn desync(&mut self, why: &'static str) -> WireError {
        self.hard_close();
        WireError::Malformed(why)
    }

    /// Fresh id envelope for one outgoing request: a unique id under
    /// protocol v3, nothing under v2.
    fn fresh_tag(&mut self) -> Tag {
        (self.cfg.protocol >= 3).then(|| {
            let id = self.next_id;
            self.next_id += 1;
            id
        })
    }

    /// Encodes and writes one request, returning the id envelope it was
    /// sent under (the reply must echo it).
    fn send(&mut self, req: &Request) -> Result<Tag, WireError> {
        // Oversized requests would be rejected by the peer anyway; fail
        // before writing a frame that desynchronizes the stream. The name
        // bound also keeps the encoder's u16 string prefix exact (the
        // registry rejects names over MAX_NAME_LEN at registration, so a
        // longer name could never match a model).
        let model_len = match req {
            Request::Stats { model }
            | Request::Infer { model, .. }
            | Request::InferBatch { model, .. }
            | Request::InferSegment { model, .. } => model.len(),
            _ => 0,
        };
        if model_len > crate::MAX_NAME_LEN {
            return Err(WireError::Malformed("model name exceeds MAX_NAME_LEN"));
        }
        if let Request::Infer { model, input, .. }
        | Request::InferBatch { model, input, .. }
        | Request::InferSegment { model, input, .. } = req
        {
            // 32 bytes cover every fixed field of these frames.
            let payload = input.len() * 4 + model.len() + 32;
            if payload > MAX_PAYLOAD {
                return Err(WireError::Oversized {
                    len: payload,
                    max: MAX_PAYLOAD,
                });
            }
        }
        let tag = self.fresh_tag();
        frame::encode_request_tagged(tag, req, &mut self.buf);
        // The new round trip has not seen reply bytes yet.
        self.reply_started = false;
        if let Err(e) = frame::write_frame(&mut self.stream, &self.buf) {
            // Part of a frame may be on the wire; the stream cannot carry
            // another request.
            self.broken = true;
            return Err(e);
        }
        Ok(tag)
    }

    /// Receives the reply for `expected`. Under v3, replies for *other*
    /// outstanding pipelined requests may arrive first (out-of-order
    /// completion); they are parked in the ready stash by id. A reply
    /// whose id matches nothing outstanding means the stream is
    /// answering some other conversation — hard-close.
    fn recv(&mut self, expected: Tag) -> Result<Reply, WireError> {
        loop {
            let mut progressed = false;
            let read = {
                let mut tracked = TrackedReader {
                    inner: &mut self.stream,
                    progressed: &mut progressed,
                };
                frame::read_frame(&mut tracked, &mut self.buf)
            };
            self.reply_started |= progressed;
            if let Err(e) = read {
                // EOF, timeout or a malformed header: either way the
                // stream cannot be re-synchronized.
                self.hard_close();
                return Err(e);
            }
            let (tag, reply) = match frame::decode_reply_tagged(&self.buf) {
                Ok(ok) => ok,
                Err(e) => {
                    // A structurally invalid reply payload: close rather
                    // than guess where the next frame starts.
                    self.hard_close();
                    return Err(e);
                }
            };
            if tag == expected {
                return match reply {
                    Reply::Error { code, message } => Err(WireError::Remote { code, message }),
                    reply => Ok(reply),
                };
            }
            match tag {
                // An id belonging to another outstanding request: park
                // its reply (typed errors included — the owning `recv_*`
                // surfaces them) and keep reading for ours.
                Some(id)
                    if self.pending.iter().any(|p| p.tag == Some(id))
                        && !self.ready.contains_key(&id) =>
                {
                    self.ready.insert(id, reply);
                }
                // An untagged error while expecting an id: the server
                // could not attribute the failure to a request (e.g. a
                // malformed frame verdict) and is about to hang up.
                None if expected.is_some() => {
                    if let Reply::Error { code, message } = reply {
                        self.hard_close();
                        return Err(WireError::Remote { code, message });
                    }
                    return Err(self.desync("reply missing its request id"));
                }
                _ => return Err(self.desync("reply carries an unexpected request id")),
            }
        }
    }

    /// Liveness round trip (idempotent: retried per [`ClientConfig`]).
    ///
    /// # Errors
    ///
    /// Socket/protocol errors, or the server's typed error.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.call_idempotent(&Request::Ping)? {
            Reply::Pong => Ok(()),
            _ => Err(self.desync("expected Pong")),
        }
    }

    /// Enumerates the registered models (name, geometry, queue depth).
    /// Idempotent: retried per [`ClientConfig`].
    ///
    /// # Errors
    ///
    /// Socket/protocol errors, or the server's typed error.
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>, WireError> {
        match self.call_idempotent(&Request::ListModels)? {
            Reply::ModelList(models) => Ok(models),
            _ => Err(self.desync("expected ModelList")),
        }
    }

    /// Fetches the server health snapshot: registry size plus per-tenant
    /// queue depths and shed/rejected/expired/panic counters. Idempotent:
    /// retried per [`ClientConfig`].
    ///
    /// # Errors
    ///
    /// Socket/protocol errors, or the server's typed error.
    pub fn health(&mut self) -> Result<HealthInfo, WireError> {
        match self.call_idempotent(&Request::Health)? {
            Reply::Health(health) => Ok(health),
            _ => Err(self.desync("expected Health")),
        }
    }

    /// A cheap readiness probe: one `Health` round trip bounded by
    /// `timeout`, **no retry budget consumed** — a single attempt that
    /// either answers within the bound or fails. This is what a router's
    /// health poller calls to decide whether a replica is routable: a
    /// down or wedged replica must cost one bounded probe, not a retry
    /// loop's worth of backoff.
    ///
    /// The configured [`ClientConfig::read_timeout`] is restored after
    /// the probe, so regular calls on the same connection are unaffected.
    ///
    /// # Errors
    ///
    /// Socket/protocol errors (including the probe timeout, surfaced as
    /// [`WireError::Io`]), or the server's typed error.
    pub fn probe_health(&mut self, timeout: Duration) -> Result<HealthInfo, WireError> {
        if self.broken {
            self.reconnect()?;
        }
        let _ = self.stream.set_read_timeout(Some(timeout));
        let result = self.send(&Request::Health).and_then(|tag| self.recv(tag));
        // Restore the configured timeout (harmless on a hard-closed
        // stream; the next reconnect re-applies the config anyway).
        let _ = self.stream.set_read_timeout(self.cfg.read_timeout);
        match result? {
            Reply::Health(health) => Ok(health),
            _ => Err(self.desync("expected Health")),
        }
    }

    /// Fetches one model's per-tenant serving statistics. Idempotent:
    /// retried per [`ClientConfig`].
    ///
    /// # Errors
    ///
    /// Socket/protocol errors, or `Remote { code: UnknownModel, .. }`.
    pub fn stats(&mut self, model: &str) -> Result<ServeStats, WireError> {
        let req = Request::Stats {
            model: model.to_string(),
        };
        match self.call_idempotent(&req)? {
            Reply::Stats { stats, .. } => Ok(stats),
            _ => Err(self.desync("expected Stats")),
        }
    }

    /// One synchronous inference round trip without a deadline.
    ///
    /// Retried per [`ClientConfig`] **only while provably safe**: no
    /// reply byte arrived and no pipelined request is outstanding (the
    /// server executes a request at most once per delivery; a retry after
    /// reply bytes could double-execute, so it hard-closes instead).
    ///
    /// # Errors
    ///
    /// Socket/protocol errors, or the server's typed error (unknown
    /// model, bad input length, queue full, …).
    pub fn infer(&mut self, model: &str, input: &[f32]) -> Result<Vec<f32>, WireError> {
        self.infer_deadline(model, input, None)
    }

    /// One synchronous inference round trip with an optional deadline
    /// budget: the server must dispatch within `budget` of receipt or
    /// answer `Remote { code: DeadlineExceeded, .. }`.
    ///
    /// The wire carries microseconds; a nonzero sub-microsecond budget
    /// rounds **up** to 1 µs (rounding down would silently mean "no
    /// deadline").
    ///
    /// # Errors
    ///
    /// As [`WireClient::infer`].
    pub fn infer_deadline(
        &mut self,
        model: &str,
        input: &[f32],
        budget: Option<Duration>,
    ) -> Result<Vec<f32>, WireError> {
        let req = Request::Infer {
            model: model.to_string(),
            deadline_micros: budget.map_or(0, |b| (b.as_micros() as u64).max(1)),
            input: input.to_vec(),
        };
        match self.call_idempotent(&req)? {
            Reply::Infer { output } => Ok(output),
            _ => Err(self.desync("expected Infer")),
        }
    }

    /// A synchronous client-side batch: `input` is row-major
    /// `[batch, n]`; the reply is row-major `[batch, m]`. Not retried
    /// (one call fans out to `batch` scheduler submissions).
    ///
    /// # Errors
    ///
    /// As [`WireClient::infer`].
    pub fn infer_batch(
        &mut self,
        model: &str,
        batch: usize,
        input: &[f32],
        budget: Option<Duration>,
    ) -> Result<Vec<f32>, WireError> {
        let req = Request::InferBatch {
            model: model.to_string(),
            deadline_micros: budget.map_or(0, |b| (b.as_micros() as u64).max(1)),
            batch: batch as u32,
            input: input.to_vec(),
        };
        match self.attempt(&req)? {
            Reply::InferBatch { output, .. } => Ok(output),
            _ => Err(self.desync("expected InferBatch")),
        }
    }

    /// One scatter leg of a sharded request: asks the server's registered
    /// row-segment for logical output rows `row_start .. row_end` of the
    /// shared `[batch, n]` input. The reply's echoed range and length are
    /// verified here, so a stitching router can never attribute a segment
    /// to the wrong rows — a mismatch hard-closes the connection and
    /// fails typed.
    ///
    /// Idempotent (the segment computation is pure), so it is retried per
    /// [`ClientConfig`] under the same provably-safe conditions as
    /// [`WireClient::infer`].
    ///
    /// # Errors
    ///
    /// Socket/protocol errors, or the server's typed error (unknown
    /// model, range mismatch, bad input length, queue full, …).
    pub fn infer_segment(
        &mut self,
        model: &str,
        row_start: usize,
        row_end: usize,
        batch: usize,
        input: &[f32],
        budget: Option<Duration>,
    ) -> Result<Vec<f32>, WireError> {
        let req = Request::InferSegment {
            model: model.to_string(),
            deadline_micros: budget.map_or(0, |b| (b.as_micros() as u64).max(1)),
            row_start: row_start as u32,
            row_end: row_end as u32,
            batch: batch as u32,
            input: input.to_vec(),
        };
        match self.call_idempotent(&req)? {
            Reply::InferSegment {
                row_start: rs,
                row_end: re,
                batch: b,
                output,
            } => {
                let rows = row_end.saturating_sub(row_start);
                if (rs as usize, re as usize, b as usize) != (row_start, row_end, batch)
                    || output.len() != batch * rows
                {
                    return Err(self.desync("segment reply does not match the request"));
                }
                Ok(output)
            }
            _ => Err(self.desync("expected InferSegment")),
        }
    }

    /// Pipelining: sends one inference request without waiting for the
    /// reply. Collect replies with [`WireClient::recv_infer`] **in send
    /// order** (the per-connection ordering guarantee).
    ///
    /// Pipelined requests are **never retried**: after a connection
    /// failure the outstanding tail is lost and each pending
    /// [`WireClient::recv_infer`] fails typed. (Replaying a pipeline
    /// would re-pair replies with the wrong requests.)
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn send_infer(
        &mut self,
        model: &str,
        input: &[f32],
        budget: Option<Duration>,
    ) -> Result<(), WireError> {
        self.send_pipelined(
            &Request::Infer {
                model: model.to_string(),
                deadline_micros: budget.map_or(0, |b| (b.as_micros() as u64).max(1)),
                input: input.to_vec(),
            },
            PendingKind::Infer,
        )
    }

    /// Pipelining: sends one segment request without waiting for the
    /// reply — how a router scatters one request across shards from a
    /// single thread. Collect with [`WireClient::recv_infer_segment`] in
    /// send order. Never retried, like [`WireClient::send_infer`].
    ///
    /// # Errors
    ///
    /// Socket/protocol errors.
    pub fn send_infer_segment(
        &mut self,
        model: &str,
        row_start: usize,
        row_end: usize,
        batch: usize,
        input: &[f32],
        budget: Option<Duration>,
    ) -> Result<(), WireError> {
        self.send_pipelined(
            &Request::InferSegment {
                model: model.to_string(),
                deadline_micros: budget.map_or(0, |b| (b.as_micros() as u64).max(1)),
                row_start: row_start as u32,
                row_end: row_end as u32,
                batch: batch as u32,
                input: input.to_vec(),
            },
            PendingKind::Segment {
                row_start: row_start as u32,
                row_end: row_end as u32,
                batch: batch as u32,
            },
        )
    }

    /// Shared pipelined-send path: reconnects when safe, refuses when a
    /// pipeline is stranded on a broken stream.
    fn send_pipelined(&mut self, req: &Request, kind: PendingKind) -> Result<(), WireError> {
        if self.broken && self.pending.is_empty() {
            // Safe to transparently reconnect: nothing is outstanding.
            self.reconnect()?;
        }
        if self.broken {
            return Err(WireError::Malformed(
                "connection broken with pipelined requests outstanding",
            ));
        }
        let tag = self.send(req)?;
        self.pending.push_back(PendingReq { tag, kind });
        Ok(())
    }

    /// Pipelining: receives the next inference reply (matching the oldest
    /// outstanding [`WireClient::send_infer`]).
    ///
    /// # Errors
    ///
    /// As [`WireClient::infer`]; additionally fails typed (instead of
    /// blocking) when no pipelined request is outstanding — including
    /// after a reconnect dropped the outstanding tail.
    pub fn recv_infer(&mut self) -> Result<Vec<f32>, WireError> {
        match self.recv_pipelined(PendingKind::Infer)? {
            (_, Reply::Infer { output }) => Ok(output),
            _ => Err(self.desync("expected Infer")),
        }
    }

    /// Pipelining: receives the next segment reply (matching the oldest
    /// outstanding [`WireClient::send_infer_segment`]). The echoed row
    /// range and length are verified exactly as in
    /// [`WireClient::infer_segment`].
    ///
    /// # Errors
    ///
    /// As [`WireClient::infer_segment`]; additionally fails typed when no
    /// pipelined segment request is outstanding.
    pub fn recv_infer_segment(&mut self) -> Result<Vec<f32>, WireError> {
        let want = PendingKind::Segment {
            row_start: 0,
            row_end: 0,
            batch: 0,
        };
        let (kind, reply) = self.recv_pipelined(want)?;
        let PendingKind::Segment {
            row_start,
            row_end,
            batch,
        } = kind
        else {
            unreachable!("recv_pipelined matched the slot kind");
        };
        match reply {
            Reply::InferSegment {
                row_start: rs,
                row_end: re,
                batch: b,
                output,
            } => {
                let rows = (row_end as usize).saturating_sub(row_start as usize);
                if (rs, re, b) != (row_start, row_end, batch)
                    || output.len() != batch as usize * rows
                {
                    return Err(self.desync("segment reply does not match the request"));
                }
                Ok(output)
            }
            _ => Err(self.desync("expected InferSegment")),
        }
    }

    /// Shared pipelined-receive path: pops the oldest outstanding slot
    /// (which must match `kind`'s variant), then claims its reply from
    /// the ready stash or the socket. Returns the slot's recorded kind
    /// alongside the reply (the segment receive verifies the echo
    /// against it).
    fn recv_pipelined(&mut self, kind: PendingKind) -> Result<(PendingKind, Reply), WireError> {
        let Some(front) = self.pending.front() else {
            return Err(WireError::Malformed("no pipelined request is outstanding"));
        };
        if core::mem::discriminant(&front.kind) != core::mem::discriminant(&kind) {
            return Err(WireError::Malformed(
                "pipelined replies must be received in send order and kind",
            ));
        }
        let PendingReq { tag, kind } = self.pending.pop_front().expect("front exists");
        if let Some(id) = tag {
            if let Some(reply) = self.ready.remove(&id) {
                return match reply {
                    Reply::Error { code, message } => Err(WireError::Remote { code, message }),
                    reply => Ok((kind, reply)),
                };
            }
        }
        self.recv(tag).map(|reply| (kind, reply))
    }

    /// Pipelined requests sent but not yet received.
    pub fn pipelined(&self) -> usize {
        self.pending.len()
    }
}
