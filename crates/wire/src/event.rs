//! Event-driven TCP front-end: a fixed pool of I/O threads multiplexing
//! every connection over a readiness loop, instead of two threads per
//! connection.
//!
//! ## Why
//!
//! The thread-per-connection [`WireServer`](crate::WireServer) is simple
//! and fast at tens of connections, but each connection costs two OS
//! threads — at thousands of mostly-idle connections the scheduler burns
//! its time context-switching parked readers, and the thread cap becomes
//! the connection cap. This front-end holds 10k+ connections on
//! [`EventConfig::io_threads`] threads: each runs an epoll (or poll)
//! readiness loop over nonblocking sockets and drives a small state
//! machine per connection.
//!
//! ## Per-connection state machine
//!
//! ```text
//!            readable                    frame complete
//!   ┌──────┐ bytes    ┌────────────┐ decode   ┌──────────┐
//!   │ idle ├─────────►│ assembling ├─────────►│ dispatch │
//!   └──▲───┘          └────────────┘          └────┬─────┘
//!      │     all replies flushed                   │ tenant queue full
//!      │  ┌─────────┐ completion  ┌───────────┐    ▼ (Block policy)
//!      └──┤ writing │◄────────────┤ in-flight │ ┌────────┐
//!         └─────────┘             └─────▲─────┘ │ parked │ READABLE off,
//!                                       └───────┴────────┘ re-offered on
//!                                                           a short tick
//! ```
//!
//! * **Reads** go through a [`frame::FrameAssembler`]: a frame may arrive
//!   split at any byte boundary over any number of readable events.
//! * **Dispatch** hands the decoded request to an [`EventDispatch`] with
//!   a [`ReplyTicket`]; completions come back through a queue + wakeup
//!   pipe, so worker threads never touch a socket.
//! * **Writes** are buffered; on `WouldBlock` the loop registers
//!   `WRITABLE` interest and resumes when the socket drains.
//! * **Backpressure**: a parked request (tenant queue full under the
//!   `Block` overload policy) or a full pipeline
//!   ([`EventConfig::max_pipeline`]) pauses `READABLE` interest — the
//!   kernel socket buffer fills and the client stalls, exactly like the
//!   threaded server's blocking reader, without holding a thread.
//!
//! ## Reply ordering
//!
//! Protocol-v2 requests (no id) are answered **in arrival order** per
//! connection — the ordering shim existing clients rely on. Protocol-v3
//! requests carry a client-chosen `u64` id echoed in the reply and may
//! complete **out of order**: a slow tenant's request no longer blocks a
//! fast tenant's reply behind it on the same connection.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use circnn_serve::{ResponseHandle, ServeError};
use polling::{Event, Interest, Poller, WakeReader};

use crate::error::{ErrorCode, WireError};
use crate::frame::{self, FrameAssembler, Reply, Request, Tag};
use crate::registry::ModelRegistry;
use crate::server::{budget_of, error_reply, unknown_model};

/// Event front-end knobs.
#[derive(Debug, Clone)]
pub struct EventConfig {
    /// Number of I/O threads (readiness loops). Connections are assigned
    /// round-robin at accept and stay on their loop for life. Clamped to
    /// at least 1.
    pub io_threads: usize,
    /// Per-connection in-flight request cap: once this many requests
    /// await replies, the loop stops reading that connection until
    /// replies flush (same bound as the threaded server's reply queue).
    pub max_pipeline: usize,
    /// Idle timeout: a connection that delivers no bytes for this long is
    /// closed by the loop's timer wheel — a slow-loris peer trickling a
    /// half frame costs one slab slot, never a thread. `None` disables.
    pub idle_timeout: Option<Duration>,
    /// Hard cap on concurrent connections across all loops; beyond it,
    /// accepts are immediately closed (the peer sees EOF).
    pub max_connections: usize,
}

impl Default for EventConfig {
    /// 2 I/O threads, 256 in-flight per connection, 120 s idle timeout,
    /// 4096 connections.
    fn default() -> Self {
        Self {
            io_threads: 2,
            max_pipeline: 256,
            idle_timeout: Some(Duration::from_secs(120)),
            max_connections: 4096,
        }
    }
}

/// How quickly a loop with parked (backpressured) requests re-offers
/// them to the dispatcher. Parked requests have no drain notification —
/// the loop polls on this tick instead of blocking indefinitely.
const PARK_RETRY_TICK: Duration = Duration::from_millis(1);

/// What [`EventDispatch::dispatch`] did with a request.
pub enum Dispatched {
    /// The dispatcher owns the request; it will complete (or drop) the
    /// ticket when the reply is ready.
    Accepted,
    /// The dispatcher cannot take the request right now (downstream queue
    /// full under a blocking policy). Both the request and the ticket
    /// come back; the loop parks the request, pauses reads on its
    /// connection, and re-offers it on the next tick.
    Busy(Request, ReplyTicket),
}

/// A request sink for the event loop: the bridge between socket-facing
/// I/O threads and whatever executes requests.
///
/// Implementations must **never block**: `dispatch` runs on an I/O
/// thread that is multiplexing thousands of connections. Answer inline
/// (control frames), hand off to a queue/scheduler and complete the
/// ticket later from any thread, or return [`Dispatched::Busy`] to
/// backpressure the connection.
pub trait EventDispatch: Send + Sync + 'static {
    /// Handles one decoded request. The ticket routes the reply back to
    /// the right connection and request slot; dropping it without
    /// completing answers a typed `Internal` error (no request is ever
    /// silently swallowed).
    fn dispatch(&self, req: Request, ticket: ReplyTicket) -> Dispatched;
}

/// One completed reply travelling from a worker back to its loop.
struct Completion {
    slot: usize,
    conn_id: u64,
    seq: u64,
    reply: Reply,
}

/// The half of a loop's state that other threads touch: completed
/// replies, connections handed over from the accepting loop, and the
/// wakeup pipe that makes the loop notice either.
struct LoopShared {
    completions: Mutex<Vec<Completion>>,
    injected: Mutex<Vec<TcpStream>>,
    waker: polling::Waker,
}

impl LoopShared {
    fn complete(&self, slot: usize, conn_id: u64, seq: u64, reply: Reply) {
        self.completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Completion {
                slot,
                conn_id,
                seq,
                reply,
            });
        self.waker.wake();
    }
}

/// Routes one reply to the request it answers. Completing is
/// fire-and-forget from any thread; if the connection died meanwhile the
/// reply is discarded (the `conn_id` generation check makes a recycled
/// slot unmistakable for its previous tenant).
pub struct ReplyTicket {
    shared: Arc<LoopShared>,
    slot: usize,
    conn_id: u64,
    seq: u64,
    armed: bool,
}

impl core::fmt::Debug for ReplyTicket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReplyTicket")
            .field("slot", &self.slot)
            .field("conn_id", &self.conn_id)
            .field("seq", &self.seq)
            .finish()
    }
}

impl ReplyTicket {
    /// Delivers the reply for this request and consumes the ticket.
    pub fn complete(mut self, reply: Reply) {
        self.armed = false;
        self.shared
            .complete(self.slot, self.conn_id, self.seq, reply);
    }

    /// Defuses the ticket without answering — only for the `Busy` path,
    /// where the loop removes the in-flight entry itself.
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for ReplyTicket {
    /// A dropped ticket still answers: the client gets a typed `Internal`
    /// error instead of a reply that never comes (mirrors the serve
    /// layer's drop-cancel guarantee).
    fn drop(&mut self) {
        if self.armed {
            self.armed = false;
            self.shared.complete(
                self.slot,
                self.conn_id,
                self.seq,
                Reply::Error {
                    code: ErrorCode::Internal,
                    message: "request dropped by the dispatcher without a reply".into(),
                },
            );
        }
    }
}

/// State shared by every loop thread and the server handle.
struct Global {
    dispatch: Arc<dyn EventDispatch>,
    cfg: EventConfig,
    stop: AtomicBool,
    conn_count: AtomicUsize,
    next_conn_id: AtomicU64,
    rr: AtomicUsize,
    loops: Vec<Arc<LoopShared>>,
}

/// One request awaiting its reply (or, once `reply` is set, awaiting its
/// turn to be encoded — a v2 entry must wait for every earlier entry).
struct InFlight {
    seq: u64,
    tag: Tag,
    reply: Option<Reply>,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Generation stamp: completions carry it so a reply for a closed
    /// connection can never reach the slot's next occupant.
    conn_id: u64,
    asm: FrameAssembler,
    /// Buffered outgoing bytes; `wbuf[wpos..]` is unsent.
    wbuf: Vec<u8>,
    wpos: usize,
    inflight: VecDeque<InFlight>,
    next_seq: u64,
    /// A decoded request the dispatcher refused (`Busy`): re-offered on
    /// the park tick; while set, the connection is not read.
    parked: Option<(Tag, Request)>,
    last_activity: Instant,
    /// Stop reading, flush what is owed, then close (protocol error).
    closing: bool,
    /// Peer half-closed its write side; drain replies, then close.
    read_eof: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    /// Whether the loop should pull more requests off this connection.
    fn accepts_input(&self, max_pipeline: usize) -> bool {
        !self.closing && self.parked.is_none() && self.inflight.len() < max_pipeline
    }
}

/// The event-driven serving front-end over a shared [`ModelRegistry`]
/// (or any [`EventDispatch`]).
///
/// Speaks protocol v2 and v3 on the same port: v2 clients get replies in
/// arrival order, v3 clients get id-tagged replies as they complete.
/// [`EventServer::shutdown`] wakes every loop through its pipe and joins
/// them — no timeout-based teardown.
pub struct EventServer {
    addr: SocketAddr,
    global: Arc<Global>,
    threads: Vec<JoinHandle<()>>,
}

impl core::fmt::Debug for EventServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventServer")
            .field("addr", &self.addr)
            .field("io_threads", &self.threads.len())
            .finish()
    }
}

impl EventServer {
    /// Binds a listener and starts the I/O loops, dispatching to the
    /// registry's scheduler. Bind to port 0 for an ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        cfg: EventConfig,
    ) -> Result<Self, WireError> {
        Self::bind_with_dispatcher(addr, Arc::new(RegistryDispatch { registry }), cfg)
    }

    /// Binds with a custom request sink — how the shard router reuses
    /// this loop for its own fan-out logic.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind.
    pub fn bind_with_dispatcher(
        addr: impl ToSocketAddrs,
        dispatch: Arc<dyn EventDispatch>,
        cfg: EventConfig,
    ) -> Result<Self, WireError> {
        let cfg = EventConfig {
            io_threads: cfg.io_threads.max(1),
            max_pipeline: cfg.max_pipeline.max(1),
            max_connections: cfg.max_connections.max(1),
            ..cfg
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mut loops = Vec::with_capacity(cfg.io_threads);
        let mut wake_readers = Vec::with_capacity(cfg.io_threads);
        for _ in 0..cfg.io_threads {
            let (waker, reader) = polling::waker()?;
            loops.push(Arc::new(LoopShared {
                completions: Mutex::new(Vec::new()),
                injected: Mutex::new(Vec::new()),
                waker,
            }));
            wake_readers.push(reader);
        }
        let global = Arc::new(Global {
            dispatch,
            cfg,
            stop: AtomicBool::new(false),
            conn_count: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(1),
            rr: AtomicUsize::new(0),
            loops,
        });
        let mut listener = Some(listener);
        let threads = wake_readers
            .into_iter()
            .enumerate()
            .map(|(index, wake_rx)| {
                let global = Arc::clone(&global);
                // The accept socket lives on loop 0; other loops receive
                // their connections through the injection queue.
                let listener = listener.take();
                std::thread::Builder::new()
                    .name(format!("circnn-wire-ev{index}"))
                    .spawn(move || run_loop(&global, index, &wake_rx, listener.as_ref()))
                    .expect("spawning an event-loop thread")
            })
            .collect();
        Ok(Self {
            addr,
            global,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently held across all loops.
    pub fn connection_count(&self) -> usize {
        self.global.conn_count.load(Ordering::SeqCst)
    }

    /// Stops the loops and closes every connection. Deterministic: each
    /// loop is woken through its pipe and joined — no second-long write
    /// timeouts on the teardown path.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.global.stop.store(true, Ordering::SeqCst);
        for l in &self.global.loops {
            l.waker.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EventServer {
    /// Dropping without [`EventServer::shutdown`] still closes everything.
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Token of the wakeup pipe in each loop's poller.
const TOKEN_WAKER: usize = usize::MAX;
/// Token of the accept socket (loop 0 only).
const TOKEN_LISTENER: usize = usize::MAX - 1;

/// Everything one readiness loop owns.
struct IoLoop<'a> {
    global: &'a Global,
    shared: &'a Arc<LoopShared>,
    index: usize,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Lazy idle-deadline heap: entries are (deadline, slot, conn_id);
    /// a popped entry whose connection has been active since is pushed
    /// back with the refreshed deadline instead of closing it.
    timers: BinaryHeap<Reverse<(Instant, usize, u64)>>,
    /// Scratch for encoding one reply frame.
    scratch: Vec<u8>,
    /// Scratch for socket reads.
    rdbuf: Vec<u8>,
}

fn run_loop(global: &Global, index: usize, wake_rx: &WakeReader, listener: Option<&TcpListener>) {
    let Ok(poller) = Poller::new() else { return };
    if poller
        .register(wake_rx.raw_fd(), TOKEN_WAKER, Interest::READABLE)
        .is_err()
    {
        return;
    }
    if let Some(l) = listener {
        if poller
            .register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)
            .is_err()
        {
            return;
        }
    }
    let mut lp = IoLoop {
        global,
        shared: &global.loops[index],
        index,
        poller,
        conns: Vec::new(),
        free: Vec::new(),
        timers: BinaryHeap::new(),
        scratch: Vec::new(),
        rdbuf: vec![0u8; 64 * 1024],
    };
    let mut events: Vec<Event> = Vec::new();
    while !global.stop.load(Ordering::SeqCst) {
        let timeout = lp.next_timeout();
        let _ = lp.poller.wait(&mut events, timeout);
        if global.stop.load(Ordering::SeqCst) {
            break;
        }
        let mut accept_ready = false;
        for i in 0..events.len() {
            let ev = events[i];
            match ev.token {
                TOKEN_WAKER => wake_rx.drain(),
                TOKEN_LISTENER => accept_ready = true,
                slot => lp.drive(slot),
            }
        }
        if accept_ready {
            lp.accept_burst(listener.expect("listener events only on loop 0"));
        }
        lp.adopt_injected();
        lp.apply_completions();
        lp.retry_parked();
        lp.expire_idle();
    }
    // Teardown: close every connection this loop holds. In-flight
    // completions still in the queue are dropped with it; their tickets
    // were already consumed, and the sockets are gone anyway.
    for slot in 0..lp.conns.len() {
        lp.close(slot);
    }
}

impl IoLoop<'_> {
    /// Poll timeout: the nearest idle deadline, tightened to the park
    /// tick while any request is parked (parked requests have no drain
    /// notification), unbounded otherwise.
    fn next_timeout(&self) -> Option<Duration> {
        let mut timeout = None;
        if self
            .conns
            .iter()
            .flatten()
            .any(|c| c.parked.is_some() && !c.closing)
        {
            timeout = Some(PARK_RETRY_TICK);
        }
        if let Some(&Reverse((at, _, _))) = self.timers.peek() {
            let until = at.saturating_duration_since(Instant::now());
            timeout = Some(timeout.map_or(until, |t: Duration| t.min(until)));
        }
        timeout
    }

    /// Accepts until `WouldBlock`, spreading connections round-robin over
    /// the loops.
    fn accept_burst(&mut self, listener: &TcpListener) {
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            // At capacity: hang up instead of admitting (the peer sees an
            // immediate EOF), same contract as the threaded server.
            if self.global.conn_count.load(Ordering::SeqCst) >= self.global.cfg.max_connections {
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            self.global.conn_count.fetch_add(1, Ordering::SeqCst);
            let nloops = self.global.loops.len();
            let target = self.global.rr.fetch_add(1, Ordering::Relaxed) % nloops;
            if target == self.index {
                self.adopt(stream);
            } else {
                let peer = &self.global.loops[target];
                peer.injected
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(stream);
                peer.waker.wake();
            }
        }
    }

    /// Registers connections handed over by the accepting loop.
    fn adopt_injected(&mut self) {
        let streams: Vec<TcpStream> = std::mem::take(
            &mut *self
                .shared
                .injected
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for stream in streams {
            self.adopt(stream);
        }
    }

    /// Brings one connection under this loop's poller.
    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            self.global.conn_count.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let conn_id = self.global.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if self
            .poller
            .register(stream.as_raw_fd(), slot, Interest::READABLE)
            .is_err()
        {
            let _ = stream.shutdown(Shutdown::Both);
            self.free.push(slot);
            self.global.conn_count.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let now = Instant::now();
        self.conns[slot] = Some(Conn {
            stream,
            conn_id,
            asm: FrameAssembler::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: VecDeque::new(),
            next_seq: 0,
            parked: None,
            last_activity: now,
            closing: false,
            read_eof: false,
            interest: Interest::READABLE,
        });
        if let Some(idle) = self.global.cfg.idle_timeout {
            self.timers.push(Reverse((now + idle, slot, conn_id)));
        }
    }

    /// Routes completed replies to their in-flight entries, then drives
    /// the touched connections (encode + flush).
    fn apply_completions(&mut self) {
        let batch: Vec<Completion> = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        let mut touched = Vec::new();
        for c in batch {
            let Some(conn) = self.conns.get_mut(c.slot).and_then(Option::as_mut) else {
                continue; // connection closed before the reply arrived
            };
            if conn.conn_id != c.conn_id {
                continue; // slot recycled: reply belongs to a dead connection
            }
            if let Some(entry) = conn.inflight.iter_mut().find(|e| e.seq == c.seq) {
                entry.reply = Some(c.reply);
                touched.push(c.slot);
            }
        }
        touched.dedup();
        for slot in touched {
            self.drive(slot);
        }
    }

    /// Re-offers parked requests (the park tick).
    fn retry_parked(&mut self) {
        for slot in 0..self.conns.len() {
            let needs = matches!(&self.conns[slot], Some(c) if c.parked.is_some());
            if needs {
                self.drive(slot);
            }
        }
    }

    /// Closes connections idle past the deadline. Lazy: a popped timer
    /// whose connection saw traffic re-arms at the refreshed deadline.
    fn expire_idle(&mut self) {
        let Some(idle) = self.global.cfg.idle_timeout else {
            return;
        };
        let now = Instant::now();
        while let Some(&Reverse((at, slot, conn_id))) = self.timers.peek() {
            if at > now {
                break;
            }
            self.timers.pop();
            let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
                continue;
            };
            if conn.conn_id != conn_id {
                continue;
            }
            let deadline = conn.last_activity + idle;
            if deadline <= now {
                self.close(slot);
            } else {
                self.timers.push(Reverse((deadline, slot, conn_id)));
            }
        }
    }

    /// Runs one connection's state machine as far as it can go, then
    /// updates poller interest — the single entry point for readiness
    /// events, completions and park retries alike.
    fn drive(&mut self, slot: usize) {
        // Take the connection out of the slab while working on it: the
        // state machine needs `&mut Conn` alongside the loop's poller and
        // scratch buffers.
        let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let keep = self.progress(slot, &mut conn);
        if !keep {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.free.push(slot);
            self.global.conn_count.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        // Interest reflects what the state machine is waiting for:
        // readable while it accepts input, writable while bytes are
        // queued.
        let want = Interest {
            readable: !conn.read_eof && conn.accepts_input(self.global.cfg.max_pipeline),
            writable: conn.wpos < conn.wbuf.len(),
        };
        if want != conn.interest {
            if self
                .poller
                .reregister(conn.stream.as_raw_fd(), slot, want)
                .is_err()
            {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
                let _ = conn.stream.shutdown(Shutdown::Both);
                self.free.push(slot);
                self.global.conn_count.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            conn.interest = want;
        }
        self.conns[slot] = Some(conn);
    }

    /// Closes and frees one connection unconditionally.
    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.free.push(slot);
            self.global.conn_count.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// The state machine: unpark, decode, dispatch, read, encode, flush.
    /// Returns `false` when the connection should close.
    fn progress(&mut self, slot: usize, conn: &mut Conn) -> bool {
        let max_pipeline = self.global.cfg.max_pipeline;
        loop {
            let mut advanced = false;
            // Re-offer a parked request before reading more: ordering
            // within the connection is preserved because nothing is
            // decoded past a parked request.
            if !conn.closing && conn.inflight.len() < max_pipeline {
                if let Some((tag, req)) = conn.parked.take() {
                    match self.try_dispatch(slot, conn, tag, req) {
                        Some(back) => conn.parked = Some(back),
                        None => advanced = true,
                    }
                }
            }
            // Decode and dispatch every complete frame already buffered.
            while conn.accepts_input(max_pipeline) {
                let decoded = match conn.asm.next_frame() {
                    Ok(Some(frame)) => frame::decode_request_tagged(frame),
                    Ok(None) => break,
                    Err(e) => Err(e),
                };
                advanced = true;
                match decoded {
                    Ok((tag, req)) => {
                        if let Some(back) = self.try_dispatch(slot, conn, tag, req) {
                            conn.parked = Some(back);
                        }
                    }
                    // Strict rejection, same as the threaded server: a
                    // typed Malformed reply, drain what is owed, hang up.
                    Err(e) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.inflight.push_back(InFlight {
                            seq,
                            tag: None,
                            reply: Some(Reply::Error {
                                code: ErrorCode::Malformed,
                                message: e.to_string(),
                            }),
                        });
                        conn.closing = true;
                    }
                }
            }
            // Pull more bytes while the machine accepts input.
            if !conn.read_eof && conn.accepts_input(max_pipeline) {
                match conn.stream.read(&mut self.rdbuf) {
                    Ok(0) => {
                        conn.read_eof = true;
                        advanced = true;
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        conn.asm.push(&self.rdbuf[..n]);
                        advanced = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => advanced = true,
                    Err(_) => return false,
                }
            }
            if !advanced {
                break;
            }
        }
        self.encode_ready(conn);
        if !flush_writes(conn) {
            return false;
        }
        // A draining connection closes once everything owed is on the
        // wire. Bytes left over after EOF (a torn trailing frame) are
        // fine to discard — there is no request in them to answer.
        let drained =
            conn.inflight.is_empty() && conn.parked.is_none() && conn.wpos >= conn.wbuf.len();
        !((conn.closing || conn.read_eof) && drained)
    }

    /// Registers one in-flight entry and offers the request to the
    /// dispatcher. Returns the request back if the dispatcher is busy.
    fn try_dispatch(
        &mut self,
        slot: usize,
        conn: &mut Conn,
        tag: Tag,
        req: Request,
    ) -> Option<(Tag, Request)> {
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.inflight.push_back(InFlight {
            seq,
            tag,
            reply: None,
        });
        let ticket = ReplyTicket {
            shared: Arc::clone(self.shared),
            slot,
            conn_id: conn.conn_id,
            seq,
            armed: true,
        };
        match self.global.dispatch.dispatch(req, ticket) {
            Dispatched::Accepted => None,
            Dispatched::Busy(req, ticket) => {
                ticket.disarm();
                // The entry just pushed is still the back: completions
                // are applied by this thread, never synchronously inside
                // `dispatch`.
                debug_assert_eq!(conn.inflight.back().map(|e| e.seq), Some(seq));
                conn.inflight.pop_back();
                Some((tag, req))
            }
        }
    }

    /// Moves completed replies into the write buffer. Ordering shim:
    /// entries pop from the front in arrival order; when the front is
    /// still pending, **v3** entries behind it may overtake (their id
    /// pairs them), v2 entries may not.
    fn encode_ready(&mut self, conn: &mut Conn) {
        loop {
            match conn.inflight.front() {
                Some(e) if e.reply.is_some() => {
                    let e = conn.inflight.pop_front().expect("front exists");
                    let reply = e.reply.expect("checked above");
                    frame::encode_reply_tagged(e.tag, &reply, &mut self.scratch);
                    conn.wbuf.extend_from_slice(&self.scratch);
                }
                _ => break,
            }
        }
        let mut i = 0;
        while i < conn.inflight.len() {
            let overtakes = conn.inflight[i].tag.is_some() && conn.inflight[i].reply.is_some();
            if overtakes {
                let e = conn.inflight.remove(i).expect("index in bounds");
                let reply = e.reply.expect("checked above");
                frame::encode_reply_tagged(e.tag, &reply, &mut self.scratch);
                conn.wbuf.extend_from_slice(&self.scratch);
            } else {
                i += 1;
            }
        }
    }
}

/// Writes buffered bytes until `WouldBlock` or empty. Returns `false` on
/// a dead socket.
fn flush_writes(conn: &mut Conn) -> bool {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return false,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.wpos >= conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > 64 * 1024 {
        // Reclaim the flushed prefix so a long-lived slow reader does
        // not pin an ever-growing buffer.
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    true
}

/// The standard sink: requests go to the registry's shared scheduler
/// through the policy-aware non-blocking submit; completions ride the
/// serve layer's wakers straight back to the loop.
struct RegistryDispatch {
    registry: Arc<ModelRegistry>,
}

/// One row's outcome, recorded where the batch gather can stitch it.
type RowResult = Result<Vec<f32>, ServeError>;

/// Collects a multi-row request's per-row results and completes the
/// ticket once the last row lands — the event-loop counterpart of the
/// threaded writer redeeming a batch in order.
struct Gather {
    rows: Mutex<Vec<Option<RowResult>>>,
    remaining: AtomicUsize,
    ticket: Mutex<Option<ReplyTicket>>,
    shape: GatherShape,
}

enum GatherShape {
    Batch {
        batch: u32,
    },
    Segment {
        row_start: u32,
        row_end: u32,
        batch: u32,
    },
}

impl Gather {
    fn arm(self: &Arc<Self>, handles: Vec<ResponseHandle>) {
        for (i, h) in handles.into_iter().enumerate() {
            let g = Arc::clone(self);
            h.on_ready(move |r| g.fill(i, r));
        }
    }

    fn fill(&self, i: usize, r: Result<Vec<f32>, ServeError>) {
        {
            let mut rows = self.rows.lock().unwrap_or_else(|e| e.into_inner());
            rows[i] = Some(r);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.finish();
        }
    }

    fn finish(&self) {
        let Some(ticket) = self.ticket.lock().unwrap_or_else(|e| e.into_inner()).take() else {
            return;
        };
        let rows = std::mem::take(&mut *self.rows.lock().unwrap_or_else(|e| e.into_inner()));
        let mut output = Vec::new();
        for r in rows {
            match r.expect("every row filled before finish") {
                Ok(row) => output.extend_from_slice(&row),
                // All-or-nothing, first failed row (in row order) wins —
                // identical to the threaded writer's redemption.
                Err(e) => {
                    ticket.complete(error_reply(&e));
                    return;
                }
            }
        }
        ticket.complete(match self.shape {
            GatherShape::Batch { batch } => Reply::InferBatch { batch, output },
            GatherShape::Segment {
                row_start,
                row_end,
                batch,
            } => Reply::InferSegment {
                row_start,
                row_end,
                batch,
                output,
            },
        });
    }
}

impl RegistryDispatch {
    /// Offers every row of a multi-row request and arms a [`Gather`].
    /// The first row backpressures ([`Dispatched::Busy`]); a queue that
    /// fills mid-request fails the whole request typed instead (the rows
    /// already admitted still run; their handles drop harmlessly).
    #[allow(clippy::too_many_arguments)]
    fn offer_rows(
        &self,
        tenant: &circnn_serve::TenantHandle,
        input: Vec<f32>,
        n: usize,
        budget: Option<Duration>,
        ticket: ReplyTicket,
        shape: GatherShape,
        rebuild: impl FnOnce(Vec<f32>) -> Request,
    ) -> Dispatched {
        let rows = input.len() / n;
        let mut handles = Vec::with_capacity(rows);
        for i in 0..rows {
            let mut row = input[i * n..(i + 1) * n].to_vec();
            match tenant.offer_with_deadline(&mut row, budget) {
                Ok(h) => handles.push(h),
                Err(ServeError::QueueFull) if i == 0 => {
                    return Dispatched::Busy(rebuild(input), ticket);
                }
                Err(e) => {
                    ticket.complete(error_reply(&e));
                    return Dispatched::Accepted;
                }
            }
        }
        let gather = Arc::new(Gather {
            rows: Mutex::new((0..rows).map(|_| None).collect()),
            remaining: AtomicUsize::new(rows),
            ticket: Mutex::new(Some(ticket)),
            shape,
        });
        gather.arm(handles);
        Dispatched::Accepted
    }
}

impl EventDispatch for RegistryDispatch {
    fn dispatch(&self, req: Request, ticket: ReplyTicket) -> Dispatched {
        match req {
            Request::Ping => ticket.complete(Reply::Pong),
            Request::ListModels => ticket.complete(Reply::ModelList(self.registry.list())),
            Request::Health => ticket.complete(Reply::Health(self.registry.health())),
            Request::Stats { model } => {
                let reply = match self.registry.stats(&model) {
                    Some(stats) => Reply::Stats { model, stats },
                    None => unknown_model(&model),
                };
                ticket.complete(reply);
            }
            Request::Infer {
                model,
                deadline_micros,
                mut input,
            } => {
                let Some(tenant) = self.registry.get(&model) else {
                    ticket.complete(unknown_model(&model));
                    return Dispatched::Accepted;
                };
                // Shape errors are rejected at the wire layer with a
                // typed reply, before the tenant queue — same as the
                // threaded server.
                let n = tenant.input_len();
                if input.len() != n {
                    ticket.complete(Reply::Error {
                        code: ErrorCode::BadInput,
                        message: format!(
                            "model {model:?} expects {n} values per request, got {}",
                            input.len()
                        ),
                    });
                    return Dispatched::Accepted;
                }
                match tenant.offer_with_deadline(&mut input, budget_of(deadline_micros)) {
                    Ok(h) => h.on_ready(move |r| {
                        ticket.complete(match r {
                            Ok(output) => Reply::Infer { output },
                            Err(e) => error_reply(&e),
                        });
                    }),
                    // Queue full under the Block policy: hand the request
                    // back so the loop parks it and stops reading the
                    // connection — backpressure without a blocked thread.
                    Err(ServeError::QueueFull) => {
                        return Dispatched::Busy(
                            Request::Infer {
                                model,
                                deadline_micros,
                                input,
                            },
                            ticket,
                        );
                    }
                    Err(e) => ticket.complete(error_reply(&e)),
                }
            }
            Request::InferBatch {
                model,
                deadline_micros,
                batch,
                input,
            } => {
                let Some(tenant) = self.registry.get(&model) else {
                    ticket.complete(unknown_model(&model));
                    return Dispatched::Accepted;
                };
                let n = tenant.input_len();
                let rows = batch as usize;
                if rows == 0 || input.len() != rows * n {
                    ticket.complete(Reply::Error {
                        code: ErrorCode::BadInput,
                        message: format!(
                            "batch of {rows} rows needs {} values, got {}",
                            rows * n,
                            input.len()
                        ),
                    });
                    return Dispatched::Accepted;
                }
                let budget = budget_of(deadline_micros);
                return self.offer_rows(
                    &tenant,
                    input,
                    n,
                    budget,
                    ticket,
                    GatherShape::Batch { batch },
                    move |input| Request::InferBatch {
                        model,
                        deadline_micros,
                        batch,
                        input,
                    },
                );
            }
            Request::InferSegment {
                model,
                deadline_micros,
                row_start,
                row_end,
                batch,
                input,
            } => {
                let Some(tenant) = self.registry.get(&model) else {
                    ticket.complete(unknown_model(&model));
                    return Dispatched::Accepted;
                };
                // Placement verification, identical to the threaded
                // server: the tenant must be registered as a segment and
                // the requested range must match its recorded placement.
                let Some(seg) = self.registry.segment(&model) else {
                    ticket.complete(Reply::Error {
                        code: ErrorCode::BadInput,
                        message: format!("model {model:?} is not registered as a row segment"),
                    });
                    return Dispatched::Accepted;
                };
                if (row_start as usize, row_end as usize) != (seg.row_start, seg.row_end) {
                    ticket.complete(Reply::Error {
                        code: ErrorCode::BadInput,
                        message: format!(
                            "segment {model:?} covers rows {}..{}, request asked for \
                             {row_start}..{row_end}",
                            seg.row_start, seg.row_end
                        ),
                    });
                    return Dispatched::Accepted;
                }
                let n = tenant.input_len();
                let rows = batch as usize;
                if rows == 0 || input.len() != rows * n {
                    ticket.complete(Reply::Error {
                        code: ErrorCode::BadInput,
                        message: format!(
                            "segment batch of {rows} rows needs {} values, got {}",
                            rows * n,
                            input.len()
                        ),
                    });
                    return Dispatched::Accepted;
                }
                let budget = budget_of(deadline_micros);
                return self.offer_rows(
                    &tenant,
                    input,
                    n,
                    budget,
                    ticket,
                    GatherShape::Segment {
                        row_start,
                        row_end,
                        batch,
                    },
                    move |input| Request::InferSegment {
                        model,
                        deadline_micros,
                        row_start,
                        row_end,
                        batch,
                        input,
                    },
                );
            }
        }
        Dispatched::Accepted
    }
}
