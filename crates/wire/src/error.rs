//! Typed wire-level errors: every way a frame, a connection or a remote
//! call can fail, with **no panics on attacker-controlled input**.

use std::io;

/// Typed error codes carried by `Reply::Error` frames (the server half of
/// the contract: a client can match on the code without parsing prose).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request named a model that is not registered.
    UnknownModel = 1,
    /// The request vector length does not match the model's input length.
    BadInput = 2,
    /// The tenant's bounded queue was full (non-blocking rejection).
    QueueFull = 3,
    /// The server (or tenant) is shutting down.
    ShuttingDown = 4,
    /// The request's deadline passed before a worker dispatched it.
    DeadlineExceeded = 5,
    /// The request was dropped without a result (worker died mid-batch).
    Canceled = 6,
    /// The request frame was syntactically invalid.
    Malformed = 7,
    /// Any other server-side failure.
    Internal = 8,
    /// The tenant's queue was at capacity under a degrading overload
    /// policy: the request was refused (`Reject`) or shed (`ShedOldest`).
    Overloaded = 9,
}

impl ErrorCode {
    /// Decodes a wire code; unknown values land on
    /// [`ErrorCode::Internal`] (forward compatibility: a newer server may
    /// emit codes this client does not know).
    pub fn from_wire(code: u16) -> Self {
        match code {
            1 => Self::UnknownModel,
            2 => Self::BadInput,
            3 => Self::QueueFull,
            4 => Self::ShuttingDown,
            5 => Self::DeadlineExceeded,
            6 => Self::Canceled,
            7 => Self::Malformed,
            9 => Self::Overloaded,
            _ => Self::Internal,
        }
    }
}

impl core::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Self::UnknownModel => "unknown model",
            Self::BadInput => "bad input",
            Self::QueueFull => "queue full",
            Self::ShuttingDown => "shutting down",
            Self::DeadlineExceeded => "deadline exceeded",
            Self::Canceled => "canceled",
            Self::Malformed => "malformed frame",
            Self::Internal => "internal error",
            Self::Overloaded => "overloaded",
        };
        write!(f, "{name}")
    }
}

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes truncated streams: a peer that hangs
    /// up mid-frame surfaces as `UnexpectedEof`).
    Io(io::Error),
    /// The frame does not start with the protocol magic byte.
    BadMagic(u8),
    /// The frame's protocol version is not supported by this build.
    BadVersion {
        /// Version found in the header.
        got: u8,
        /// Version this build speaks.
        want: u8,
    },
    /// The length prefix exceeds the per-frame payload cap.
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The cap ([`crate::frame::MAX_PAYLOAD`]).
        max: usize,
    },
    /// The opcode byte names no known frame type.
    UnknownOpcode(u8),
    /// The payload is structurally invalid (truncated field, trailing
    /// bytes, bad UTF-8 in a name, inconsistent counts, …).
    Malformed(&'static str),
    /// The remote answered with a typed error frame.
    Remote {
        /// Typed error code.
        code: ErrorCode,
        /// Human-readable server message.
        message: String,
    },
    /// A retryable idempotent call failed on every attempt the
    /// [`ClientConfig`](crate::ClientConfig) retry budget allowed.
    RetriesExhausted {
        /// Total attempts made (the initial try plus every retry).
        attempts: u32,
        /// The error the final attempt failed with.
        last: Box<WireError>,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic(b) => write!(f, "not a circnn wire frame (magic byte {b:#04x})"),
            Self::BadVersion { got, want } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this build speaks {want})"
                )
            }
            Self::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            Self::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            Self::Malformed(why) => write!(f, "malformed frame: {why}"),
            Self::Remote { code, message } => write!(f, "server error ({code}): {message}"),
            Self::RetriesExhausted { attempts, last } => {
                write!(f, "call failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}
