//! Fault-injection test support: a chaos TCP proxy and a faulty model
//! wrapper (behind the default-on `chaos` feature).
//!
//! The serving stack's failure model is only trustworthy if something
//! exercises it. This module provides the two fault sources the soak
//! tests drive:
//!
//! * [`ChaosProxy`] — a TCP proxy between a client and a
//!   [`WireServer`](crate::WireServer) that injects transport faults per
//!   connection from a deterministic [`Fault`] plan: added latency with
//!   frames torn across small segments, byte truncation followed by an
//!   abrupt close (the observable shape of a connection reset), in either
//!   direction.
//! * [`FaultyModel`] — wraps any [`ServeModel`] and injects **model**
//!   faults at scheduled dispatch indices: slow batches (stragglers) and
//!   panics (poison requests), both deterministic.
//!
//! Everything here is driven by explicit schedules, never wall-clock
//! randomness, so a failing soak reproduces byte-for-byte.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use circnn_serve::ServeModel;

/// Tracking clones of every proxied socket plus the pump threads, shared
/// between the accept loop and shutdown.
type Links = Arc<Mutex<(Vec<TcpStream>, Vec<JoinHandle<()>>)>>;

/// One connection's transport fault, assigned from the proxy's plan in
/// accept order (`plan[i % plan.len()]` for the `i`-th connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward faithfully (the control case).
    None,
    /// Forward both directions in `chunk`-byte segments, sleeping `delay`
    /// before each — added latency, with frames torn across segments so
    /// the receiver observes partial reads mid-frame.
    Delay {
        /// Sleep before each forwarded segment.
        delay: Duration,
        /// Segment size in bytes (≥ 1).
        chunk: usize,
    },
    /// Forward only the first `after` client→server bytes, then close
    /// both directions abruptly — the server sees a frame cut off
    /// mid-read (the observable shape of a peer reset).
    TruncateToServer {
        /// Bytes forwarded before the cut.
        after: usize,
    },
    /// Forward only the first `after` server→client bytes, then close
    /// both directions abruptly — the client sees its reply cut off.
    TruncateToClient {
        /// Bytes forwarded before the cut.
        after: usize,
    },
}

/// One pump direction's share of a [`Fault`].
#[derive(Clone, Copy)]
struct PumpFault {
    delay: Option<Duration>,
    chunk: usize,
    truncate_after: Option<usize>,
}

impl Fault {
    /// Splits the fault into (client→server, server→client) pump configs.
    fn split(self) -> (PumpFault, PumpFault) {
        let plain = PumpFault {
            delay: None,
            chunk: 4096,
            truncate_after: None,
        };
        match self {
            Fault::None => (plain, plain),
            Fault::Delay { delay, chunk } => {
                let slowed = PumpFault {
                    delay: Some(delay),
                    chunk: chunk.max(1),
                    truncate_after: None,
                };
                (slowed, slowed)
            }
            Fault::TruncateToServer { after } => (
                PumpFault {
                    truncate_after: Some(after),
                    ..plain
                },
                plain,
            ),
            Fault::TruncateToClient { after } => (
                plain,
                PumpFault {
                    truncate_after: Some(after),
                    ..plain
                },
            ),
        }
    }
}

/// Copies bytes `from` → `to` under one [`PumpFault`]; closes **both**
/// sockets on exit (truncation, EOF or error), so the cut looks like a
/// reset to both peers and the sibling pump unblocks.
fn pump(mut from: TcpStream, mut to: TcpStream, fault: PumpFault) {
    let mut buf = [0u8; 4096];
    let mut copied = 0usize;
    loop {
        let want = match fault.truncate_after {
            Some(limit) if copied >= limit => break,
            Some(limit) => buf.len().min(fault.chunk).min(limit - copied),
            None => buf.len().min(fault.chunk),
        };
        let n = match from.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if let Some(d) = fault.delay {
            std::thread::sleep(d);
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
        copied += n;
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// A fault-injecting TCP proxy in front of an upstream server.
///
/// Accepts connections on an ephemeral local port, opens one upstream
/// connection per accepted client, and forwards bytes both ways through
/// the connection's [`Fault`] (assigned from the plan in accept order,
/// cycling). Deterministic given a deterministic connect order.
///
/// # Examples
///
/// ```no_run
/// use circnn_wire::chaos::{ChaosProxy, Fault};
/// # fn main() -> std::io::Result<()> {
/// let upstream: std::net::SocketAddr = "127.0.0.1:4242".parse().unwrap();
/// let proxy = ChaosProxy::start(upstream, vec![
///     Fault::None,
///     Fault::TruncateToClient { after: 11 },
/// ])?;
/// // First connection is clean, second loses its reply mid-frame, third
/// // is clean again, …
/// let addr = proxy.local_addr();
/// # let _ = addr;
/// proxy.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Tracking clones of every proxied socket pair, so shutdown can cut
    /// all live links, plus the pump threads to join.
    links: Links,
}

impl core::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ChaosProxy {
    /// Binds the proxy on an ephemeral local port in front of `upstream`.
    /// An empty `plan` forwards every connection faithfully.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind.
    pub fn start(upstream: SocketAddr, plan: Vec<Fault>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let links: Links = Arc::new(Mutex::new((Vec::new(), Vec::new())));
        let accept_thread = {
            let (stop, links) = (Arc::clone(&stop), Arc::clone(&links));
            std::thread::Builder::new()
                .name("circnn-chaos-accept".into())
                .spawn(move || {
                    let mut conn_index = 0usize;
                    for client in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = client else { continue };
                        let fault = if plan.is_empty() {
                            Fault::None
                        } else {
                            plan[conn_index % plan.len()]
                        };
                        conn_index += 1;
                        let Ok(server) = TcpStream::connect(upstream) else {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        };
                        let _ = client.set_nodelay(true);
                        let _ = server.set_nodelay(true);
                        let (c2s, s2c) = fault.split();
                        let (Ok(ct), Ok(st), Ok(cr), Ok(sr)) = (
                            client.try_clone(),
                            server.try_clone(),
                            client.try_clone(),
                            server.try_clone(),
                        ) else {
                            continue;
                        };
                        // Thread exhaustion sheds the link rather than
                        // killing the proxy's accept loop.
                        let up = std::thread::Builder::new()
                            .name("circnn-chaos-up".into())
                            .spawn(move || pump(client, server, c2s));
                        let down = std::thread::Builder::new()
                            .name("circnn-chaos-down".into())
                            .spawn(move || pump(sr, cr, s2c));
                        let (Ok(up), Ok(down)) = (up, down) else {
                            let _ = ct.shutdown(Shutdown::Both);
                            let _ = st.shutdown(Shutdown::Both);
                            continue;
                        };
                        let mut tracked = links.lock().unwrap_or_else(|e| e.into_inner());
                        tracked.0.push(ct);
                        tracked.0.push(st);
                        tracked.1.push(up);
                        tracked.1.push(down);
                    }
                })
                .expect("spawning the chaos accept thread")
        };
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            links,
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, cuts every proxied link and joins the pumps.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let (streams, pumps) =
            std::mem::take(&mut *self.links.lock().unwrap_or_else(|e| e.into_inner()));
        for s in &streams {
            let _ = s.shutdown(Shutdown::Both);
        }
        for p in pumps {
            let _ = p.join();
        }
    }
}

impl Drop for ChaosProxy {
    /// Dropping without [`ChaosProxy::shutdown`] still cuts every link.
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Wraps a [`ServeModel`] and injects faults at scheduled **dispatch
/// indices** (a process-wide counter incremented once per `infer_batch`
/// call on this wrapper, quarantine retries included).
///
/// * a dispatch in the *slow* schedule sleeps before running (a straggler
///   batch that holds its worker);
/// * a dispatch in the *panic* schedule panics (a poison batch — the
///   server must quarantine it without taking co-batched requests down).
///
/// Deterministic: the schedules are explicit sets, not probabilities.
pub struct FaultyModel<M: ServeModel> {
    inner: M,
    slow: HashSet<u64>,
    slow_for: Duration,
    panic_on: HashSet<u64>,
    dispatches: AtomicU64,
}

impl<M: ServeModel> core::fmt::Debug for FaultyModel<M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FaultyModel")
            .field("slow", &self.slow.len())
            .field("panic_on", &self.panic_on.len())
            .field("dispatches", &self.dispatches.load(Ordering::Relaxed))
            .finish()
    }
}

impl<M: ServeModel> FaultyModel<M> {
    /// Wraps `inner` with empty fault schedules (a faithful passthrough
    /// until schedules are added).
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            slow: HashSet::new(),
            slow_for: Duration::ZERO,
            panic_on: HashSet::new(),
            dispatches: AtomicU64::new(0),
        }
    }

    /// Schedules the dispatches with these indices to sleep `delay`
    /// before running.
    #[must_use]
    pub fn slow_at(mut self, indices: impl IntoIterator<Item = u64>, delay: Duration) -> Self {
        self.slow.extend(indices);
        self.slow_for = delay;
        self
    }

    /// Schedules the dispatches with these indices to panic.
    #[must_use]
    pub fn panic_at(mut self, indices: impl IntoIterator<Item = u64>) -> Self {
        self.panic_on.extend(indices);
        self
    }

    /// How many batch dispatches this wrapper has seen.
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }
}

impl<M: ServeModel> ServeModel for FaultyModel<M> {
    type Scratch = M::Scratch;

    fn make_scratch(&self) -> Self::Scratch {
        self.inner.make_scratch()
    }

    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn output_len(&self) -> usize {
        self.inner.output_len()
    }

    fn infer_batch(&self, x: &[f32], batch: usize, scratch: &mut Self::Scratch, out: &mut [f32]) {
        let i = self.dispatches.fetch_add(1, Ordering::Relaxed);
        assert!(
            !self.panic_on.contains(&i),
            "chaos: scheduled panic at dispatch {i}"
        );
        if self.slow.contains(&i) {
            std::thread::sleep(self.slow_for);
        }
        self.inner.infer_batch(x, batch, scratch, out);
    }
}
