//! The multi-tenant model registry: named models over one shared
//! scheduling pool, with hot add/remove behind an `RwLock`.
//!
//! Each registered model becomes a tenant of a
//! [`circnn_serve::MultiServer`]: its own bounded queue, batching policy
//! and statistics. The name → tenant map sits behind an `RwLock` so the
//! per-request lookup on the serving hot path is a shared read; only
//! add/remove take the write lock.

use std::collections::HashMap;
use std::io;
use std::sync::RwLock;

use circnn_core::serialize::{self, SerializeError};
use circnn_core::RowSlice;
use circnn_nn::Sequential;
use circnn_serve::{
    MultiServer, SequentialModel, ServeError, ServeModel, ServeStats, TenantConfig, TenantHandle,
};

use crate::frame::{HealthInfo, ModelInfo, TenantHealth};

/// Longest accepted model name (fits comfortably in the wire's `u16`
/// length prefix and keeps hostile registrations bounded).
pub const MAX_NAME_LEN: usize = 256;

/// Why a registration failed.
#[derive(Debug)]
pub enum RegistryError {
    /// A model with this name is already registered.
    DuplicateName(String),
    /// The name is empty or longer than [`MAX_NAME_LEN`].
    BadName(String),
    /// The network cannot be served (a layer lacks the read-only
    /// inference path); carries the construction error message.
    Unservable(String),
    /// The scheduling pool rejected the tenant.
    Serve(ServeError),
    /// A serialized operator failed to load.
    Load(SerializeError),
}

impl core::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::DuplicateName(name) => write!(f, "model {name:?} is already registered"),
            Self::BadName(name) => write!(
                f,
                "bad model name {name:?} (must be 1..={MAX_NAME_LEN} bytes)"
            ),
            Self::Unservable(why) => write!(f, "model is not servable: {why}"),
            Self::Serve(e) => write!(f, "scheduler rejected the tenant: {e}"),
            Self::Load(e) => write!(f, "failed to load model: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<ServeError> for RegistryError {
    fn from(e: ServeError) -> Self {
        Self::Serve(e)
    }
}

impl From<SerializeError> for RegistryError {
    fn from(e: SerializeError) -> Self {
        Self::Load(e)
    }
}

/// Placement of a registered row-slice tenant: which logical output rows
/// of the parent operator it produces. An `InferSegment` request must
/// name exactly this range — the check is what keeps a misrouted scatter
/// leg from being stitched into the wrong rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// First logical output row this tenant produces.
    pub row_start: usize,
    /// One past the last logical output row this tenant produces.
    pub row_end: usize,
    /// Logical row count `m` of the parent operator.
    pub full_rows: usize,
}

/// Named, hot-swappable models over one shared worker pool.
///
/// # Examples
///
/// ```
/// use circnn_core::BlockCirculantMatrix;
/// use circnn_serve::TenantConfig;
/// use circnn_tensor::init::seeded_rng;
/// use circnn_wire::ModelRegistry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let registry = ModelRegistry::new(2)?;
/// let w = BlockCirculantMatrix::random(&mut seeded_rng(0), 32, 64, 8)?;
/// registry.add_model("fc6", w, TenantConfig::default())?;
/// let handle = registry.get("fc6").expect("just registered");
/// assert_eq!(handle.submit(vec![0.5; 64])?.wait()?.len(), 32);
/// assert!(registry.remove_model("fc6"));
/// assert!(registry.get("fc6").is_none());
/// # Ok(())
/// # }
/// ```
pub struct ModelRegistry {
    pool: MultiServer,
    tenants: RwLock<HashMap<String, TenantHandle>>,
    /// Row-range placement for tenants registered as segments
    /// ([`ModelRegistry::add_segment`]); keyed by the same names.
    segments: RwLock<HashMap<String, SegmentInfo>>,
}

impl core::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.list().len())
            .finish()
    }
}

impl ModelRegistry {
    /// Starts the shared worker pool (no models yet).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] if `workers` is zero.
    pub fn new(workers: usize) -> Result<Self, ServeError> {
        Ok(Self {
            pool: MultiServer::start(workers)?,
            tenants: RwLock::new(HashMap::new()),
            segments: RwLock::new(HashMap::new()),
        })
    }

    fn check_name(name: &str) -> Result<(), RegistryError> {
        if name.is_empty() || name.len() > MAX_NAME_LEN {
            return Err(RegistryError::BadName(name.to_string()));
        }
        Ok(())
    }

    /// Registers any [`ServeModel`] under `name` (hot add: serving
    /// continues for every other tenant).
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateName`] if the name is taken,
    /// [`RegistryError::BadName`] for an empty/oversized name, or the
    /// pool's own rejection.
    pub fn add_model<M: ServeModel>(
        &self,
        name: &str,
        model: M,
        cfg: TenantConfig,
    ) -> Result<(), RegistryError> {
        Self::check_name(name)?;
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(name) {
            return Err(RegistryError::DuplicateName(name.to_string()));
        }
        let handle = self.pool.add_tenant(model, cfg)?;
        map.insert(name.to_string(), handle);
        Ok(())
    }

    /// Registers a whole network under `name`: requests reshape to the
    /// per-sample `input_shape` (`[n]` for MLPs, `[C, H, W]` for
    /// convnets).
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::add_model`], plus
    /// [`RegistryError::Unservable`] if a layer lacks the read-only
    /// inference path.
    pub fn add_network(
        &self,
        name: &str,
        net: Sequential,
        input_shape: &[usize],
        cfg: TenantConfig,
    ) -> Result<(), RegistryError> {
        let model = SequentialModel::with_input_shape(net, input_shape).map_err(|e| match e {
            // Unwrap the typed rejection so the registry's own
            // "model is not servable:" prefix is not doubled.
            circnn_serve::ServeError::NotServable(why) => RegistryError::Unservable(why),
            other => RegistryError::Unservable(other.to_string()),
        })?;
        self.add_model(name, model, cfg)
    }

    /// Loads a serialized block-circulant operator
    /// ([`circnn_core::serialize`] format, plain or 16-bit quantized) and
    /// registers it under `name` — the deployment path: ship defining
    /// vectors, serve `y = W·x`.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::add_model`], plus [`RegistryError::Load`] for a
    /// malformed stream.
    pub fn load_operator(
        &self,
        name: &str,
        reader: impl io::Read,
        cfg: TenantConfig,
    ) -> Result<(), RegistryError> {
        let operator = serialize::load(reader)?;
        self.add_model(name, operator, cfg)
    }

    /// Loads a quantized-spectra stream
    /// ([`circnn_core::serialize::save_quantized_spectra`] format) and
    /// registers the fixed-point operator under `name` — the low-precision
    /// deployment path: ship i16 weight spectra plus per-block-row scales,
    /// serve `y = W·x` through the integer MAC kernels.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::add_model`], plus [`RegistryError::Load`] for a
    /// malformed stream — including the typed
    /// [`circnn_core::CircError::QuantOverflow`] rejection when the
    /// stream's code formats could overflow i32 accumulation.
    pub fn load_quantized_operator(
        &self,
        name: &str,
        reader: impl io::Read,
        cfg: TenantConfig,
    ) -> Result<(), RegistryError> {
        let operator = serialize::load_quantized_spectra(reader)?;
        self.add_model(name, operator, cfg)
    }

    /// Registers a row-slice of a block-circulant operator under `name`:
    /// the slice serves like any operator tenant (`input_len = n`,
    /// `output_len = row_end − row_start`), and its placement is recorded
    /// so `InferSegment` requests can be validated against it.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::add_model`].
    pub fn add_segment(
        &self,
        name: &str,
        slice: RowSlice,
        cfg: TenantConfig,
    ) -> Result<(), RegistryError> {
        let info = SegmentInfo {
            row_start: slice.row_start,
            row_end: slice.row_end(),
            full_rows: slice.full_rows,
        };
        self.add_model(name, slice.operator, cfg)?;
        self.segments
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), info);
        Ok(())
    }

    /// Loads a serialized row-slice ([`circnn_core::serialize::save_slice`]
    /// format, or a whole-operator stream as the trivial full-range slice)
    /// and registers it under `name` — the shard-deployment path: ship a
    /// shard its slice of the defining vectors, serve its output segment.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::add_segment`], plus [`RegistryError::Load`] for
    /// a malformed stream.
    pub fn load_segment(
        &self,
        name: &str,
        reader: impl io::Read,
        cfg: TenantConfig,
    ) -> Result<(), RegistryError> {
        let slice = serialize::load_slice(reader)?;
        self.add_segment(name, slice, cfg)
    }

    /// The recorded placement of a segment tenant (`None` for tenants not
    /// registered through [`ModelRegistry::add_segment`]).
    pub fn segment(&self, name: &str) -> Option<SegmentInfo> {
        self.segments
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .copied()
    }

    /// Unregisters `name` (hot removal): its parked requests fail with
    /// [`ServeError::ShuttingDown`], in-flight batches complete. Returns
    /// `false` if no such model existed.
    pub fn remove_model(&self, name: &str) -> bool {
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        match map.remove(name) {
            Some(handle) => {
                drop(map);
                self.segments
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(name);
                self.pool.remove_tenant(&handle)
            }
            None => false,
        }
    }

    /// The tenant handle for `name` (a cheap clone — connections cache it
    /// per request).
    pub fn get(&self, name: &str) -> Option<TenantHandle> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Every registered model with its geometry and queue depth, sorted by
    /// name (deterministic wire output).
    pub fn list(&self) -> Vec<ModelInfo> {
        let map = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<ModelInfo> = map
            .iter()
            .map(|(name, h)| ModelInfo {
                name: name.clone(),
                input_len: h.input_len() as u32,
                output_len: h.output_len() as u32,
                pending: h.pending() as u32,
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Per-tenant statistics snapshot for `name`.
    pub fn stats(&self, name: &str) -> Option<ServeStats> {
        self.get(name).and_then(|h| h.stats().ok())
    }

    /// Server health snapshot: registry size plus every tenant's queue
    /// depth and degradation counters (shed, rejected, expired, panics),
    /// sorted by name — what an operator or load balancer polls to decide
    /// whether this server is keeping up.
    pub fn health(&self) -> HealthInfo {
        let map = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        let mut tenants: Vec<TenantHealth> = map
            .iter()
            .map(|(name, h)| {
                // A tenant removed between iteration and the stats read
                // reports zeroed counters rather than failing the snapshot.
                let stats = h.stats().unwrap_or_default();
                TenantHealth {
                    name: name.clone(),
                    pending: h.pending() as u32,
                    shed: stats.shed,
                    rejected: stats.rejected,
                    expired: stats.expired,
                    panics: stats.panics,
                }
            })
            .collect();
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        HealthInfo {
            models: map.len() as u32,
            tenants,
        }
    }

    /// Graceful shutdown: drains every tenant queue and joins the pool
    /// workers.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circnn_core::BlockCirculantMatrix;
    use circnn_tensor::init::seeded_rng;

    fn operator(seed: u64) -> BlockCirculantMatrix {
        BlockCirculantMatrix::random(&mut seeded_rng(seed), 16, 24, 8).expect("valid shape")
    }

    #[test]
    fn duplicate_and_bad_names_are_rejected() {
        let r = ModelRegistry::new(1).unwrap();
        r.add_model("a", operator(1), TenantConfig::default())
            .unwrap();
        assert!(matches!(
            r.add_model("a", operator(2), TenantConfig::default()),
            Err(RegistryError::DuplicateName(_))
        ));
        assert!(matches!(
            r.add_model("", operator(3), TenantConfig::default()),
            Err(RegistryError::BadName(_))
        ));
        let long = "x".repeat(MAX_NAME_LEN + 1);
        assert!(matches!(
            r.add_model(&long, operator(4), TenantConfig::default()),
            Err(RegistryError::BadName(_))
        ));
    }

    #[test]
    fn serialized_operator_round_trips_through_the_registry() {
        let w = operator(5);
        let mut bytes = Vec::new();
        serialize::save(&w, &mut bytes).unwrap();
        let r = ModelRegistry::new(1).unwrap();
        r.load_operator("fc", &bytes[..], TenantConfig::default())
            .unwrap();
        let x: Vec<f32> = (0..24).map(|i| (i as f32 * 0.3).sin()).collect();
        let served = r
            .get("fc")
            .unwrap()
            .submit(x.clone())
            .unwrap()
            .wait()
            .unwrap();
        // The serving path runs the batched engine; compare against the
        // same kernel (matvec's scalar FFT differs in the last ulp).
        let direct = w.matmat(&x, 1, &mut circnn_core::Workspace::new()).unwrap();
        assert_eq!(served, direct);
        assert!(matches!(
            r.load_operator("bad", &b"NOPE"[..], TenantConfig::default()),
            Err(RegistryError::Load(_))
        ));
    }

    #[test]
    fn quantized_spectra_stream_serves_through_the_registry() {
        use circnn_core::{CircError, QuantConfig, QuantizedOperator};
        let w = operator(8);
        let qop = QuantizedOperator::from_operator(&w, QuantConfig::default()).unwrap();
        let bound = qop.error_bound();
        let mut bytes = Vec::new();
        serialize::save_quantized_spectra(&qop, &mut bytes).unwrap();
        let r = ModelRegistry::new(1).unwrap();
        r.load_quantized_operator("fc-q", &bytes[..], TenantConfig::default())
            .unwrap();
        let x: Vec<f32> = (0..24).map(|i| (i as f32 * 0.3).sin()).collect();
        let served = r
            .get("fc-q")
            .unwrap()
            .submit(x.clone())
            .unwrap()
            .wait()
            .unwrap();
        let golden = w.matmat(&x, 1, &mut circnn_core::Workspace::new()).unwrap();
        for (a, b) in served.iter().zip(&golden) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
        // An overflow-capable stream must fail typed, not register.
        let fmt_off = 4 + 2 + 2 + 24;
        bytes[fmt_off..fmt_off + 4].copy_from_slice(&16u32.to_le_bytes());
        bytes[fmt_off + 8..fmt_off + 12].copy_from_slice(&16u32.to_le_bytes());
        assert!(matches!(
            r.load_quantized_operator("fc-q2", &bytes[..], TenantConfig::default()),
            Err(RegistryError::Load(SerializeError::Invalid(
                CircError::QuantOverflow { .. }
            )))
        ));
        // The f32 loader must not accept spectra streams.
        let mut good = Vec::new();
        serialize::save_quantized_spectra(&qop, &mut good).unwrap();
        assert!(matches!(
            r.load_operator("fc-q3", &good[..], TenantConfig::default()),
            Err(RegistryError::Load(SerializeError::UnsupportedVersion(3)))
        ));
    }

    #[test]
    fn listing_reports_sorted_geometry() {
        let r = ModelRegistry::new(1).unwrap();
        r.add_model("zeta", operator(6), TenantConfig::default())
            .unwrap();
        r.add_model("alpha", operator(7), TenantConfig::default())
            .unwrap();
        let list = r.list();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].name, "alpha");
        assert_eq!(list[1].name, "zeta");
        assert_eq!(list[0].input_len, 24);
        assert_eq!(list[0].output_len, 16);
    }
}
