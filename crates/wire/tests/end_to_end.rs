//! End-to-end wire serving: two tenants (an MLP and a convnet), eight
//! concurrent client connections, every reply bit-identical to direct
//! `Sequential::infer`; plus deadline errors and strict malformed-frame
//! handling over a real socket.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use circnn_core::{CirculantConv2d, CirculantLinear, CirculantRnn, CirculantRnnCell, RnnReadout};
use circnn_nn::{Flatten, InferScratch, Layer, Linear, MaxPool2d, Relu, Sequential};
use circnn_serve::{ServeModel, TenantConfig};
use circnn_tensor::init::seeded_rng;
use circnn_tensor::Tensor;
use circnn_wire::{ErrorCode, ModelRegistry, WireClient, WireConfig, WireError, WireServer};

/// MLP tenant: 32 → 48 → 10 with a circulant hidden layer.
fn mlp(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new()
        .add(CirculantLinear::new(&mut rng, 32, 48, 16).unwrap())
        .add(Relu::new())
        .add(Linear::new(&mut rng, 48, 10))
}

/// Convnet tenant over `[2, 8, 8]` images: circulant conv → pool → fc.
fn convnet(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new()
        .add(CirculantConv2d::new(&mut rng, 2, 4, 3, 1, 1, 2).unwrap())
        .add(Relu::new())
        .add(MaxPool2d::new(2, 2))
        .add(Flatten::new())
        .add(Linear::new(&mut rng, 4 * 4 * 4, 6))
}

fn request(len: usize, seed: u64) -> Vec<f32> {
    circnn_tensor::init::uniform(&mut seeded_rng(seed), &[len], -1.0, 1.0)
        .data()
        .to_vec()
}

/// The acceptance-criteria scenario: ≥ 2 models, ≥ 8 concurrent
/// connections across both tenants, bitwise identity against the direct
/// read-only inference path.
#[test]
fn eight_connections_two_tenants_bitwise_identical() {
    let registry = Arc::new(ModelRegistry::new(2).unwrap());
    registry
        .add_network("mlp", mlp(77), &[32], TenantConfig::default())
        .unwrap();
    registry
        .add_network("convnet", convnet(88), &[2, 8, 8], TenantConfig::default())
        .unwrap();
    let server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default()).unwrap();
    let addr = server.local_addr();

    // An independent reference copy running the same read-only path
    // directly, one request at a time (per-client copies live in the
    // client threads below).
    let mut ref_mlp = mlp(77);
    ref_mlp.set_training(false);

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 12;
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (mut ref_net, model, input_len, input_dims) = if client % 2 == 0 {
                (mlp(77), "mlp", 32usize, vec![1usize, 32])
            } else {
                (convnet(88), "convnet", 2 * 8 * 8, vec![1, 2, 8, 8])
            };
            ref_net.set_training(false);
            s.spawn(move || {
                let mut wire = WireClient::connect(addr).expect("connect");
                let mut scratch = InferScratch::new();
                for r in 0..REQUESTS {
                    let x = request(input_len, (client * 1000 + r) as u64);
                    let served = wire.infer(model, &x).expect("served");
                    let direct = ref_net
                        .infer(&Tensor::from_vec(x, &input_dims), &mut scratch)
                        .data()
                        .to_vec();
                    assert_eq!(
                        served, direct,
                        "client {client} request {r} diverged from direct infer"
                    );
                }
            });
        }
    });

    // Control frames agree with the registry.
    let mut wire = WireClient::connect(addr).unwrap();
    wire.ping().unwrap();
    let models = wire.list_models().unwrap();
    assert_eq!(
        models.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(),
        vec!["convnet", "mlp"],
        "sorted model list"
    );
    let conv_info = &models[0];
    assert_eq!(conv_info.input_len, 128);
    assert_eq!(conv_info.output_len, 6);
    let stats = wire.stats("mlp").unwrap();
    assert_eq!(
        stats.requests,
        (CLIENTS as u64 / 2) * REQUESTS as u64,
        "per-tenant stats count only this tenant's traffic: {stats}"
    );
    // A client-side batch equals row-by-row serving.
    let flat: Vec<f32> = (0..3).flat_map(|i| request(32, 5000 + i)).collect();
    let batched = wire.infer_batch("mlp", 3, &flat, None).unwrap();
    let mut scratch = InferScratch::new();
    for (i, rows) in flat.chunks(32).enumerate() {
        let direct = ref_mlp
            .infer(&Tensor::from_vec(rows.to_vec(), &[1, 32]), &mut scratch)
            .data()
            .to_vec();
        assert_eq!(&batched[i * 10..(i + 1) * 10], &direct[..], "batch row {i}");
    }

    server.shutdown();
}

/// Recurrent tenant over `[T=6, D=2]` sequences: circulant reservoir
/// features → dense readout.
fn rnn_net(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    let cell = CirculantRnnCell::new(&mut rng, 2, 16, 4, 0.9).unwrap();
    Sequential::new()
        .add(CirculantRnn::new(cell, RnnReadout::Features))
        .add(Linear::new(&mut rng, 32, 4))
}

/// The engine-unification acceptance scenario for the recurrent workload:
/// an RNN registers in the registry like any FC net or convnet, serves
/// over the socket under concurrent connections, and every wire reply is
/// **bit-identical** to direct `Sequential::infer` on the same sequence.
#[test]
fn recurrent_network_serves_bit_identical_over_the_wire() {
    let registry = Arc::new(ModelRegistry::new(2).unwrap());
    registry
        .add_network("rnn", rnn_net(123), &[6, 2], TenantConfig::default())
        .unwrap();
    let server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default()).unwrap();
    let addr = server.local_addr();
    const CLIENTS: usize = 4;
    const REQUESTS: usize = 8;
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let mut ref_net = rnn_net(123);
            ref_net.set_training(false);
            s.spawn(move || {
                let mut wire = WireClient::connect(addr).expect("connect");
                let mut scratch = InferScratch::new();
                for r in 0..REQUESTS {
                    let x = request(6 * 2, (client * 777 + r) as u64);
                    let served = wire.infer("rnn", &x).expect("served");
                    let direct = ref_net
                        .infer(&Tensor::from_vec(x, &[1, 6, 2]), &mut scratch)
                        .data()
                        .to_vec();
                    assert_eq!(
                        served, direct,
                        "client {client} sequence {r} diverged from direct infer"
                    );
                }
            });
        }
    });
    // Sequence payloads of the wrong length never reach a worker: the
    // wire layer rejects them with the typed BadInput reply.
    let mut wire = WireClient::connect(addr).unwrap();
    match wire.infer("rnn", &[0.0; 11]) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadInput),
        other => panic!("expected BadInput, got {other:?}"),
    }
    assert_eq!(wire.infer("rnn", &request(12, 5)).unwrap().len(), 4);
    server.shutdown();
}

/// Unknown models and mis-sized inputs come back as typed remote errors.
#[test]
fn typed_errors_cross_the_wire() {
    let registry = Arc::new(ModelRegistry::new(1).unwrap());
    registry
        .add_network("mlp", mlp(9), &[32], TenantConfig::default())
        .unwrap();
    let server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default()).unwrap();
    let mut wire = WireClient::connect(server.local_addr()).unwrap();
    match wire.infer("nope", &[0.0; 32]) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    match wire.infer("mlp", &[0.0; 31]) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadInput),
        other => panic!("expected BadInput, got {other:?}"),
    }
    match wire.stats("nope") {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    // Over-long model names are refused client-side, before any bytes
    // hit the wire (they could never match a registered model anyway).
    match wire.stats(&"x".repeat(circnn_wire::MAX_NAME_LEN + 1)) {
        Err(WireError::Malformed(_)) => {}
        other => panic!("expected client-side Malformed, got {other:?}"),
    }
    // The connection survives typed errors.
    assert_eq!(wire.infer("mlp", &request(32, 1)).unwrap().len(), 10);
    server.shutdown();
}

/// A model that stalls the single pool worker, making deadlines bite.
struct SlowEcho;

impl ServeModel for SlowEcho {
    type Scratch = ();
    fn make_scratch(&self) {}
    fn input_len(&self) -> usize {
        4
    }
    fn output_len(&self) -> usize {
        4
    }
    fn infer_batch(&self, x: &[f32], _batch: usize, _scratch: &mut (), out: &mut [f32]) {
        std::thread::sleep(Duration::from_millis(80));
        out.copy_from_slice(x);
    }
}

/// A deadline that cannot be met surfaces as the typed DeadlineExceeded
/// error over the wire; a generous deadline succeeds.
#[test]
fn deadline_errors_cross_the_wire() {
    let registry = Arc::new(ModelRegistry::new(1).unwrap());
    registry
        .add_model(
            "slow",
            SlowEcho,
            TenantConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_capacity: 16,
                ..Default::default()
            },
        )
        .unwrap();
    let server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default()).unwrap();
    let addr = server.local_addr();

    // Pipeline two requests on one connection: the first occupies the
    // worker for 80 ms; the second's 5 ms budget expires while queued.
    let mut wire = WireClient::connect(addr).unwrap();
    wire.send_infer("slow", &[1.0; 4], None).unwrap();
    wire.send_infer("slow", &[2.0; 4], Some(Duration::from_millis(5)))
        .unwrap();
    assert_eq!(wire.recv_infer().unwrap(), vec![1.0; 4]);
    match wire.recv_infer() {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::DeadlineExceeded),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // A generous budget still completes.
    assert_eq!(
        wire.infer_deadline("slow", &[3.0; 4], Some(Duration::from_secs(10)))
            .unwrap(),
        vec![3.0; 4]
    );
    let stats = wire.stats("slow").unwrap();
    assert_eq!(stats.expired, 1, "{stats}");
    server.shutdown();
}

/// Garbage on the socket gets one typed Malformed error frame back, then
/// the server hangs up — and stays healthy for well-formed peers.
#[test]
fn malformed_frames_get_a_typed_error_then_disconnect() {
    let registry = Arc::new(ModelRegistry::new(1).unwrap());
    registry
        .add_network("mlp", mlp(4), &[32], TenantConfig::default())
        .unwrap();
    let server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap(); // server replies, then closes
    let decoded = circnn_wire::frame::decode_reply(&reply).unwrap();
    match decoded {
        circnn_wire::Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a Malformed error frame, got {other:?}"),
    }

    // A well-formed connection still works afterwards.
    let mut wire = WireClient::connect(addr).unwrap();
    assert_eq!(wire.infer("mlp", &request(32, 2)).unwrap().len(), 10);
    server.shutdown();
}

/// A client that writes half an Infer frame and then resets must not
/// wedge the server: its reader thread exits cleanly, the connection is
/// reaped from the table, and other connections' in-flight requests
/// complete bitwise-correct throughout.
#[test]
fn half_written_frame_then_reset_leaves_other_connections_intact() {
    let registry = Arc::new(ModelRegistry::new(1).unwrap());
    registry
        .add_network("mlp", mlp(21), &[32], TenantConfig::default())
        .unwrap();
    let server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut ref_net = mlp(21);
    ref_net.set_training(false);
    let mut scratch = InferScratch::new();

    // A healthy connection with a request already pipelined (in flight
    // while the hostile peer resets).
    let mut healthy = WireClient::connect(addr).unwrap();
    let x0 = request(32, 900);
    healthy.send_infer("mlp", &x0, None).unwrap();

    // The hostile peer: a valid Infer frame cut off mid-payload, then an
    // abrupt close.
    let mut frame = Vec::new();
    circnn_wire::frame::encode_request(
        &circnn_wire::Request::Infer {
            model: "mlp".to_string(),
            deadline_micros: 0,
            input: request(32, 901),
        },
        &mut frame,
    );
    let half = TcpStream::connect(addr).unwrap();
    (&half).write_all(&frame[..frame.len() / 2]).unwrap();
    drop(half);

    // The healthy connection's in-flight reply arrives bitwise-correct,
    // and the connection keeps serving.
    let direct = ref_net
        .infer(&Tensor::from_vec(x0.clone(), &[1, 32]), &mut scratch)
        .data()
        .to_vec();
    assert_eq!(healthy.recv_infer().unwrap(), direct);
    let x1 = request(32, 902);
    let direct = ref_net
        .infer(&Tensor::from_vec(x1.clone(), &[1, 32]), &mut scratch)
        .data()
        .to_vec();
    assert_eq!(healthy.infer("mlp", &x1).unwrap(), direct);

    // The half-writer's connection is reaped; only the healthy one stays.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut live = usize::MAX;
    while std::time::Instant::now() < deadline {
        live = server.connection_count();
        if live <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(live, 1, "the reset connection must be reaped");
    server.shutdown();
}

/// Connection-table reaping: a long-lived server's table must not grow
/// with connect/disconnect cycles — finished reader/writer threads are
/// joined and their reply queues dropped, so only live connections stay
/// tracked.
#[test]
fn connection_table_does_not_grow_across_connect_disconnect_cycles() {
    let registry = Arc::new(ModelRegistry::new(1).unwrap());
    registry
        .add_network("mlp", mlp(9), &[32], TenantConfig::default())
        .unwrap();
    let server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default()).unwrap();
    let addr = server.local_addr();

    const CYCLES: usize = 20;
    for cycle in 0..CYCLES {
        let mut wire = WireClient::connect(addr).expect("connect");
        assert_eq!(
            wire.infer("mlp", &request(32, cycle as u64)).unwrap().len(),
            10
        );
        drop(wire); // hang up; the connection threads wind down
    }

    // The socket close is observed asynchronously by the reader thread;
    // poll until the reaped count settles. A held connection must still be
    // counted, every closed one must eventually be reaped.
    let _held = WireClient::connect(addr).expect("connect");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut live = usize::MAX;
    while std::time::Instant::now() < deadline {
        live = server.connection_count();
        if live <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        live <= 1,
        "connection table still holds {live} entries after {CYCLES} \
         connect/disconnect cycles (expected only the held connection)"
    );
    server.shutdown();
}
