//! The event-driven front end, end to end: readiness-loop serving is
//! bitwise-identical to the threaded server, protocol v3 request ids
//! complete out of order, v2 clients keep arrival-order replies, stalled
//! half-frame connections are reaped without a dedicated thread, the
//! connection cap holds, and teardown is prompt and complete.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use circnn_core::{BlockCirculantMatrix, CirculantConv2d, CirculantLinear, Workspace};
use circnn_nn::{Flatten, InferScratch, Layer, Linear, MaxPool2d, Relu, Sequential};
use circnn_serve::{ServeModel, TenantConfig};
use circnn_tensor::init::seeded_rng;
use circnn_tensor::Tensor;
use circnn_wire::frame::{self, Reply, Request};
use circnn_wire::{
    ClientConfig, ErrorCode, EventConfig, EventServer, ModelRegistry, WireClient, WireError,
};

/// MLP tenant: 32 → 48 → 10 with a circulant hidden layer.
fn mlp(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new()
        .add(CirculantLinear::new(&mut rng, 32, 48, 16).unwrap())
        .add(Relu::new())
        .add(Linear::new(&mut rng, 48, 10))
}

/// Convnet tenant over `[2, 8, 8]` images: circulant conv → pool → fc.
fn convnet(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new()
        .add(CirculantConv2d::new(&mut rng, 2, 4, 3, 1, 1, 2).unwrap())
        .add(Relu::new())
        .add(MaxPool2d::new(2, 2))
        .add(Flatten::new())
        .add(Linear::new(&mut rng, 4 * 4 * 4, 6))
}

fn request(len: usize, seed: u64) -> Vec<f32> {
    circnn_tensor::init::uniform(&mut seeded_rng(seed), &[len], -1.0, 1.0)
        .data()
        .to_vec()
}

/// A model that stalls its single pool worker: echoes after a sleep.
struct SlowEcho(Duration);

impl ServeModel for SlowEcho {
    type Scratch = ();
    fn make_scratch(&self) {}
    fn input_len(&self) -> usize {
        4
    }
    fn output_len(&self) -> usize {
        4
    }
    fn infer_batch(&self, x: &[f32], _batch: usize, _scratch: &mut (), out: &mut [f32]) {
        std::thread::sleep(self.0);
        out.copy_from_slice(x);
    }
}

/// `y[i] = 2 x[i] + 1`, instantly.
struct Doubler;

impl ServeModel for Doubler {
    type Scratch = ();
    fn make_scratch(&self) {}
    fn input_len(&self) -> usize {
        8
    }
    fn output_len(&self) -> usize {
        8
    }
    fn infer_batch(&self, x: &[f32], _batch: usize, _scratch: &mut (), out: &mut [f32]) {
        for (o, v) in out.iter_mut().zip(x) {
            *o = 2.0 * v + 1.0;
        }
    }
}

/// A slow tenant and a fast tenant sharing a two-worker pool, so the
/// fast reply genuinely completes while the slow one is in flight.
fn slow_fast_registry(stall: Duration) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new(2).unwrap());
    let snappy = TenantConfig {
        max_batch: 1,
        max_wait: Duration::ZERO,
        ..Default::default()
    };
    registry
        .add_model("slow", SlowEcho(stall), snappy.clone())
        .unwrap();
    registry.add_model("fast", Doubler, snappy).unwrap();
    registry
}

/// Polls `count()` until it reaches `want` (or a generous deadline).
fn drop_poll(count: impl Fn() -> usize, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut live = usize::MAX;
    while Instant::now() < deadline {
        live = count();
        if live == want {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("connection count stuck at {live}, wanted {want}");
}

/// The tentpole identity scenario: two tenants (MLP + convnet) plus a
/// segment tenant on the event server, eight concurrent pipelining
/// connections, every reply bitwise-identical to the direct inference
/// path; control frames, batches and segments included.
#[test]
fn event_server_serves_bitwise_identical_replies() {
    let registry = Arc::new(ModelRegistry::new(2).unwrap());
    registry
        .add_network("mlp", mlp(77), &[32], TenantConfig::default())
        .unwrap();
    registry
        .add_network("convnet", convnet(88), &[2, 8, 8], TenantConfig::default())
        .unwrap();
    let w = BlockCirculantMatrix::random(&mut seeded_rng(42), 48, 32, 8).unwrap();
    registry
        .add_segment("seg", w.row_slice(0..3).unwrap(), TenantConfig::default())
        .unwrap();
    let server =
        EventServer::bind("127.0.0.1:0", Arc::clone(&registry), EventConfig::default()).unwrap();
    let addr = server.local_addr();

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 10;
    const DEPTH: usize = 5; // pipelined requests in flight per client
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (mut ref_net, model, input_len, input_dims) = if client % 2 == 0 {
                (mlp(77), "mlp", 32usize, vec![1usize, 32])
            } else {
                (convnet(88), "convnet", 2 * 8 * 8, vec![1, 2, 8, 8])
            };
            ref_net.set_training(false);
            s.spawn(move || {
                let mut wire = WireClient::connect(addr).expect("connect");
                let mut scratch = InferScratch::new();
                for window in 0..REQUESTS / DEPTH {
                    let xs: Vec<Vec<f32>> = (0..DEPTH)
                        .map(|i| request(input_len, (client * 1000 + window * DEPTH + i) as u64))
                        .collect();
                    for x in &xs {
                        wire.send_infer(model, x, None).expect("pipelined send");
                    }
                    for (i, x) in xs.iter().enumerate() {
                        let served = wire.recv_infer().expect("pipelined recv");
                        let direct = ref_net
                            .infer(&Tensor::from_vec(x.clone(), &input_dims), &mut scratch)
                            .data()
                            .to_vec();
                        assert_eq!(served, direct, "client {client} reply {i} diverged");
                    }
                }
            });
        }
    });

    // Control frames agree with the registry.
    let mut wire = WireClient::connect(addr).unwrap();
    wire.ping().unwrap();
    let models = wire.list_models().unwrap();
    assert_eq!(
        models.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(),
        vec!["convnet", "mlp", "seg"],
        "sorted model list"
    );
    let stats = wire.stats("mlp").unwrap();
    assert_eq!(
        stats.requests,
        (CLIENTS as u64 / 2) * REQUESTS as u64,
        "per-tenant stats count only this tenant's traffic: {stats}"
    );

    // A client-side batch equals row-by-row direct inference.
    let mut ref_mlp = mlp(77);
    ref_mlp.set_training(false);
    let mut scratch = InferScratch::new();
    let flat: Vec<f32> = (0..3).flat_map(|i| request(32, 5000 + i)).collect();
    let batched = wire.infer_batch("mlp", 3, &flat, None).unwrap();
    for (i, rows) in flat.chunks(32).enumerate() {
        let direct = ref_mlp
            .infer(&Tensor::from_vec(rows.to_vec(), &[1, 32]), &mut scratch)
            .data()
            .to_vec();
        assert_eq!(&batched[i * 10..(i + 1) * 10], &direct[..], "batch row {i}");
    }

    // A segment request equals the parent operator's row range.
    let x = request(32, 7_000);
    let seg = wire.infer_segment("seg", 0, 24, 1, &x, None).unwrap();
    let mut ws = Workspace::new();
    let full = w.matmat(&x, 1, &mut ws).unwrap();
    assert_eq!(seg, full[..24], "segment diverged from parent rows");

    // Typed errors cross the event loop too, and the connection survives.
    match wire.infer("nope", &[0.0; 32]) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    match wire.infer("mlp", &[0.0; 31]) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadInput),
        other => panic!("expected BadInput, got {other:?}"),
    }
    assert_eq!(wire.infer("mlp", &request(32, 8_000)).unwrap().len(), 10);

    drop(wire);
    drop_poll(|| server.connection_count(), 0);
    server.shutdown();
}

/// Protocol v3 on the raw socket: two tagged requests pipelined to a
/// slow and a fast tenant; the fast reply overtakes the slow one and
/// each reply echoes its request's id.
#[test]
fn v3_replies_complete_out_of_order_by_request_id() {
    let registry = slow_fast_registry(Duration::from_millis(150));
    let server =
        EventServer::bind("127.0.0.1:0", Arc::clone(&registry), EventConfig::default()).unwrap();

    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = Vec::new();
    frame::encode_request_v3(
        7,
        &Request::Infer {
            model: "slow".to_string(),
            deadline_micros: 0,
            input: vec![1.0; 4],
        },
        &mut buf,
    );
    frame::write_frame(&mut raw, &buf).unwrap();
    frame::encode_request_v3(
        8,
        &Request::Infer {
            model: "fast".to_string(),
            deadline_micros: 0,
            input: vec![0.5; 8],
        },
        &mut buf,
    );
    frame::write_frame(&mut raw, &buf).unwrap();

    // The fast tenant's reply arrives first, carrying ITS id — the slow
    // request (sent first, still in flight) did not hold it back.
    let mut rbuf = Vec::new();
    frame::read_frame(&mut raw, &mut rbuf).unwrap();
    let (tag, reply) = frame::decode_reply_tagged(&rbuf).unwrap();
    assert_eq!(tag, Some(8), "the fast reply must overtake the slow one");
    assert_eq!(
        reply,
        Reply::Infer {
            output: vec![2.0; 8]
        }
    );
    frame::read_frame(&mut raw, &mut rbuf).unwrap();
    let (tag, reply) = frame::decode_reply_tagged(&rbuf).unwrap();
    assert_eq!(tag, Some(7));
    assert_eq!(
        reply,
        Reply::Infer {
            output: vec![1.0; 4]
        }
    );
    server.shutdown();
}

/// The v3 pipelining client matches replies by id: with the fast reply
/// arriving first on the socket, `recv_infer` still hands back replies
/// in send order, each bitwise its own.
#[test]
fn v3_client_matches_out_of_order_replies_by_id() {
    let registry = slow_fast_registry(Duration::from_millis(120));
    let server =
        EventServer::bind("127.0.0.1:0", Arc::clone(&registry), EventConfig::default()).unwrap();

    let mut wire = WireClient::connect(server.local_addr()).unwrap();
    wire.send_infer("slow", &[3.0; 4], None).unwrap();
    wire.send_infer("fast", &[1.0; 8], None).unwrap();
    assert_eq!(wire.pipelined(), 2);
    // Send order, not completion order: the slow echo comes back first
    // from recv_infer even though the fast reply hit the socket first.
    assert_eq!(wire.recv_infer().unwrap(), vec![3.0; 4]);
    assert_eq!(wire.recv_infer().unwrap(), vec![3.0; 8]);
    assert_eq!(wire.pipelined(), 0);
    server.shutdown();
}

/// A v2 client against the v3 event server: replies stay in arrival
/// order — the fast reply must NOT overtake the slow one, because an
/// id-less client attributes replies by position.
#[test]
fn v2_client_keeps_arrival_order_on_the_event_server() {
    let registry = slow_fast_registry(Duration::from_millis(120));
    let server =
        EventServer::bind("127.0.0.1:0", Arc::clone(&registry), EventConfig::default()).unwrap();

    let mut wire = WireClient::connect_with(
        server.local_addr(),
        ClientConfig {
            protocol: 2,
            ..Default::default()
        },
    )
    .unwrap();
    wire.ping().unwrap();
    wire.send_infer("slow", &[5.0; 4], None).unwrap();
    wire.send_infer("fast", &[2.0; 8], None).unwrap();
    assert_eq!(
        wire.recv_infer().unwrap(),
        vec![5.0; 4],
        "v2 replies must keep arrival order"
    );
    assert_eq!(wire.recv_infer().unwrap(), vec![5.0; 8]);
    server.shutdown();
}

/// Slow-loris: a connection that writes half a frame header and stalls
/// is reaped by the idle deadline — no thread waits on it, the socket
/// closes, and the server keeps serving fresh connections.
#[test]
fn stalled_half_frame_connection_is_reaped_by_idle_timeout() {
    let registry = slow_fast_registry(Duration::ZERO);
    let server = EventServer::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        EventConfig {
            idle_timeout: Some(Duration::from_millis(200)),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut loris = TcpStream::connect(addr).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Four header bytes of a valid frame, then silence.
    loris
        .write_all(&[frame::MAGIC, frame::VERSION, 0x04, 0x00])
        .unwrap();
    drop_poll(|| server.connection_count(), 1);
    // The readiness loop reaps it on the idle deadline — the stalled
    // socket reads EOF and the count returns to zero.
    drop_poll(|| server.connection_count(), 0);
    let mut sink = Vec::new();
    assert_eq!(
        loris.read_to_end(&mut sink).unwrap_or(0),
        0,
        "the reaped connection must be closed, not answered"
    );

    // Fresh connections serve normally afterwards (their own deadline).
    let mut wire = WireClient::connect(addr).unwrap();
    assert_eq!(wire.infer("fast", &[0.0; 8]).unwrap(), vec![1.0; 8]);
    drop(wire);
    server.shutdown();
}

/// The connection cap: accepts beyond `max_connections` are closed
/// immediately, and a freed slot is usable again.
#[test]
fn connection_cap_refuses_excess_accepts() {
    let registry = slow_fast_registry(Duration::ZERO);
    let server = EventServer::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        EventConfig {
            max_connections: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut a = WireClient::connect(addr).unwrap();
    let mut b = WireClient::connect(addr).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();
    assert_eq!(server.connection_count(), 2);

    // The third accept is shut immediately: EOF without a reply frame.
    let mut over = TcpStream::connect(addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = Vec::new();
    assert_eq!(over.read_to_end(&mut sink).unwrap_or(0), 0);

    // Freeing a slot re-opens the door.
    drop(a);
    drop_poll(|| server.connection_count(), 1);
    let mut c = WireClient::connect(addr).unwrap();
    c.ping().unwrap();
    server.shutdown();
}

/// Teardown is prompt and deterministic: live idle connections do not
/// stall shutdown behind write timeouts, every socket closes, and the
/// loop threads are joined before `shutdown` returns.
#[test]
fn shutdown_is_prompt_with_live_connections() {
    let registry = slow_fast_registry(Duration::ZERO);
    let server =
        EventServer::bind("127.0.0.1:0", Arc::clone(&registry), EventConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut held: Vec<WireClient> = (0..4).map(|_| WireClient::connect(addr).unwrap()).collect();
    for wire in &mut held {
        wire.ping().unwrap();
    }
    assert_eq!(server.connection_count(), 4);

    // Disconnect cycles reap without dedicated threads.
    for cycle in 0..8 {
        let mut wire = WireClient::connect(addr).unwrap();
        assert_eq!(
            wire.infer("fast", &request(8, cycle as u64)).unwrap().len(),
            8
        );
    }
    drop_poll(|| server.connection_count(), 4);

    let started = Instant::now();
    server.shutdown(); // joins the loops; waker-driven, no 1 s timeouts
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown with idle connections took {elapsed:?}"
    );
    // Every held connection observed the close.
    for wire in &mut held {
        assert!(wire.ping().is_err(), "connections must be closed");
    }
}

/// Garbage on the event socket gets one typed Malformed error frame
/// back, then the server hangs up — and stays healthy for other peers.
#[test]
fn malformed_frames_get_a_typed_error_then_disconnect() {
    let registry = slow_fast_registry(Duration::ZERO);
    let server =
        EventServer::bind("127.0.0.1:0", Arc::clone(&registry), EventConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap(); // server replies, then closes
    match frame::decode_reply(&reply).unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a Malformed error frame, got {other:?}"),
    }

    // A half-written frame followed by reset leaves other peers intact.
    let mut frame_buf = Vec::new();
    frame::encode_request(
        &Request::Infer {
            model: "fast".to_string(),
            deadline_micros: 0,
            input: vec![0.0; 8],
        },
        &mut frame_buf,
    );
    let half = TcpStream::connect(addr).unwrap();
    (&half)
        .write_all(&frame_buf[..frame_buf.len() / 2])
        .unwrap();
    drop(half);

    let mut wire = WireClient::connect(addr).unwrap();
    assert_eq!(wire.infer("fast", &[1.0; 8]).unwrap(), vec![3.0; 8]);
    drop(wire);
    drop_poll(|| server.connection_count(), 0);
    server.shutdown();
}
