//! Protocol robustness: random frames round-trip exactly; malformed
//! input of every stripe is rejected with typed errors and zero panics.

use circnn_serve::ServeStats;
use circnn_wire::frame::{
    self, decode_reply, decode_request, encode_reply, encode_request, HEADER_LEN, MAGIC,
    MAX_PAYLOAD, VERSION,
};
use circnn_wire::{ErrorCode, HealthInfo, ModelInfo, Reply, Request, TenantHealth, WireError};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..36, 0..16).prop_map(|v| {
        v.iter()
            .map(|&b| {
                if b < 26 {
                    (b'a' + b) as char
                } else {
                    (b'0' + b - 26) as char
                }
            })
            .collect()
    })
}

fn values_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e6f32..1e6, 0..96)
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        0usize..7,
        name_strategy(),
        any::<u64>(),
        values_strategy(),
        (1u32..9, any::<u32>(), any::<u32>()),
    )
        .prop_map(
            |(tag, model, deadline, input, (batch, row_start, row_end))| match tag {
                0 => Request::Ping,
                1 => Request::ListModels,
                2 => Request::Stats { model },
                3 => Request::Health,
                4 => Request::Infer {
                    model,
                    deadline_micros: deadline,
                    input,
                },
                5 => Request::InferBatch {
                    model,
                    deadline_micros: deadline,
                    batch,
                    input,
                },
                _ => Request::InferSegment {
                    model,
                    deadline_micros: deadline,
                    row_start,
                    row_end,
                    batch,
                    input,
                },
            },
        )
}

fn stats_strategy() -> impl Strategy<Value = ServeStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), 0usize..1_000_000),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9),
    )
        .prop_map(
            |(
                (requests, batches, full_flushes, timeout_flushes),
                (drain_flushes, expired, max_occupancy),
                (shed, rejected, panics, retries),
                (mean_occupancy, mean_infer_us, mean_latency_us, max_latency_us),
            )| ServeStats {
                requests,
                batches,
                full_flushes,
                timeout_flushes,
                drain_flushes,
                expired,
                shed,
                rejected,
                panics,
                retries,
                max_occupancy,
                mean_occupancy,
                mean_infer_us,
                mean_latency_us,
                max_latency_us,
            },
        )
}

fn health_strategy() -> impl Strategy<Value = HealthInfo> {
    prop::collection::vec(
        (
            name_strategy(),
            any::<u32>(),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        ),
        0..5,
    )
    .prop_map(|tenants| HealthInfo {
        models: tenants.len() as u32,
        tenants: tenants
            .into_iter()
            .map(
                |(name, pending, (shed, rejected, expired, panics))| TenantHealth {
                    name,
                    pending,
                    shed,
                    rejected,
                    expired,
                    panics,
                },
            )
            .collect(),
    })
}

fn reply_strategy() -> impl Strategy<Value = Reply> {
    (
        0usize..8,
        name_strategy(),
        values_strategy(),
        stats_strategy(),
        health_strategy(),
        (1u32..9, 0u16..12, any::<u32>(), any::<u32>()),
    )
        .prop_map(
            |(tag, model, output, stats, health, (batch, code, row_start, row_end))| match tag {
                0 => Reply::Pong,
                1 => Reply::ModelList(
                    (0..(batch % 4))
                        .map(|i| ModelInfo {
                            name: format!("{model}{i}"),
                            input_len: 64 + i,
                            output_len: 32 + i,
                            pending: i,
                        })
                        .collect(),
                ),
                2 => Reply::Stats { model, stats },
                3 => Reply::Health(health),
                4 => Reply::Infer { output },
                5 => Reply::InferBatch { batch, output },
                6 => Reply::InferSegment {
                    row_start,
                    row_end,
                    batch,
                    output,
                },
                _ => Reply::Error {
                    code: ErrorCode::from_wire(code),
                    message: model,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every request survives encode → decode exactly.
    #[test]
    fn requests_round_trip(req in request_strategy()) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let back = decode_request(&buf).expect("own encoding must decode");
        prop_assert_eq!(back, req);
    }

    /// Every reply survives encode → decode exactly.
    #[test]
    fn replies_round_trip(reply in reply_strategy()) {
        let mut buf = Vec::new();
        encode_reply(&reply, &mut buf);
        let back = decode_reply(&buf).expect("own encoding must decode");
        prop_assert_eq!(back, reply);
    }

    /// Truncating a valid frame at ANY byte boundary yields a typed
    /// error — header-level or payload-level — and never a panic.
    #[test]
    fn truncated_frames_are_rejected(req in request_strategy(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let cut = ((buf.len() as f64 * frac) as usize).min(buf.len().saturating_sub(1));
        prop_assert!(
            decode_request(&buf[..cut]).is_err(),
            "decoding a {cut}-byte prefix of a {}-byte frame must fail",
            buf.len()
        );
    }

    /// Flipping a payload length prefix to disagree with the bytes
    /// actually present is rejected (both directions).
    #[test]
    fn wrong_length_prefix_is_rejected(req in request_strategy(), delta in 1u32..64) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let len = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        buf[4..8].copy_from_slice(&(len + delta).to_le_bytes());
        prop_assert!(decode_request(&buf).is_err());
        if len >= delta {
            buf[4..8].copy_from_slice(&(len - delta).to_le_bytes());
            prop_assert!(decode_request(&buf).is_err());
        }
    }

    /// Random garbage never panics the decoder; it may only error (or, in
    /// the astronomically unlikely case of a valid frame, decode).
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_reply(&bytes);
    }

    /// `Stats` and `Health` are two wire views of the same tenant
    /// counters. The degradation counters both carry — `expired` in
    /// particular, plus `shed`/`rejected`/`panics` — must survive both
    /// frames' round trips with identical values, or an operator reading
    /// `Stats` and a load balancer polling `Health` would disagree about
    /// the same server.
    #[test]
    fn stats_and_health_carry_the_same_degradation_counters(
        name in name_strategy(),
        stats in stats_strategy(),
        pending in any::<u32>(),
    ) {
        let mut sbuf = Vec::new();
        encode_reply(&Reply::Stats { model: name.clone(), stats: stats.clone() }, &mut sbuf);
        let mut hbuf = Vec::new();
        encode_reply(
            &Reply::Health(HealthInfo {
                models: 1,
                tenants: vec![TenantHealth {
                    name,
                    pending,
                    shed: stats.shed,
                    rejected: stats.rejected,
                    expired: stats.expired,
                    panics: stats.panics,
                }],
            }),
            &mut hbuf,
        );
        let s = match decode_reply(&sbuf).expect("stats frame decodes") {
            Reply::Stats { stats, .. } => stats,
            other => return Err(TestCaseError::Fail(format!("expected Stats, got {other:?}"))),
        };
        let h = match decode_reply(&hbuf).expect("health frame decodes") {
            Reply::Health(mut info) => info.tenants.pop().expect("one tenant"),
            other => return Err(TestCaseError::Fail(format!("expected Health, got {other:?}"))),
        };
        prop_assert_eq!(
            (s.expired, s.shed, s.rejected, s.panics),
            (h.expired, h.shed, h.rejected, h.panics)
        );
    }
}

fn valid_frame(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_request(req, &mut buf);
    buf
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut buf = valid_frame(&Request::Ping);
    buf[4..8].copy_from_slice(&((MAX_PAYLOAD + 1) as u32).to_le_bytes());
    match decode_request(&buf) {
        Err(WireError::Oversized { len, max }) => {
            assert_eq!(len, MAX_PAYLOAD + 1);
            assert_eq!(max, MAX_PAYLOAD);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
    // The streaming reader hits the same check from just the header —
    // before any payload allocation could happen.
    let mut reader = &buf[..];
    let mut scratch = Vec::new();
    assert!(matches!(
        frame::read_frame(&mut reader, &mut scratch),
        Err(WireError::Oversized { .. })
    ));
}

#[test]
fn unknown_opcodes_are_rejected() {
    for op in [0x00u8, 0x08, 0x42, 0x80, 0x90, 0xFE] {
        let mut buf = valid_frame(&Request::Ping);
        buf[2] = op;
        assert!(
            matches!(decode_request(&buf), Err(WireError::UnknownOpcode(o)) if o == op),
            "opcode {op:#04x} must be rejected"
        );
    }
    // Reply opcodes are not request opcodes and vice versa.
    let mut reply_frame = Vec::new();
    encode_reply(&Reply::Pong, &mut reply_frame);
    assert!(matches!(
        decode_request(&reply_frame),
        Err(WireError::UnknownOpcode(_))
    ));
}

#[test]
fn version_and_magic_mismatches_are_rejected() {
    let mut buf = valid_frame(&Request::Ping);
    buf[1] = VERSION + 1;
    assert!(matches!(
        decode_request(&buf),
        Err(WireError::BadVersion { got, want }) if got == VERSION + 1 && want == VERSION
    ));
    let mut buf = valid_frame(&Request::Ping);
    buf[0] = MAGIC.wrapping_add(1);
    assert!(matches!(decode_request(&buf), Err(WireError::BadMagic(_))));
    let mut buf = valid_frame(&Request::Ping);
    buf[3] = 7; // reserved byte
    assert!(matches!(decode_request(&buf), Err(WireError::Malformed(_))));
}

#[test]
fn trailing_bytes_inside_the_payload_are_rejected() {
    // A Stats frame whose payload holds the name plus one stray byte,
    // with a length prefix that covers it: structurally wrong.
    let mut buf = valid_frame(&Request::Stats {
        model: "m".to_string(),
    });
    buf.push(0xAB);
    let len = (buf.len() - HEADER_LEN) as u32;
    buf[4..8].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(decode_request(&buf), Err(WireError::Malformed(_))));
}

#[test]
fn inconsistent_f32_count_is_rejected() {
    // An Infer frame whose declared f32 count exceeds the payload.
    let mut buf = valid_frame(&Request::Infer {
        model: "m".to_string(),
        deadline_micros: 0,
        input: vec![1.0, 2.0],
    });
    // The count field sits right after the name (2+1 bytes) and the
    // deadline (8 bytes) in the payload.
    let count_at = HEADER_LEN + 3 + 8;
    buf[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(decode_request(&buf), Err(WireError::Malformed(_))));
}

#[test]
fn string_length_prefix_exceeding_payload_is_rejected() {
    // Strings ride a u16 length prefix; a prefix promising more bytes
    // than the payload holds (a frame cut mid-string, or a hostile
    // client) must be a typed Malformed error, never a panic or an
    // out-of-bounds read.
    let mut buf = valid_frame(&Request::Stats {
        model: "model".to_string(),
    });
    // The name length prefix is the first payload field.
    buf[HEADER_LEN..HEADER_LEN + 2].copy_from_slice(&u16::MAX.to_le_bytes());
    assert!(matches!(decode_request(&buf), Err(WireError::Malformed(_))));

    // Same for replies: a Health frame whose tenant name is cut short.
    let mut buf = Vec::new();
    encode_reply(
        &Reply::Health(HealthInfo {
            models: 1,
            tenants: vec![TenantHealth {
                name: "tenant".to_string(),
                pending: 3,
                shed: 1,
                rejected: 2,
                expired: 4,
                panics: 5,
            }],
        }),
        &mut buf,
    );
    // models(4) + count(4) in the payload, then the name length prefix.
    let name_len_at = HEADER_LEN + 8;
    buf[name_len_at..name_len_at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
    assert!(matches!(decode_reply(&buf), Err(WireError::Malformed(_))));
}

#[test]
fn health_tenant_count_exceeding_payload_is_rejected() {
    // A Health reply claiming more tenants than its payload can hold is
    // rejected before any per-tenant allocation.
    let mut buf = Vec::new();
    encode_reply(&Reply::Health(HealthInfo::default()), &mut buf);
    let count_at = HEADER_LEN + 4;
    buf[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(decode_reply(&buf), Err(WireError::Malformed(_))));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Truncating a reply frame at any byte boundary — including inside a
    /// string field — yields a typed error, never a panic.
    #[test]
    fn truncated_replies_are_rejected(reply in reply_strategy(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        encode_reply(&reply, &mut buf);
        let cut = ((buf.len() as f64 * frac) as usize).min(buf.len().saturating_sub(1));
        prop_assert!(
            decode_reply(&buf[..cut]).is_err(),
            "decoding a {cut}-byte prefix of a {}-byte reply must fail",
            buf.len()
        );
    }
}

fn tag_strategy() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(v3, id)| v3.then_some(id))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Protocol v3: any request id survives encode → decode exactly, on
    /// requests and replies alike, and the id-less envelope (`None`)
    /// still round-trips as v2.
    #[test]
    fn request_ids_round_trip(req in request_strategy(), tag in tag_strategy()) {
        let mut buf = Vec::new();
        frame::encode_request_tagged(tag, &req, &mut buf);
        let expected_version = if tag.is_some() { VERSION } else { frame::MIN_VERSION };
        prop_assert_eq!(buf[1], expected_version, "the tag decides the envelope version");
        let (back_tag, back) = frame::decode_request_tagged(&buf).expect("own encoding decodes");
        prop_assert_eq!(back_tag, tag);
        prop_assert_eq!(back, req);
    }

    /// Reply frames echo any id bit-exactly.
    #[test]
    fn reply_ids_round_trip(reply in reply_strategy(), tag in tag_strategy()) {
        let mut buf = Vec::new();
        frame::encode_reply_tagged(tag, &reply, &mut buf);
        let (back_tag, back) = frame::decode_reply_tagged(&buf).expect("own encoding decodes");
        prop_assert_eq!(back_tag, tag);
        prop_assert_eq!(back, reply);
    }

    /// Incremental decode: a frame split at EVERY byte boundary — one
    /// byte at a time through the assembler — yields exactly the original
    /// frame, and never a partial one early.
    #[test]
    fn assembler_decodes_split_at_every_byte(req in request_strategy(), tag in tag_strategy()) {
        let mut buf = Vec::new();
        frame::encode_request_tagged(tag, &req, &mut buf);
        let mut asm = frame::FrameAssembler::new();
        for (i, &byte) in buf.iter().enumerate() {
            asm.push(&[byte]);
            let done = asm.next_frame().expect("a valid frame prefix never errors");
            if i + 1 < buf.len() {
                prop_assert!(done.is_none(), "no frame may surface at byte {i} of {}", buf.len());
            } else {
                let whole = done.expect("the last byte completes the frame");
                prop_assert_eq!(whole, &buf[..]);
            }
        }
        prop_assert_eq!(asm.pending(), 0);
    }

    /// Incremental decode across arbitrary chunk boundaries: several
    /// frames concatenated and re-chunked randomly come out whole, in
    /// order, regardless of where the cuts land.
    #[test]
    fn assembler_reassembles_random_chunking(
        reqs in prop::collection::vec((request_strategy(), any::<u64>()), 1..5),
        cuts in prop::collection::vec(1usize..64, 1..64),
    ) {
        let mut stream = Vec::new();
        let mut frames = Vec::new();
        for (req, id) in &reqs {
            let mut buf = Vec::new();
            frame::encode_request_v3(*id, req, &mut buf);
            stream.extend_from_slice(&buf);
            frames.push(buf);
        }
        let mut asm = frame::FrameAssembler::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut cut = cuts.iter().cycle();
        while offset < stream.len() {
            let take = (*cut.next().unwrap()).min(stream.len() - offset);
            asm.push(&stream[offset..offset + take]);
            offset += take;
            while let Some(whole) = asm.next_frame().expect("valid stream") {
                decoded.push(frame::decode_request_tagged(whole).expect("decodes"));
            }
        }
        prop_assert_eq!(asm.pending(), 0, "nothing may linger after the last frame");
        let expected: Vec<_> = reqs.iter().map(|(req, id)| (Some(*id), req.clone())).collect();
        prop_assert_eq!(decoded, expected);
    }

    /// Random garbage through the assembler: a typed error or patient
    /// buffering, never a panic — the event loop feeds it exactly this.
    #[test]
    fn assembler_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut asm = frame::FrameAssembler::new();
        asm.push(&bytes);
        // Pump until the assembler errors or runs dry; a hostile stream
        // may also yield decodable headers whose payloads then fail — the
        // frame decoder must absorb those too without panicking.
        loop {
            match asm.next_frame() {
                Ok(Some(whole)) => {
                    let _ = frame::decode_request_tagged(whole);
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }
}

#[test]
fn v3_frames_reject_payloads_shorter_than_the_id() {
    // A v3 envelope promises eight id bytes; a shorter payload is
    // malformed, not a partial id.
    for short in 0..8usize {
        let mut buf = vec![MAGIC, VERSION, 0x01 /* PING */, 0];
        buf.extend_from_slice(&(short as u32).to_le_bytes());
        buf.extend_from_slice(&vec![0u8; short]);
        assert!(
            frame::decode_request_tagged(&buf).is_err(),
            "a {short}-byte v3 payload cannot carry the id"
        );
    }
}

#[test]
fn truncated_stream_reads_surface_as_io_errors() {
    let buf = valid_frame(&Request::Infer {
        model: "m".to_string(),
        deadline_micros: 5,
        input: vec![1.0; 16],
    });
    // Cut the stream mid-payload: read_frame must report Io (EOF), not
    // hang or panic.
    let mut short = &buf[..buf.len() - 7];
    let mut scratch = Vec::new();
    assert!(matches!(
        frame::read_frame(&mut short, &mut scratch),
        Err(WireError::Io(_))
    ));
    // And mid-header.
    let mut tiny = &buf[..3];
    assert!(matches!(
        frame::read_frame(&mut tiny, &mut scratch),
        Err(WireError::Io(_))
    ));
}

#[test]
fn overlong_strings_encode_to_valid_truncated_frames() {
    // Strings ride a u16 length prefix; an over-long server message (e.g.
    // an error echoing hostile client input) must truncate on a char
    // boundary rather than corrupt the frame.
    let message = "é".repeat(40_000); // 80 000 bytes of two-byte chars
    let mut buf = Vec::new();
    encode_reply(
        &Reply::Error {
            code: ErrorCode::Internal,
            message,
        },
        &mut buf,
    );
    match decode_reply(&buf).expect("truncated frame must stay valid") {
        Reply::Error { message, .. } => {
            assert!(message.len() <= u16::MAX as usize);
            assert!(!message.is_empty());
            assert!(message.chars().all(|c| c == 'é'), "clean char boundary");
        }
        other => panic!("expected Error, got {other:?}"),
    }
}

/// One shared live server for the payload-length property below: a
/// recurrent model whose registered input shape is `[T=5, D=3]` (15 flat
/// values per request). Built once; the server is leaked so it outlives
/// every proptest case in the process.
fn shape_server_addr() -> std::net::SocketAddr {
    use std::sync::OnceLock;
    static ADDR: OnceLock<std::net::SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        use circnn_core::{CirculantRnn, CirculantRnnCell, RnnReadout};
        let mut rng = circnn_tensor::init::seeded_rng(31);
        let cell = CirculantRnnCell::new(&mut rng, 3, 8, 4, 0.9).unwrap();
        let net = circnn_nn::Sequential::new().add(CirculantRnn::new(cell, RnnReadout::FinalState));
        let registry = std::sync::Arc::new(circnn_wire::ModelRegistry::new(1).unwrap());
        registry
            .add_network("seq", net, &[5, 3], circnn_serve::TenantConfig::default())
            .unwrap();
        let server = circnn_wire::WireServer::bind(
            "127.0.0.1:0",
            std::sync::Arc::clone(&registry),
            circnn_wire::WireConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr();
        // Keep the accept loop (and the registry the server holds) alive
        // for the rest of the test process.
        std::mem::forget(server);
        std::mem::forget(registry);
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Infer` frames whose payload length is inconsistent with the
    /// registered model's input shape are rejected with the typed
    /// `BadInput` error **at the wire layer** — never a worker-side panic,
    /// never a dropped connection — and the connection stays usable for a
    /// correctly-sized request afterwards.
    #[test]
    fn inconsistent_infer_payload_is_a_typed_wire_error(len in 0usize..64, seed in any::<u64>()) {
        let addr = shape_server_addr();
        let mut wire = circnn_wire::WireClient::connect(addr).expect("connect");
        let payload: Vec<f32> = (0..len).map(|i| ((i as u64 ^ seed) % 97) as f32 * 0.01).collect();
        match wire.infer("seq", &payload) {
            Ok(out) => {
                prop_assert_eq!(len, 15, "only exact-shape payloads may succeed");
                prop_assert_eq!(out.len(), 8);
            }
            Err(WireError::Remote { code, .. }) => {
                prop_assert!(len != 15, "exact-shape payloads must not error");
                prop_assert_eq!(code, ErrorCode::BadInput);
            }
            Err(other) => prop_assert!(false, "unexpected error: {:?}", other),
        }
        // The same connection still serves a well-formed sequence.
        let ok = wire.infer("seq", &[0.25; 15]).expect("connection survived");
        prop_assert_eq!(ok.len(), 8);
    }
}
