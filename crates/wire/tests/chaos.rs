//! Chaos soak: clients hammer a live server through a fault-injecting
//! proxy (delays, torn frames, truncation-resets in both directions)
//! while the model itself injects scheduled panics and stragglers. Every
//! request must resolve — bitwise-correct output or a typed error, never
//! a hang, never a client panic — and the server must stay healthy for a
//! clean connection afterwards.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use circnn_serve::{ServeModel, TenantConfig};
use circnn_wire::chaos::{ChaosProxy, Fault, FaultyModel};
use circnn_wire::{
    ClientConfig, EventConfig, EventServer, ModelRegistry, WireClient, WireConfig, WireError,
    WireServer,
};

/// A pure, trivially-verifiable model: `y[i] = 2 x[i] + 1`.
struct Doubler;

impl ServeModel for Doubler {
    type Scratch = ();
    fn make_scratch(&self) {}
    fn input_len(&self) -> usize {
        8
    }
    fn output_len(&self) -> usize {
        8
    }
    fn infer_batch(&self, x: &[f32], _batch: usize, _scratch: &mut (), out: &mut [f32]) {
        for (o, v) in out.iter_mut().zip(x) {
            *o = 2.0 * v + 1.0;
        }
    }
}

fn expected(x: &[f32]) -> Vec<f32> {
    x.iter().map(|v| 2.0 * v + 1.0).collect()
}

fn input(seed: u64) -> Vec<f32> {
    (0..8)
        .map(|i| ((seed * 31 + i) % 17) as f32 * 0.125)
        .collect()
}

fn soak_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        // Short enough that a wedged read resolves the soak quickly,
        // long enough to ride out injected delays and slow batches.
        read_timeout: Some(Duration::from_secs(5)),
        write_timeout: Some(Duration::from_secs(5)),
        retries: 4,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        ..Default::default()
    }
}

/// One client's soak loop: every request resolves as bitwise-correct
/// output or a typed error. Returns (ok, typed_error) counts.
fn soak(addr: SocketAddr, client: u64, requests: u64, model: &str) -> (u64, u64) {
    let mut wire = WireClient::connect_with(addr, soak_client_config()).expect("connect");
    let (mut ok, mut err) = (0u64, 0u64);
    for r in 0..requests {
        let x = input(client * 1000 + r);
        match wire.infer(model, &x) {
            Ok(y) => {
                assert_eq!(y, expected(&x), "client {client} request {r} wrong bytes");
                ok += 1;
            }
            // Any typed WireError is an acceptable resolution under
            // chaos: Remote (Canceled from a quarantined panic, …),
            // Io / RetriesExhausted (transport cut), Malformed (desync
            // hard-close). What is NOT acceptable is a hang or a panic —
            // the former fails via read timeouts, the latter unwinds.
            Err(_) => err += 1,
        }
    }
    (ok, err)
}

#[test]
fn chaos_soak_every_request_resolves_correct_or_typed_error() {
    let registry = Arc::new(ModelRegistry::new(2).unwrap());
    registry
        .add_model("clean", Doubler, TenantConfig::default())
        .unwrap();
    // The flaky tenant panics on its first dispatch (poison — the server
    // must quarantine it) and runs two stragglers that hold a worker.
    registry
        .add_model(
            "flaky",
            FaultyModel::new(Doubler)
                .panic_at([0, 7])
                .slow_at([3, 11], Duration::from_millis(40)),
            TenantConfig::default(),
        )
        .unwrap();
    let server = WireServer::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        WireConfig {
            idle_timeout: Some(Duration::from_secs(10)),
            ..Default::default()
        },
    )
    .unwrap();

    // Deterministic fault plan, assigned to proxied connections in accept
    // order: clean pass-through, added latency with frames torn into
    // 7-byte segments (mid-header and mid-payload cuts), a request cut
    // off mid-frame on its way to the server, a reply cut off on its way
    // back.
    let proxy = ChaosProxy::start(
        server.local_addr(),
        vec![
            Fault::None,
            Fault::Delay {
                delay: Duration::from_micros(200),
                chunk: 7,
            },
            Fault::None,
            Fault::TruncateToServer { after: 13 },
            Fault::None,
            Fault::TruncateToClient { after: 20 },
        ],
    )
    .unwrap();
    let proxied = proxy.local_addr();

    const CLIENTS: u64 = 6;
    const REQUESTS: u64 = 20;
    let mut totals = (0u64, 0u64);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let model = if c % 2 == 0 { "clean" } else { "flaky" };
                    soak(proxied, c, REQUESTS, model)
                })
            })
            .collect();
        for h in handles {
            let (ok, err) = h.join().expect("no client panics under chaos");
            totals.0 += ok;
            totals.1 += err;
        }
    });
    assert_eq!(
        totals.0 + totals.1,
        CLIENTS * REQUESTS,
        "every request resolved"
    );
    assert!(
        totals.0 > 0,
        "some requests must survive chaos (got {} ok / {} err)",
        totals.0,
        totals.1
    );

    // The server is healthy after the storm: a clean connection (no
    // proxy) serves bitwise-correct replies and a sane health frame.
    let mut direct = WireClient::connect(server.local_addr()).unwrap();
    direct.ping().unwrap();
    let x = input(424_242);
    assert_eq!(direct.infer("clean", &x).unwrap(), expected(&x));
    let health = direct.health().unwrap();
    assert_eq!(health.models, 2);
    let flaky = health
        .tenants
        .iter()
        .find(|t| t.name == "flaky")
        .expect("flaky tenant listed");
    assert!(
        flaky.panics >= 1,
        "the scheduled poison dispatch must be recorded: {flaky:?}"
    );
    for t in &health.tenants {
        assert_eq!(t.pending, 0, "no request may remain queued: {t:?}");
    }

    proxy.shutdown();
    server.shutdown();
}

/// The same storm against the event-driven front end: torn frames land
/// mid-read in the incremental decoder, truncated replies cut pipelined
/// v3 streams, and the injected panics and stragglers exercise the
/// completion path — every request still resolves as bitwise-correct
/// output or a typed error, and the readiness loops stay healthy.
#[test]
fn chaos_soak_event_server_every_request_resolves() {
    let registry = Arc::new(ModelRegistry::new(2).unwrap());
    registry
        .add_model("clean", Doubler, TenantConfig::default())
        .unwrap();
    registry
        .add_model(
            "flaky",
            FaultyModel::new(Doubler)
                .panic_at([0, 7])
                .slow_at([3, 11], Duration::from_millis(40)),
            TenantConfig::default(),
        )
        .unwrap();
    let server = EventServer::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        EventConfig {
            idle_timeout: Some(Duration::from_secs(10)),
            ..Default::default()
        },
    )
    .unwrap();

    let proxy = ChaosProxy::start(
        server.local_addr(),
        vec![
            Fault::None,
            Fault::Delay {
                delay: Duration::from_micros(200),
                chunk: 7,
            },
            Fault::None,
            Fault::TruncateToServer { after: 13 },
            Fault::None,
            Fault::TruncateToClient { after: 20 },
        ],
    )
    .unwrap();
    let proxied = proxy.local_addr();

    const CLIENTS: u64 = 6;
    const REQUESTS: u64 = 20;
    let mut totals = (0u64, 0u64);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let model = if c % 2 == 0 { "clean" } else { "flaky" };
                    soak(proxied, c, REQUESTS, model)
                })
            })
            .collect();
        for h in handles {
            let (ok, err) = h.join().expect("no client panics under chaos");
            totals.0 += ok;
            totals.1 += err;
        }
    });
    assert_eq!(
        totals.0 + totals.1,
        CLIENTS * REQUESTS,
        "every request resolved"
    );
    assert!(
        totals.0 > 0,
        "some requests must survive chaos (got {} ok / {} err)",
        totals.0,
        totals.1
    );

    // The loops are healthy after the storm: a clean connection serves
    // bitwise-correct replies and a sane health frame, and no request
    // lingers in any tenant queue (dropped dispatch tickets answered).
    let mut direct = WireClient::connect(server.local_addr()).unwrap();
    direct.ping().unwrap();
    let x = input(171_717);
    assert_eq!(direct.infer("clean", &x).unwrap(), expected(&x));
    let health = direct.health().unwrap();
    assert_eq!(health.models, 2);
    assert!(
        health
            .tenants
            .iter()
            .find(|t| t.name == "flaky")
            .expect("flaky tenant listed")
            .panics
            >= 1,
        "the scheduled poison dispatch must be recorded"
    );
    for t in &health.tenants {
        assert_eq!(t.pending, 0, "no request may remain queued: {t:?}");
    }

    proxy.shutdown();
    server.shutdown();
}

/// A reply truncated mid-frame is never misattributed: the client
/// surfaces a typed error for the cut call and, after reconnecting, the
/// next reply belongs to the next request — no cross-request reply skew.
#[test]
fn truncated_reply_never_desynchronizes_the_client() {
    let registry = Arc::new(ModelRegistry::new(1).unwrap());
    registry
        .add_model("clean", Doubler, TenantConfig::default())
        .unwrap();
    let server =
        WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default()).unwrap();
    // Every odd proxied connection loses the reply 20 bytes in (the
    // header plus a few payload bytes — a torn frame, not a clean EOF).
    let proxy = ChaosProxy::start(
        server.local_addr(),
        vec![Fault::TruncateToClient { after: 20 }, Fault::None],
    )
    .unwrap();

    let mut wire = WireClient::connect_with(
        proxy.local_addr(),
        ClientConfig {
            retries: 0, // surface the cut, don't paper over it
            read_timeout: Some(Duration::from_secs(5)),
            ..Default::default()
        },
    )
    .unwrap();
    let a = input(1);
    let b = input(2);
    // First call: reply cut mid-frame → typed transport error (reply
    // bytes had started, so this is not retryable even with a budget).
    match wire.infer("clean", &a) {
        Err(WireError::Io(_)) | Err(WireError::Malformed(_)) => {}
        other => panic!("expected a typed transport error, got {other:?}"),
    }
    // Second call reconnects (next plan slot: clean) and must get ITS
    // OWN reply — bitwise b's output, not a's.
    assert_eq!(wire.infer("clean", &b).unwrap(), expected(&b));

    proxy.shutdown();
    server.shutdown();
}
