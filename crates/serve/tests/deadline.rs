//! Deadline-aware multi-tenant scheduling: tight deadlines are served
//! ahead of slack ones, expired requests fail fast with the typed error,
//! per-tenant stats stay isolated, and answers remain bit-identical.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use circnn_core::{BlockCirculantMatrix, Workspace};
use circnn_serve::{MultiServer, ServeError, ServeModel, TenantConfig};
use circnn_tensor::init::seeded_rng;

/// Echo model that logs its dispatches and holds the worker for `delay`
/// — makes scheduling decisions observable.
struct LoggingEcho {
    tag: &'static str,
    len: usize,
    delay: Duration,
    log: Arc<Mutex<Vec<&'static str>>>,
}

impl ServeModel for LoggingEcho {
    type Scratch = ();
    fn make_scratch(&self) {}
    fn input_len(&self) -> usize {
        self.len
    }
    fn output_len(&self) -> usize {
        self.len
    }
    fn infer_batch(&self, x: &[f32], _batch: usize, _scratch: &mut (), out: &mut [f32]) {
        self.log.lock().unwrap().push(self.tag);
        std::thread::sleep(self.delay);
        out.copy_from_slice(x);
    }
}

fn one_shot(len: usize) -> TenantConfig {
    TenantConfig {
        max_batch: 1, // every request is its own batch: dispatch order IS schedule order
        max_wait: Duration::from_millis(200),
        queue_capacity: len,
        ..Default::default()
    }
}

/// With one worker and two tenants queued while it is busy, the tenant
/// whose oldest deadline is tightest must be dispatched first — even
/// though the slack tenant's request arrived earlier.
#[test]
fn tight_deadline_preempts_slack_queue() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let pool = MultiServer::start(1).unwrap();
    let slack = pool
        .add_tenant(
            LoggingEcho {
                tag: "slack",
                len: 4,
                delay: Duration::from_millis(30),
                log: Arc::clone(&log),
            },
            one_shot(8),
        )
        .unwrap();
    let tight = pool
        .add_tenant(
            LoggingEcho {
                tag: "tight",
                len: 4,
                delay: Duration::from_millis(30),
                log: Arc::clone(&log),
            },
            one_shot(8),
        )
        .unwrap();
    // Occupy the single worker with a slack-tenant batch…
    let first = slack.submit(vec![1.0; 4]).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    // …then park one slack request (generous budget) BEFORE one tight
    // request (small budget). Arrival order says slack first; deadline
    // order says tight first.
    let second_slack = slack
        .submit_with_deadline(vec![2.0; 4], Some(Duration::from_secs(5)))
        .unwrap();
    let tight_req = tight
        .submit_with_deadline(vec![3.0; 4], Some(Duration::from_millis(120)))
        .unwrap();
    assert_eq!(first.wait().unwrap(), vec![1.0; 4]);
    assert_eq!(tight_req.wait().unwrap(), vec![3.0; 4]);
    assert_eq!(second_slack.wait().unwrap(), vec![2.0; 4]);
    pool.shutdown();
    assert_eq!(
        *log.lock().unwrap(),
        vec!["slack", "tight", "slack"],
        "tight-deadline tenant must be flushed ahead of the slack one"
    );
}

/// A request whose deadline passes while it is still queued fails fast
/// with the typed deadline error and shows up in the tenant's expired
/// counter; it never reaches the model.
#[test]
fn expired_requests_fail_fast_with_typed_error() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let pool = MultiServer::start(1).unwrap();
    let tenant = pool
        .add_tenant(
            LoggingEcho {
                tag: "t",
                len: 4,
                delay: Duration::from_millis(60),
                log: Arc::clone(&log),
            },
            one_shot(8),
        )
        .unwrap();
    // Occupy the worker for 60 ms, then park a request that only has a
    // 5 ms budget: by the time the worker is free it must be expired.
    let busy = tenant.submit(vec![1.0; 4]).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    let doomed = tenant
        .submit_with_deadline(vec![2.0; 4], Some(Duration::from_millis(5)))
        .unwrap();
    assert_eq!(doomed.wait(), Err(ServeError::DeadlineExceeded));
    assert_eq!(busy.wait().unwrap(), vec![1.0; 4]);
    let stats = tenant.stats().unwrap();
    assert_eq!(stats.expired, 1, "expiry must be counted: {stats}");
    assert_eq!(stats.requests, 1, "only the completed request counts");
    pool.shutdown();
    assert_eq!(
        *log.lock().unwrap(),
        vec!["t"],
        "the expired request must never reach the model"
    );
}

/// Multi-tenant answers stay bit-identical to direct single-request
/// `matmat`, and the per-tenant stats account for exactly their own
/// requests (the global-only-stats fix).
#[test]
fn tenants_keep_bitwise_answers_and_private_stats() {
    let wa = Arc::new(BlockCirculantMatrix::random(&mut seeded_rng(11), 48, 64, 8).unwrap());
    let wb = Arc::new(BlockCirculantMatrix::random(&mut seeded_rng(12), 24, 32, 8).unwrap());
    let pool = MultiServer::start(2).unwrap();
    let cfg = TenantConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(500),
        queue_capacity: 64,
        ..Default::default()
    };
    let ha = pool
        .add_tenant_shared(Arc::clone(&wa), cfg.clone())
        .unwrap();
    let hb = pool.add_tenant_shared(Arc::clone(&wb), cfg).unwrap();
    std::thread::scope(|s| {
        for client in 0..4u64 {
            let (ha, hb) = (ha.clone(), hb.clone());
            let (wa, wb) = (Arc::clone(&wa), Arc::clone(&wb));
            s.spawn(move || {
                let mut ws = Workspace::new();
                let mut rng = seeded_rng(900 + client);
                for r in 0..15 {
                    let xa = circnn_tensor::init::uniform(&mut rng, &[64], -1.0, 1.0);
                    let xb = circnn_tensor::init::uniform(&mut rng, &[32], -1.0, 1.0);
                    let ya = ha
                        .submit_with_deadline(xa.data().to_vec(), Some(Duration::from_secs(30)))
                        .unwrap();
                    let yb = hb.submit(xb.data().to_vec()).unwrap();
                    assert_eq!(
                        ya.wait().unwrap(),
                        wa.matmat(xa.data(), 1, &mut ws).unwrap(),
                        "tenant A client {client} request {r} diverged"
                    );
                    assert_eq!(
                        yb.wait().unwrap(),
                        wb.matmat(xb.data(), 1, &mut ws).unwrap(),
                        "tenant B client {client} request {r} diverged"
                    );
                }
            });
        }
    });
    let (sa, sb) = (ha.stats().unwrap(), hb.stats().unwrap());
    assert_eq!(
        sa.requests,
        4 * 15,
        "tenant A counts its own requests: {sa}"
    );
    assert_eq!(
        sb.requests,
        4 * 15,
        "tenant B counts its own requests: {sb}"
    );
    assert_eq!(sa.expired, 0);
    pool.shutdown();
}

/// Backpressure is per tenant: filling one tenant's bounded queue fails
/// its `try_submit` without touching the other tenant.
#[test]
fn backpressure_is_per_tenant() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let pool = MultiServer::start(1).unwrap();
    let slow = pool
        .add_tenant(
            LoggingEcho {
                tag: "slow",
                len: 4,
                delay: Duration::from_millis(25),
                log: Arc::clone(&log),
            },
            TenantConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_capacity: 2,
                ..Default::default()
            },
        )
        .unwrap();
    let free = pool
        .add_tenant(
            LoggingEcho {
                tag: "free",
                len: 4,
                delay: Duration::ZERO,
                log: Arc::clone(&log),
            },
            TenantConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_capacity: 64,
                ..Default::default()
            },
        )
        .unwrap();
    let mut handles = vec![slow.submit(vec![0.0; 4]).unwrap()];
    let mut rejections = 0;
    for i in 0..40 {
        match slow.try_submit_with_deadline(vec![i as f32; 4], None) {
            Ok(h) => handles.push(h),
            Err(ServeError::QueueFull) => rejections += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejections > 0, "a 2-deep queue must reject a 40-burst");
    // The other tenant still accepts and completes.
    assert_eq!(
        free.try_submit_with_deadline(vec![9.0; 4], None)
            .unwrap()
            .wait()
            .unwrap(),
        vec![9.0; 4]
    );
    for h in handles {
        h.wait().unwrap();
    }
    pool.shutdown();
}
