//! Batching-policy edge cases: partial-batch timeout flushes, oversize
//! splits, backpressure, shutdown drains, and the bit-identity guarantee
//! the whole design rests on.

use std::sync::Arc;
use std::time::Duration;

use circnn_core::{BlockCirculantMatrix, Workspace};
use circnn_nn::{Layer, Linear, Relu, Sequential};
use circnn_serve::{OverloadPolicy, SequentialModel, ServeConfig, ServeError, ServeModel, Server};
use circnn_tensor::init::seeded_rng;

fn operator(m: usize, n: usize, k: usize, seed: u64) -> BlockCirculantMatrix {
    BlockCirculantMatrix::random(&mut seeded_rng(seed), m, n, k).expect("valid shape")
}

fn request(n: usize, seed: u64) -> Vec<f32> {
    circnn_tensor::init::uniform(&mut seeded_rng(seed), &[n], -1.0, 1.0)
        .data()
        .to_vec()
}

/// A partial batch must not wait for `max_batch`: once the oldest request
/// ages past `max_wait`, the slab flushes with whatever it holds.
#[test]
fn partial_batch_flushes_on_max_wait() {
    let w = operator(32, 48, 8, 1);
    let server = Server::start(
        w,
        ServeConfig {
            max_batch: 64, // never reachable with 3 requests
            max_wait: Duration::from_millis(20),
            queue_capacity: 64,
            workers: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let handles: Vec<_> = (0..3)
        .map(|i| server.submit(request(48, 100 + i)).unwrap())
        .collect();
    for h in handles {
        h.wait().unwrap(); // resolves despite the batch never filling
    }
    let stats = server.shutdown();
    assert_eq!(stats.requests, 3);
    assert!(
        stats.timeout_flushes >= 1,
        "partial batch must flush on the timer: {stats}"
    );
    assert!(stats.max_occupancy <= 3);
}

/// Offered load beyond `max_batch` splits into multiple full slabs; no
/// slab ever exceeds the cap.
#[test]
fn oversize_load_splits_into_max_batch_slabs() {
    let w = operator(32, 48, 8, 2);
    let server = Server::start(
        w,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(200),
            queue_capacity: 64,
            workers: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let handles: Vec<_> = (0..10)
        .map(|i| server.submit(request(48, 200 + i)).unwrap())
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let stats = server.shutdown();
    assert_eq!(stats.requests, 10);
    assert!(stats.batches >= 3, "10 requests / cap 4 needs ≥ 3 slabs");
    assert!(stats.max_occupancy <= 4, "slab exceeded max_batch: {stats}");
    assert!(
        stats.full_flushes >= 1,
        "at least the first slabs were full"
    );
}

/// Shutdown must drain: every request parked before shutdown resolves
/// with a real result, even though the collector was still waiting on a
/// far-away `max_wait` deadline.
#[test]
fn shutdown_drains_in_flight_requests() {
    let w = operator(32, 48, 8, 3);
    let wref = Arc::new(w);
    let server = Server::start_shared(
        Arc::clone(&wref),
        ServeConfig {
            max_batch: 64,
            max_wait: Duration::from_secs(3600), // would park ~forever
            queue_capacity: 64,
            workers: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let inputs: Vec<Vec<f32>> = (0..7).map(|i| request(48, 300 + i)).collect();
    let handles: Vec<_> = inputs
        .iter()
        .map(|x| server.submit(x.clone()).unwrap())
        .collect();
    let stats = server.shutdown(); // must not hang on max_wait
    assert_eq!(stats.requests, 7, "drain lost requests: {stats}");
    let mut ws = Workspace::new();
    for (x, h) in inputs.iter().zip(handles) {
        let served = h.wait().expect("drained request must carry a result");
        let direct = wref.matmat(x, 1, &mut ws).unwrap();
        assert_eq!(served, direct);
    }
}

/// The headline guarantee: whatever batches the scheduler forms under
/// concurrent load, every client's answer is bit-identical to a direct
/// single-request `matmat` call.
#[test]
fn concurrent_results_are_bit_identical_to_direct_matmat() {
    let (m, n, k) = (64, 96, 16);
    let w = Arc::new(operator(m, n, k, 4));
    let server = Server::start_shared(
        Arc::clone(&w),
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            queue_capacity: 64,
            workers: 2,
            ..Default::default()
        },
    )
    .unwrap();
    std::thread::scope(|s| {
        for client in 0..6u64 {
            let (server, w) = (&server, Arc::clone(&w));
            s.spawn(move || {
                let mut ws = Workspace::new();
                for r in 0..20u64 {
                    let x = request(n, 1000 + client * 97 + r);
                    let served = server.submit(x.clone()).unwrap().wait().unwrap();
                    let direct = w.matmat(&x, 1, &mut ws).unwrap();
                    assert_eq!(served, direct, "client {client} request {r} diverged");
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.requests, 6 * 20);
    // (No assertion on coalescing itself: a fast enough machine may
    // legally drain every request alone. Bit-identity above is the point.)
}

/// Same guarantee through a whole network (`SequentialModel`): served
/// rows equal the read-only `infer` path run directly, bitwise.
#[test]
fn sequential_model_served_equals_direct_infer() {
    let mut rng = seeded_rng(5);
    let mut net = Sequential::new()
        .add(circnn_core::CirculantLinear::new(&mut rng, 48, 64, 16).unwrap())
        .add(Relu::new())
        .add(Linear::new(&mut rng, 64, 10));
    net.set_training(false);
    // Reference copies of the outputs computed through the same read-only
    // path the server uses, one request at a time.
    let inputs: Vec<Vec<f32>> = (0..12).map(|i| request(48, 500 + i)).collect();
    let mut scratch = circnn_nn::InferScratch::new();
    let direct: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| {
            let t = circnn_tensor::Tensor::from_vec(x.clone(), &[1, 48]);
            net.infer(&t, &mut scratch).data().to_vec()
        })
        .collect();
    let model = SequentialModel::new(net, 48).unwrap();
    let server = Server::start(
        model,
        ServeConfig {
            max_batch: 5,
            max_wait: Duration::from_millis(5),
            queue_capacity: 32,
            workers: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let handles: Vec<_> = inputs
        .iter()
        .map(|x| server.submit(x.clone()).unwrap())
        .collect();
    for (h, expect) in handles.into_iter().zip(&direct) {
        assert_eq!(&h.wait().unwrap(), expect);
    }
    server.shutdown();
}

/// A deliberately slow model to make queue states observable.
struct SlowEcho {
    len: usize,
    delay: Duration,
}

impl ServeModel for SlowEcho {
    type Scratch = ();
    fn make_scratch(&self) {}
    fn input_len(&self) -> usize {
        self.len
    }
    fn output_len(&self) -> usize {
        self.len
    }
    fn infer_batch(&self, x: &[f32], _batch: usize, _scratch: &mut (), out: &mut [f32]) {
        std::thread::sleep(self.delay);
        out.copy_from_slice(x);
    }
}

/// Backpressure: with the single worker busy, `try_submit` fails once the
/// bounded queue is full, and succeeds again after it drains.
#[test]
fn bounded_queue_exerts_backpressure() {
    let server = Server::start(
        SlowEcho {
            len: 4,
            delay: Duration::from_millis(30),
        },
        ServeConfig {
            max_batch: 1, // every request is its own (slow) batch
            max_wait: Duration::ZERO,
            queue_capacity: 2,
            workers: 1,
            ..Default::default()
        },
    )
    .unwrap();
    // First request occupies the worker; then stuff the queue. The worker
    // sleeps 30 ms per request, so it cannot absorb a 50-burst that takes
    // microseconds — some try_submits must hit the 2-deep bound.
    let mut handles = vec![server.submit(vec![0.0; 4]).unwrap()];
    let mut rejections = 0;
    for i in 0..50 {
        match server.try_submit(vec![i as f32; 4]) {
            Ok(h) => handles.push(h),
            Err(ServeError::QueueFull) => rejections += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejections > 0, "a 2-deep queue must reject a 50-burst");
    for h in handles {
        h.wait().unwrap();
    }
    // Once drained, the queue accepts again.
    server.try_submit(vec![1.0; 4]).unwrap().wait().unwrap();
    server.shutdown();
}

/// A model that panics on marked inputs, to exercise worker recovery.
struct Fragile {
    len: usize,
}

impl ServeModel for Fragile {
    type Scratch = ();
    fn make_scratch(&self) {}
    fn input_len(&self) -> usize {
        self.len
    }
    fn output_len(&self) -> usize {
        self.len
    }
    fn infer_batch(&self, x: &[f32], _batch: usize, _scratch: &mut (), out: &mut [f32]) {
        assert!(x[0] >= 0.0, "poison request");
        out.copy_from_slice(x);
    }
}

/// A panicking batch cancels its own requests but must not kill the
/// worker: the pool keeps serving afterwards.
#[test]
fn worker_survives_a_panicking_batch() {
    let server = Server::start(
        Fragile { len: 4 },
        ServeConfig {
            max_batch: 1, // keep the poison isolated in its own batch
            max_wait: Duration::ZERO,
            queue_capacity: 8,
            workers: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let poison = server.submit(vec![-1.0; 4]).unwrap();
    assert_eq!(poison.wait(), Err(ServeError::Canceled));
    let healthy = server.submit(vec![2.0; 4]).unwrap();
    assert_eq!(healthy.wait().unwrap(), vec![2.0; 4]);
    let stats = server.shutdown();
    assert_eq!(stats.requests, 1, "only the completed request counts");
}

/// Fragile AND slow: panics on poison rows, and holds the worker long
/// enough to make co-batching deterministic.
struct SlowFragile {
    len: usize,
    delay: Duration,
}

impl ServeModel for SlowFragile {
    type Scratch = ();
    fn make_scratch(&self) {}
    fn input_len(&self) -> usize {
        self.len
    }
    fn output_len(&self) -> usize {
        self.len
    }
    fn infer_batch(&self, x: &[f32], _batch: usize, _scratch: &mut (), out: &mut [f32]) {
        std::thread::sleep(self.delay);
        for row in x.chunks(self.len) {
            assert!(row[0] >= 0.0, "poison request");
        }
        out.copy_from_slice(x);
    }
}

/// Panic quarantine: when a poison request panics a MULTI-request batch,
/// the healthy co-batched members are retried individually and complete
/// with correct bytes — only the poison member is canceled — and the
/// panic/retry counters record exactly what happened.
#[test]
fn panicking_batch_never_takes_healthy_cobatched_requests_down() {
    let server = Server::start(
        SlowFragile {
            len: 4,
            delay: Duration::from_millis(60),
        },
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::ZERO,
            queue_capacity: 8,
            workers: 1,
            ..Default::default()
        },
    )
    .unwrap();
    // Occupy the single worker so the next three requests coalesce into
    // one slab behind it.
    let blocker = server.submit(vec![1.0; 4]).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let poison = server.submit(vec![-1.0, 0.0, 0.0, 0.0]).unwrap();
    let healthy_a = server.submit(vec![2.0; 4]).unwrap();
    let healthy_b = server.submit(vec![3.0; 4]).unwrap();

    assert_eq!(blocker.wait().unwrap(), vec![1.0; 4]);
    // The poison member is canceled; its co-batched neighbours survive
    // with bitwise-correct results.
    assert_eq!(poison.wait(), Err(ServeError::Canceled));
    assert_eq!(healthy_a.wait().unwrap(), vec![2.0; 4]);
    assert_eq!(healthy_b.wait().unwrap(), vec![3.0; 4]);

    let stats = server.shutdown();
    assert_eq!(
        stats.requests, 3,
        "blocker + two rescued members count; the poison does not: {stats}"
    );
    assert_eq!(
        stats.panics, 2,
        "one batch panic + one re-panic in quarantine: {stats}"
    );
    assert_eq!(stats.retries, 3, "all three members were retried: {stats}");
}

/// `OverloadPolicy::Reject`: a blocking submit against a full queue fails
/// fast with the typed Overloaded error instead of parking, the rejection
/// is counted, and already-admitted requests still complete.
#[test]
fn reject_policy_fails_fast_when_the_queue_is_full() {
    let server = Server::start(
        SlowEcho {
            len: 4,
            delay: Duration::from_millis(150),
        },
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 2,
            workers: 1,
            overload: OverloadPolicy::Reject,
        },
    )
    .unwrap();
    let blocker = server.submit(vec![0.0; 4]).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let queued_a = server.submit(vec![1.0; 4]).unwrap();
    let queued_b = server.submit(vec![2.0; 4]).unwrap();
    // Queue is at capacity: Block would park here; Reject must not.
    match server.submit(vec![3.0; 4]) {
        Err(ServeError::Overloaded) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(blocker.wait().unwrap(), vec![0.0; 4]);
    assert_eq!(queued_a.wait().unwrap(), vec![1.0; 4]);
    assert_eq!(queued_b.wait().unwrap(), vec![2.0; 4]);
    let stats = server.shutdown();
    assert_eq!(stats.rejected, 1, "{stats}");
    assert_eq!(stats.shed, 0, "{stats}");
}

/// `OverloadPolicy::ShedOldest`: a blocking submit against a full queue
/// evicts the oldest queued request (which resolves with the typed
/// Overloaded error), admits the new one, and counts the shed.
#[test]
fn shed_oldest_policy_evicts_the_stalest_queued_request() {
    let server = Server::start(
        SlowEcho {
            len: 4,
            delay: Duration::from_millis(150),
        },
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 2,
            workers: 1,
            overload: OverloadPolicy::ShedOldest,
        },
    )
    .unwrap();
    let blocker = server.submit(vec![0.0; 4]).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let oldest = server.submit(vec![1.0; 4]).unwrap();
    let middle = server.submit(vec![2.0; 4]).unwrap();
    // Queue full: the NEW request is admitted and the oldest queued one
    // is shed with a typed error.
    let newest = server.submit(vec![3.0; 4]).unwrap();
    assert_eq!(oldest.wait(), Err(ServeError::Overloaded));
    assert_eq!(blocker.wait().unwrap(), vec![0.0; 4]);
    assert_eq!(middle.wait().unwrap(), vec![2.0; 4]);
    assert_eq!(newest.wait().unwrap(), vec![3.0; 4]);
    let stats = server.shutdown();
    assert_eq!(stats.shed, 1, "{stats}");
    assert_eq!(stats.rejected, 0, "{stats}");
    // Non-blocking submission keeps its fail-fast QueueFull contract
    // regardless of policy (the caller opted out of waiting).
}

/// Mis-sized requests are rejected at the door, not inside a worker.
#[test]
fn wrong_length_is_rejected_on_submit() {
    let server = Server::start(operator(16, 32, 8, 6), ServeConfig::default()).unwrap();
    match server.submit(vec![0.0; 31]) {
        Err(ServeError::BadInput { expected, got }) => {
            assert_eq!((expected, got), (32, 31));
        }
        other => panic!("expected BadInput, got {other:?}"),
    }
    server.shutdown();
}

/// Zero-valued knobs are rejected at startup.
#[test]
fn zero_config_knobs_are_rejected() {
    for cfg in [
        ServeConfig {
            max_batch: 0,
            ..Default::default()
        },
        ServeConfig {
            queue_capacity: 0,
            ..Default::default()
        },
        ServeConfig {
            workers: 0,
            ..Default::default()
        },
    ] {
        match Server::start(operator(16, 32, 8, 7), cfg) {
            Err(ServeError::BadConfig(_)) => {}
            other => panic!("expected BadConfig, got {:?}", other.map(|_| ())),
        }
    }
}
