//! Server-side error type.

/// Everything that can go wrong between submission and completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A [`ServeConfig`](crate::ServeConfig) knob is out of range.
    BadConfig(&'static str),
    /// The request vector length does not match the model's input length.
    BadInput {
        /// Model input length `n`.
        expected: usize,
        /// Submitted vector length.
        got: usize,
    },
    /// `try_submit` found the bounded queue at capacity.
    QueueFull,
    /// The queue was at capacity under an overload policy that degrades
    /// instead of blocking: either the submission was refused
    /// ([`OverloadPolicy::Reject`](crate::OverloadPolicy::Reject)) or this
    /// request was shed from the queue to make room for fresher work
    /// ([`OverloadPolicy::ShedOldest`](crate::OverloadPolicy::ShedOldest)).
    Overloaded,
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The request was dropped without a result (worker died mid-batch).
    Canceled,
    /// The request's deadline passed before a worker dispatched it; it was
    /// failed fast instead of running late.
    DeadlineExceeded,
    /// The request named a tenant that is not (or no longer) registered.
    UnknownTenant,
    /// A network rejected at **model registration**: a layer lacks the
    /// read-only batched inference path, or its serving caches are stale
    /// (`Layer::infer_ready` is false). Raised once when the model is
    /// wrapped, never per request.
    NotServable(String),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadConfig(why) => write!(f, "bad server config: {why}"),
            Self::BadInput { expected, got } => {
                write!(f, "bad request length: expected {expected}, got {got}")
            }
            Self::QueueFull => write!(f, "submission queue is full"),
            Self::Overloaded => write!(f, "server is overloaded (request refused or shed)"),
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::Canceled => write!(f, "request canceled without a result"),
            Self::DeadlineExceeded => write!(f, "request deadline passed before dispatch"),
            Self::UnknownTenant => write!(f, "no such tenant registered"),
            Self::NotServable(why) => write!(f, "network is not servable: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}
