//! The multi-tenant, deadline-aware scheduler: many named models, one
//! shared worker pool.
//!
//! Where [`Server`](crate::Server) wraps *one* model with its own worker
//! threads, [`MultiServer`] runs a fixed pool of workers over any number of
//! **tenants**, each with its own bounded queue, batching policy
//! ([`TenantConfig`]) and statistics. Requests may carry an optional
//! **deadline**; the scheduling rule is:
//!
//! 1. every request has an *effective deadline* — its explicit deadline, or
//!    `enqueued + max_wait` (its batching slack) if it has none, whichever
//!    is tighter;
//! 2. a free worker always serves the queue whose tightest effective
//!    deadline is earliest;
//! 3. while a slab is filling, the wait is bounded by the slab's own
//!    tightest effective deadline *and* by any other queue's urgency — a
//!    tight-deadline tenant preempts a slack tenant's batching slack;
//! 4. a request whose explicit deadline has already passed is failed fast
//!    with [`ServeError::DeadlineExceeded`] instead of running late (and
//!    counted in [`ServeStats::expired`](crate::ServeStats::expired)).
//!
//! Tenants can be added and removed while the pool is serving (hot model
//! swap); removal fails that tenant's parked requests with
//! [`ServeError::ShuttingDown`].

use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::{OverloadPolicy, TenantConfig};
use crate::error::ServeError;
use crate::model::{ErasedModel, ServeModel};
use crate::server::{completion_pair, lock, CompletionCell, ResponseHandle};
use crate::stats::{FlushReason, ServeStats, StatsAccum};

/// One request parked in a tenant queue.
struct Pending {
    input: Vec<f32>,
    enqueued: Instant,
    /// Explicit client deadline; `None` means "whenever the batcher is
    /// ready" (bounded only by the tenant's `max_wait` slack).
    deadline: Option<Instant>,
    done: CompletionCell,
}

impl Pending {
    /// The instant by which this request wants to be dispatched: the
    /// explicit deadline capped by the batching slack.
    fn effective_deadline(&self, max_wait: Duration) -> Instant {
        let flush = self.enqueued + max_wait;
        match self.deadline {
            Some(d) => d.min(flush),
            None => flush,
        }
    }
}

/// One registered model: queue + policy + stats.
struct Tenant {
    id: u64,
    model: Arc<dyn ErasedModel>,
    cfg: TenantConfig,
    queue: VecDeque<Pending>,
    stats: StatsAccum,
}

impl Tenant {
    /// The tightest effective deadline over the parked requests (`None`
    /// when the queue is empty).
    fn urgency(&self) -> Option<Instant> {
        self.queue
            .iter()
            .map(|r| r.effective_deadline(self.cfg.max_wait))
            .min()
    }

    /// Fails every parked request whose explicit deadline has passed,
    /// removing it from the queue. Returns how many were expired.
    fn expire_overdue(&mut self, now: Instant) -> usize {
        let mut expired = 0;
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].deadline.is_some_and(|d| d <= now) {
                let r = self.queue.remove(i).expect("index checked in bounds");
                r.done.fulfill(Err(ServeError::DeadlineExceeded));
                self.stats.record_expired();
                expired += 1;
            } else {
                i += 1;
            }
        }
        expired
    }
}

/// Everything behind the one pool mutex.
struct PoolState {
    tenants: Vec<Tenant>,
    next_id: u64,
    shutdown: bool,
}

impl PoolState {
    fn tenant_mut(&mut self, id: u64) -> Option<&mut Tenant> {
        self.tenants.iter_mut().find(|t| t.id == id)
    }

    fn tenant(&self, id: u64) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.id == id)
    }
}

/// State shared by the pool handle, the workers and every tenant handle.
struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for requests (and for shutdown).
    wake_workers: Condvar,
    /// Backpressured submitters wait here for queue space.
    space: Condvar,
}

/// A multi-tenant inference server: one shared worker pool serving many
/// named models with deadline-aware scheduling.
///
/// # Examples
///
/// ```
/// use circnn_core::BlockCirculantMatrix;
/// use circnn_serve::{MultiServer, TenantConfig};
/// use circnn_tensor::init::seeded_rng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pool = MultiServer::start(2)?;
/// let a = pool.add_tenant(
///     BlockCirculantMatrix::random(&mut seeded_rng(0), 32, 64, 8)?,
///     TenantConfig::default(),
/// )?;
/// let b = pool.add_tenant(
///     BlockCirculantMatrix::random(&mut seeded_rng(1), 16, 32, 8)?,
///     TenantConfig::default(),
/// )?;
/// let ya = a.submit(vec![0.5; 64])?;
/// let yb = b.submit(vec![0.5; 32])?;
/// assert_eq!(ya.wait()?.len(), 32);
/// assert_eq!(yb.wait()?.len(), 16);
/// pool.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct MultiServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl core::fmt::Debug for MultiServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MultiServer")
            .field("workers", &self.workers.len())
            .field("tenants", &self.tenant_count())
            .finish()
    }
}

impl MultiServer {
    /// Starts the shared worker pool (no tenants yet).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] if `workers` is zero.
    pub fn start(workers: usize) -> Result<Self, ServeError> {
        if workers == 0 {
            return Err(ServeError::BadConfig("workers must be ≥ 1"));
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                tenants: Vec::new(),
                next_id: 0,
                shutdown: false,
            }),
            wake_workers: Condvar::new(),
            space: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("circnn-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker")
            })
            .collect();
        Ok(Self { shared, workers })
    }

    /// Registers a model as a new tenant and returns its handle.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero-valued policy knobs or
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn add_tenant<M: ServeModel>(
        &self,
        model: M,
        cfg: TenantConfig,
    ) -> Result<TenantHandle, ServeError> {
        self.add_tenant_shared(Arc::new(model), cfg)
    }

    /// [`MultiServer::add_tenant`] around an already-shared model (so the
    /// caller can keep a reference for direct comparison).
    ///
    /// # Errors
    ///
    /// As [`MultiServer::add_tenant`].
    pub fn add_tenant_shared<M: ServeModel>(
        &self,
        model: Arc<M>,
        cfg: TenantConfig,
    ) -> Result<TenantHandle, ServeError> {
        cfg.validate()?;
        let model: Arc<dyn ErasedModel> = model;
        let (input_len, output_len) = (model.input_len(), model.output_len());
        let mut st = lock(&self.shared.state);
        if st.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        let id = st.next_id;
        st.next_id += 1;
        st.tenants.push(Tenant {
            id,
            model,
            cfg,
            queue: VecDeque::new(),
            stats: StatsAccum::default(),
        });
        Ok(TenantHandle {
            shared: Arc::clone(&self.shared),
            id,
            input_len,
            output_len,
        })
    }

    /// Unregisters a tenant (hot removal). Requests still parked in its
    /// queue fail with [`ServeError::ShuttingDown`]; a batch already
    /// dispatched completes normally. Returns `false` if the tenant was
    /// already gone.
    pub fn remove_tenant(&self, handle: &TenantHandle) -> bool {
        let mut st = lock(&self.shared.state);
        let Some(pos) = st.tenants.iter().position(|t| t.id == handle.id) else {
            return false;
        };
        let tenant = st.tenants.remove(pos);
        drop(st);
        self.shared.space.notify_all();
        for r in tenant.queue {
            r.done.fulfill(Err(ServeError::ShuttingDown));
        }
        true
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        lock(&self.shared.state).tenants.len()
    }

    /// Graceful shutdown: stop accepting requests, drain every queue
    /// (every outstanding [`ResponseHandle`] resolves), and join the
    /// workers. Tenant handles remain valid for [`TenantHandle::stats`].
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.wake_workers.notify_all();
        self.shared.space.notify_all();
    }
}

impl Drop for MultiServer {
    /// Dropping the pool without [`MultiServer::shutdown`] still drains
    /// gracefully.
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// What a submission does when the tenant queue is at capacity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SubmitMode {
    /// Apply the overload policy; park on the space condvar under
    /// [`OverloadPolicy::Block`].
    Block,
    /// `QueueFull` immediately, before the policy gets a say.
    FailFast,
    /// Apply the overload policy, but never park: `Block` maps to
    /// `QueueFull` (the caller backpressures its own source).
    Policy,
}

/// A tenant's submission interface, returned by
/// [`MultiServer::add_tenant`]. Cloneable — a serving front-end hands one
/// clone to every connection.
#[derive(Clone)]
pub struct TenantHandle {
    shared: Arc<Shared>,
    id: u64,
    input_len: usize,
    output_len: usize,
}

impl core::fmt::Debug for TenantHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TenantHandle")
            .field("id", &self.id)
            .field("input_len", &self.input_len)
            .field("output_len", &self.output_len)
            .finish()
    }
}

impl TenantHandle {
    /// Length of one request vector (`n`).
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Length of one response vector (`m`).
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Submits one `[n]` request with no deadline, blocking while this
    /// tenant's queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] on a mis-sized vector,
    /// [`ServeError::UnknownTenant`] after removal, or
    /// [`ServeError::ShuttingDown`] after pool shutdown began.
    pub fn submit(&self, mut input: Vec<f32>) -> Result<ResponseHandle, ServeError> {
        self.enqueue(&mut input, None, SubmitMode::Block)
    }

    /// Submits with an optional deadline **budget**: the request must be
    /// dispatched within `budget` of now or it fails fast with
    /// [`ServeError::DeadlineExceeded`]. Tighter budgets are scheduled
    /// ahead of slacker queues.
    ///
    /// # Errors
    ///
    /// As [`TenantHandle::submit`]; the deadline error surfaces through
    /// the returned handle's `wait`.
    pub fn submit_with_deadline(
        &self,
        mut input: Vec<f32>,
        budget: Option<Duration>,
    ) -> Result<ResponseHandle, ServeError> {
        self.enqueue(
            &mut input,
            budget.map(|b| Instant::now() + b),
            SubmitMode::Block,
        )
    }

    /// Non-blocking [`TenantHandle::submit_with_deadline`].
    ///
    /// # Errors
    ///
    /// As [`TenantHandle::submit_with_deadline`], plus
    /// [`ServeError::QueueFull`] instead of blocking.
    pub fn try_submit_with_deadline(
        &self,
        mut input: Vec<f32>,
        budget: Option<Duration>,
    ) -> Result<ResponseHandle, ServeError> {
        self.enqueue(
            &mut input,
            budget.map(|b| Instant::now() + b),
            SubmitMode::FailFast,
        )
    }

    /// Policy-aware non-blocking submit: at capacity, `Reject` and
    /// `ShedOldest` behave exactly as a blocking submission would
    /// (recorded rejection / shed-then-admit), while the `Block` policy —
    /// which cannot block here — surfaces [`ServeError::QueueFull`] so
    /// the caller applies its own backpressure (an event loop stops
    /// reading the connection and re-offers when the queue drains).
    ///
    /// `input` is passed by mutable reference so the caller keeps the
    /// vector on rejection (and can park it for a later re-offer without
    /// a copy); on success it is taken and left empty.
    ///
    /// # Errors
    ///
    /// As [`TenantHandle::submit_with_deadline`], plus
    /// [`ServeError::QueueFull`] under the `Block` policy at capacity.
    pub fn offer_with_deadline(
        &self,
        input: &mut Vec<f32>,
        budget: Option<Duration>,
    ) -> Result<ResponseHandle, ServeError> {
        self.enqueue(
            input,
            budget.map(|b| Instant::now() + b),
            SubmitMode::Policy,
        )
    }

    fn enqueue(
        &self,
        input: &mut Vec<f32>,
        deadline: Option<Instant>,
        mode: SubmitMode,
    ) -> Result<ResponseHandle, ServeError> {
        if input.len() != self.input_len {
            return Err(ServeError::BadInput {
                expected: self.input_len,
                got: input.len(),
            });
        }
        let mut st = lock(&self.shared.state);
        loop {
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let Some(pos) = st.tenants.iter().position(|t| t.id == self.id) else {
                return Err(ServeError::UnknownTenant);
            };
            let t = &mut st.tenants[pos];
            if t.queue.len() >= t.cfg.queue_capacity {
                // The queue is at capacity: the overload policy decides.
                // Fail-fast submitters asked for `QueueFull` regardless.
                if mode == SubmitMode::FailFast {
                    return Err(ServeError::QueueFull);
                }
                match t.cfg.overload {
                    OverloadPolicy::Block => {
                        // A policy-aware non-blocking submitter cannot
                        // park here; `QueueFull` tells it to backpressure
                        // its own source instead.
                        if mode == SubmitMode::Policy {
                            return Err(ServeError::QueueFull);
                        }
                        st = self
                            .shared
                            .space
                            .wait(st)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        continue;
                    }
                    OverloadPolicy::Reject => {
                        t.stats.record_rejected();
                        return Err(ServeError::Overloaded);
                    }
                    OverloadPolicy::ShedOldest => {
                        // Cancel the queued request that is worst off
                        // against its staleness deadline (the earliest
                        // effective deadline — it would be answered
                        // uselessly late anyway), then fall through and
                        // admit the fresh one.
                        let max_wait = t.cfg.max_wait;
                        if let Some(worst) = (0..t.queue.len())
                            .min_by_key(|&i| t.queue[i].effective_deadline(max_wait))
                        {
                            let r = t.queue.remove(worst).expect("index in bounds");
                            r.done.fulfill(Err(ServeError::Overloaded));
                            t.stats.record_shed();
                        }
                    }
                }
            }
            let (done, handle) = completion_pair();
            t.queue.push_back(Pending {
                input: std::mem::take(input),
                enqueued: Instant::now(),
                deadline,
                done,
            });
            drop(st);
            // notify_all, not notify_one: a single wakeup could land on
            // a worker mid-collection for a *different* tenant, which
            // absorbs it without re-notifying — leaving an idle worker
            // parked while this request ages toward its deadline.
            self.shared.wake_workers.notify_all();
            return Ok(handle);
        }
    }

    /// Requests currently parked in this tenant's queue.
    pub fn pending(&self) -> usize {
        lock(&self.shared.state)
            .tenant(self.id)
            .map_or(0, |t| t.queue.len())
    }

    /// Snapshot of this tenant's serving statistics (occupancy, flush
    /// reasons, expirations, latency — per tenant, not pool-global).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownTenant`] after removal.
    pub fn stats(&self) -> Result<ServeStats, ServeError> {
        lock(&self.shared.state)
            .tenant(self.id)
            .map(|t| t.stats.snapshot())
            .ok_or(ServeError::UnknownTenant)
    }
}

/// One pool worker: pick the tightest queue → collect → dispatch →
/// fulfill, forever.
fn worker_loop(shared: &Shared) {
    // Per-tenant scratch (created by the model, so the erased downcast is
    // infallible) plus grow-only slab/output staging shared across tenants.
    let mut scratches: HashMap<u64, Box<dyn Any + Send>> = HashMap::new();
    let mut slab: Vec<f32> = Vec::new();
    let mut out: Vec<f32> = Vec::new();
    let mut batch: Vec<Pending> = Vec::new();
    loop {
        let model;
        let tid;
        let reason;
        {
            let mut st = lock(&shared.state);
            // Pick phase: fail expired requests fast, then take the queue
            // whose tightest effective deadline is earliest.
            let picked = loop {
                let now = Instant::now();
                let mut expired = 0;
                for t in st.tenants.iter_mut() {
                    expired += t.expire_overdue(now);
                }
                if expired > 0 {
                    // Expiry freed queue capacity.
                    shared.space.notify_all();
                }
                let best = st
                    .tenants
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.queue.is_empty())
                    .min_by_key(|(_, t)| t.urgency().expect("queue is non-empty"))
                    .map(|(i, _)| i);
                if let Some(i) = best {
                    break i;
                }
                if st.shutdown {
                    return;
                }
                st = shared
                    .wake_workers
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            };
            let t = &mut st.tenants[picked];
            tid = t.id;
            model = Arc::clone(&t.model);
            let max_batch = t.cfg.max_batch;
            let max_wait = t.cfg.max_wait;
            while batch.len() < max_batch {
                match t.queue.pop_front() {
                    Some(r) => batch.push(r),
                    None => break,
                }
            }
            // Every pop frees queue capacity — wake blocked submitters now.
            shared.space.notify_all();
            // Collection wait: fill the slab until it is full, its own
            // tightest effective deadline arrives, or another queue becomes
            // more urgent than waiting any longer would allow.
            loop {
                if batch.len() >= max_batch {
                    reason = FlushReason::Full;
                    break;
                }
                if st.shutdown {
                    reason = FlushReason::Drain;
                    break;
                }
                let flush_at = batch
                    .iter()
                    .map(|r| r.effective_deadline(max_wait))
                    .min()
                    .expect("batch is non-empty");
                let other_urgent = st
                    .tenants
                    .iter()
                    .filter(|t| t.id != tid && !t.queue.is_empty())
                    .filter_map(Tenant::urgency)
                    .min();
                let wait_until = match other_urgent {
                    // A tighter queue elsewhere: stop batching as soon as
                    // its deadline bites, so this worker frees up for it.
                    Some(u) if u < flush_at => u,
                    _ => flush_at,
                };
                let now = Instant::now();
                if now >= wait_until {
                    reason = FlushReason::Timeout;
                    break;
                }
                let (guard, _) = shared
                    .wake_workers
                    .wait_timeout(st, wait_until - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = guard;
                // Drain newly arrived requests (the tenant may have been
                // hot-removed while the lock was released).
                let Some(t) = st.tenant_mut(tid) else {
                    reason = FlushReason::Timeout;
                    break;
                };
                let now = Instant::now();
                while batch.len() < max_batch {
                    match t.queue.pop_front() {
                        Some(r) if r.deadline.is_some_and(|d| d <= now) => {
                            r.done.fulfill(Err(ServeError::DeadlineExceeded));
                            t.stats.record_expired();
                        }
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                shared.space.notify_all();
            }
        }
        // Dispatch outside the lock: other workers keep scheduling while
        // this slab runs.
        let (n, m) = (model.input_len(), model.output_len());
        let b = batch.len();
        if slab.len() < b * n {
            slab.resize(b * n, 0.0);
        }
        if out.len() < b * m {
            out.resize(b * m, 0.0);
        }
        for (i, r) in batch.iter().enumerate() {
            slab[i * n..(i + 1) * n].copy_from_slice(&r.input);
        }
        let scratch = scratches
            .entry(tid)
            .or_insert_with(|| model.make_scratch_box());
        let t0 = Instant::now();
        // A panicking model must not take a pool worker down (it would
        // starve every tenant): cancel this batch, discard the possibly
        // inconsistent scratch, keep serving.
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            model.infer_batch_erased(&slab[..b * n], b, scratch.as_mut(), &mut out[..b * m]);
        }));
        let infer = t0.elapsed();
        if ran.is_err() {
            // The batch is poisoned: some member crashed the model. Discard
            // the possibly inconsistent scratch, then quarantine — retry
            // each member alone with a fresh scratch so one poison request
            // cannot take its healthy co-batched neighbors down with it.
            scratches.remove(&tid);
            if let Some(t) = lock(&shared.state).tenant_mut(tid) {
                t.stats.record_panic();
            }
            if b == 1 {
                // The lone member *is* the poison; retrying it alone would
                // only panic again.
                for r in batch.drain(..) {
                    r.done.fulfill(Err(ServeError::Canceled));
                }
                continue;
            }
            let mut succeeded = 0u64;
            let mut repanics = 0u64;
            for (i, r) in batch.drain(..).enumerate() {
                let mut scratch = model.make_scratch_box();
                let one = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    model.infer_batch_erased(
                        &slab[i * n..(i + 1) * n],
                        1,
                        scratch.as_mut(),
                        &mut out[..m],
                    );
                }));
                match one {
                    Ok(()) => {
                        succeeded += 1;
                        r.done.fulfill(Ok(out[..m].to_vec()));
                    }
                    Err(_) => {
                        repanics += 1;
                        r.done.fulfill(Err(ServeError::Canceled));
                    }
                }
            }
            if let Some(t) = lock(&shared.state).tenant_mut(tid) {
                t.stats.record_retries(b as u64, succeeded);
                for _ in 0..repanics {
                    t.stats.record_panic();
                }
            }
            continue;
        }
        let completed = Instant::now();
        let mut latency_sum = Duration::ZERO;
        let mut latency_max = Duration::ZERO;
        for r in &batch {
            let waited = completed.saturating_duration_since(r.enqueued);
            latency_sum += waited;
            latency_max = latency_max.max(waited);
        }
        // Per-tenant accounting BEFORE fulfilling: a client that has its
        // reply in hand must see this batch in the tenant's stats. (The
        // tenant may have been removed while the batch ran; its stats die
        // with it.)
        if let Some(t) = lock(&shared.state).tenant_mut(tid) {
            t.stats
                .record_batch(b, reason, infer, latency_sum, latency_max);
        }
        for (i, r) in batch.drain(..).enumerate() {
            r.done.fulfill(Ok(out[i * m..(i + 1) * m].to_vec()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circnn_core::BlockCirculantMatrix;
    use circnn_tensor::init::seeded_rng;

    fn operator(m: usize, n: usize, k: usize, seed: u64) -> BlockCirculantMatrix {
        BlockCirculantMatrix::random(&mut seeded_rng(seed), m, n, k).expect("valid shape")
    }

    #[test]
    fn tenants_are_isolated_and_removable() {
        let pool = MultiServer::start(1).unwrap();
        let a = pool
            .add_tenant(operator(16, 24, 8, 1), TenantConfig::default())
            .unwrap();
        let b = pool
            .add_tenant(operator(8, 16, 4, 2), TenantConfig::default())
            .unwrap();
        assert_eq!(pool.tenant_count(), 2);
        assert_eq!(a.submit(vec![0.1; 24]).unwrap().wait().unwrap().len(), 16);
        assert_eq!(b.submit(vec![0.1; 16]).unwrap().wait().unwrap().len(), 8);
        assert!(pool.remove_tenant(&a));
        assert!(!pool.remove_tenant(&a), "double removal reports false");
        assert_eq!(
            a.submit(vec![0.1; 24]).unwrap_err(),
            ServeError::UnknownTenant
        );
        assert_eq!(a.stats().unwrap_err(), ServeError::UnknownTenant);
        // The surviving tenant keeps serving.
        assert_eq!(b.submit(vec![0.2; 16]).unwrap().wait().unwrap().len(), 8);
        pool.shutdown();
        assert!(b.stats().unwrap().requests >= 2);
    }

    #[test]
    fn mis_sized_and_post_shutdown_submissions_fail() {
        let pool = MultiServer::start(1).unwrap();
        let h = pool
            .add_tenant(operator(8, 16, 4, 3), TenantConfig::default())
            .unwrap();
        assert!(matches!(
            h.submit(vec![0.0; 15]),
            Err(ServeError::BadInput {
                expected: 16,
                got: 15
            })
        ));
        pool.shutdown();
        assert_eq!(
            h.submit(vec![0.0; 16]).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn zero_knobs_are_rejected() {
        assert!(matches!(
            MultiServer::start(0),
            Err(ServeError::BadConfig(_))
        ));
        let pool = MultiServer::start(1).unwrap();
        let bad = TenantConfig {
            max_batch: 0,
            ..Default::default()
        };
        assert!(matches!(
            pool.add_tenant(operator(8, 16, 4, 4), bad),
            Err(ServeError::BadConfig(_))
        ));
    }
}
