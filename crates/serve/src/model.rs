//! The model contract the server dispatches batches to.
//!
//! The server is generic over anything that can turn a `[batch, n]` slab
//! into a `[batch, m]` slab from behind a shared reference: the raw
//! [`BlockCirculantMatrix`] operator, or a whole network via
//! [`SequentialModel`]. Per-worker mutable state (FFT planes, spectra
//! arenas) lives in the associated `Scratch` type — one per worker thread,
//! created by the model so it can pre-warm buffers.

use circnn_core::{
    default_batch_threads, BlockCirculantMatrix, QuantWorkspace, QuantizedLinear,
    QuantizedOperator, Workspace,
};
use circnn_nn::{InferScratch, Layer, Sequential};
use circnn_tensor::Tensor;

use crate::error::ServeError;

/// A batched inference backend the server can share across workers.
///
/// Implementations must be **batch-composition invariant**: each input
/// row's output must be bit-identical regardless of which batch the
/// scheduler coalesced it into. The block-circulant engine guarantees this
/// (the batch dimension is an independent SIMD lane), which is what lets
/// the server batch freely without changing any client's answer.
pub trait ServeModel: Send + Sync + 'static {
    /// Per-worker mutable scratch (spectra arenas, staging planes, …).
    type Scratch: Send + 'static;

    /// Creates one worker's scratch. Called once per worker at startup.
    fn make_scratch(&self) -> Self::Scratch;

    /// Length of one request vector (`n`).
    fn input_len(&self) -> usize;

    /// Length of one response vector (`m`).
    fn output_len(&self) -> usize;

    /// Runs the batch: `x` is row-major `[batch, input_len]`, `out` is
    /// row-major `[batch, output_len]`.
    fn infer_batch(&self, x: &[f32], batch: usize, scratch: &mut Self::Scratch, out: &mut [f32]);
}

/// The raw operator is itself a servable model: `y = W·x` per request.
impl ServeModel for BlockCirculantMatrix {
    type Scratch = Workspace;

    fn make_scratch(&self) -> Workspace {
        Workspace::new()
    }

    fn input_len(&self) -> usize {
        self.cols()
    }

    fn output_len(&self) -> usize {
        self.rows()
    }

    fn infer_batch(&self, x: &[f32], batch: usize, scratch: &mut Workspace, out: &mut [f32]) {
        self.forward_batch_into(x, batch, scratch, out)
            .expect("server validated slab dimensions");
    }
}

impl ServeModel for QuantizedOperator {
    type Scratch = QuantWorkspace;

    fn make_scratch(&self) -> QuantWorkspace {
        QuantWorkspace::new()
    }

    fn input_len(&self) -> usize {
        self.cols()
    }

    fn output_len(&self) -> usize {
        self.rows()
    }

    fn infer_batch(&self, x: &[f32], batch: usize, scratch: &mut QuantWorkspace, out: &mut [f32]) {
        self.infer_batch_into(x, batch, scratch, out, default_batch_threads())
            .expect("server validated slab dimensions");
    }
}

impl ServeModel for QuantizedLinear {
    type Scratch = QuantWorkspace;

    fn make_scratch(&self) -> QuantWorkspace {
        QuantWorkspace::new()
    }

    fn input_len(&self) -> usize {
        self.operator().cols()
    }

    fn output_len(&self) -> usize {
        self.operator().rows()
    }

    fn infer_batch(&self, x: &[f32], batch: usize, scratch: &mut QuantWorkspace, out: &mut [f32]) {
        self.infer_batch_into(x, batch, scratch, out, default_batch_threads())
            .expect("server validated slab dimensions");
    }
}

/// A whole [`Sequential`] network as a servable model.
///
/// Wraps the network together with its flat per-request input/output
/// lengths (a `Sequential` does not know its own geometry) and pins it to
/// inference mode. Batches run through the read-only
/// [`Sequential::infer`] path, so one wrapped network serves every worker
/// thread, each with a private [`InferScratch`].
///
/// # Examples
///
/// ```
/// use circnn_nn::{Linear, Relu, Sequential};
/// use circnn_serve::{SequentialModel, ServeModel};
/// use circnn_tensor::init::seeded_rng;
///
/// let mut rng = seeded_rng(0);
/// let net = Sequential::new()
///     .add(Linear::new(&mut rng, 16, 32))
///     .add(Relu::new())
///     .add(Linear::new(&mut rng, 32, 4));
/// let model = SequentialModel::new(net, 16).expect("FC nets are servable");
/// assert_eq!(model.output_len(), 4);
/// ```
#[derive(Debug)]
pub struct SequentialModel {
    net: Sequential,
    /// Per-sample input dims the flat request vector reshapes to (`[n]` for
    /// MLPs, `[C, H, W]` for convnets).
    input_shape: Vec<usize>,
    input_len: usize,
    output_len: usize,
}

impl SequentialModel {
    /// Wraps `net` for serving flat requests of `input_len` values
    /// (MLP-style `[batch, n]` geometry). Convnets take
    /// [`SequentialModel::with_input_shape`] instead.
    ///
    /// Switches the network to inference mode (syncing circulant spectra
    /// caches), verifies every layer supports the read-only inference path
    /// ([`Layer::supports_infer`]) **and** that its serving caches are
    /// fresh ([`Layer::infer_ready`]) — failing at registration with a
    /// typed [`ServeError::NotServable`], not per request inside a
    /// worker — and runs one probe batch to discover the output length.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::NotServable`] naming the offending layer if
    /// any layer lacks [`Layer::infer_batch`] support or reports stale
    /// inference caches.
    ///
    /// # Panics
    ///
    /// The probe batch panics (with the first layer's own length-mismatch
    /// message) if `input_len` does not match the network's input
    /// geometry — the `Layer` contract has no shape query to validate
    /// against up front.
    pub fn new(net: Sequential, input_len: usize) -> Result<Self, ServeError> {
        Self::with_input_shape(net, &[input_len])
    }

    /// Wraps `net` for serving requests whose flat vectors reshape to the
    /// per-sample `input_shape` (e.g. `[C, H, W]` for a convnet): batches
    /// run as `[batch, C, H, W]` tensors through [`Sequential::infer`].
    ///
    /// # Errors
    ///
    /// As [`SequentialModel::new`], plus an error for an empty or
    /// zero-sized shape.
    ///
    /// # Panics
    ///
    /// As [`SequentialModel::new`], if `input_shape` does not match the
    /// network's input geometry.
    pub fn with_input_shape(
        mut net: Sequential,
        input_shape: &[usize],
    ) -> Result<Self, ServeError> {
        let input_len: usize = input_shape.iter().product();
        if input_shape.is_empty() || input_len == 0 {
            return Err(ServeError::NotServable(
                "input shape must be non-empty with nonzero dims".to_string(),
            ));
        }
        net.set_training(false);
        if let Some(layer) = net.iter().find(|l| !l.supports_infer()) {
            return Err(ServeError::NotServable(format!(
                "{} has no read-only batched inference path",
                layer.name()
            )));
        }
        // set_training(false) syncs every stock layer's spectra caches;
        // this guards custom layers whose set_training does not, so a
        // stale-cache model is rejected here — once, typed — instead of
        // tripping a per-request assertion in a worker thread.
        if let Some(layer) = net.iter().find(|l| !l.infer_ready()) {
            return Err(ServeError::NotServable(format!(
                "{} has stale inference caches (its set_training(false) did not sync them)",
                layer.name()
            )));
        }
        let mut probe_dims = vec![1];
        probe_dims.extend_from_slice(input_shape);
        let probe = Tensor::zeros(&probe_dims);
        let output_len = net.infer(&probe, &mut InferScratch::new()).len();
        Ok(Self {
            net,
            input_shape: input_shape.to_vec(),
            input_len,
            output_len,
        })
    }

    /// The wrapped network.
    pub fn network(&self) -> &Sequential {
        &self.net
    }

    /// The per-sample input dims requests reshape to.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }
}

impl ServeModel for SequentialModel {
    /// Layer scratch slots plus a reusable input-staging buffer.
    type Scratch = (InferScratch, Vec<f32>);

    fn make_scratch(&self) -> Self::Scratch {
        (InferScratch::new(), Vec::new())
    }

    fn input_len(&self) -> usize {
        self.input_len
    }

    fn output_len(&self) -> usize {
        self.output_len
    }

    fn infer_batch(&self, x: &[f32], batch: usize, scratch: &mut Self::Scratch, out: &mut [f32]) {
        let (slots, staging) = scratch;
        // Stage the slab through a buffer that round-trips in and out of
        // the input `Tensor`, so steady-state dispatch reuses its capacity
        // instead of allocating a fresh copy per batch.
        staging.clear();
        staging.extend_from_slice(x);
        let mut dims = vec![batch];
        dims.extend_from_slice(&self.input_shape);
        let input = Tensor::from_vec(std::mem::take(staging), &dims);
        let y = self.net.infer(&input, slots);
        out.copy_from_slice(y.data());
        *staging = input.into_vec();
    }
}

/// Object-safe erasure of [`ServeModel`] — the associated `Scratch` type
/// prevents boxing the trait directly, but the multi-tenant scheduler must
/// hold heterogeneous models (an MLP next to a convnet next to a raw
/// operator) behind one pointer type. Workers keep each tenant's scratch
/// as a `Box<dyn Any>` created by the model itself, so the downcast inside
/// [`ErasedModel::infer_batch_erased`] cannot fail.
pub(crate) trait ErasedModel: Send + Sync {
    fn make_scratch_box(&self) -> Box<dyn std::any::Any + Send>;
    fn input_len(&self) -> usize;
    fn output_len(&self) -> usize;
    fn infer_batch_erased(
        &self,
        x: &[f32],
        batch: usize,
        scratch: &mut (dyn std::any::Any + Send),
        out: &mut [f32],
    );
}

impl<M: ServeModel> ErasedModel for M {
    fn make_scratch_box(&self) -> Box<dyn std::any::Any + Send> {
        Box::new(self.make_scratch())
    }

    fn input_len(&self) -> usize {
        ServeModel::input_len(self)
    }

    fn output_len(&self) -> usize {
        ServeModel::output_len(self)
    }

    fn infer_batch_erased(
        &self,
        x: &[f32],
        batch: usize,
        scratch: &mut (dyn std::any::Any + Send),
        out: &mut [f32],
    ) {
        let scratch = scratch
            .downcast_mut::<M::Scratch>()
            .expect("scratch was created by this model's make_scratch");
        self.infer_batch(x, batch, scratch, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circnn_nn::Relu;
    use circnn_tensor::init::seeded_rng;

    #[test]
    fn quantized_operator_serves_within_its_error_bound() {
        use circnn_core::QuantConfig;
        let mut rng = seeded_rng(9);
        let m = BlockCirculantMatrix::random(&mut rng, 24, 32, 8).unwrap();
        let qop =
            circnn_core::QuantizedOperator::from_operator(&m, QuantConfig::default()).unwrap();
        assert_eq!(ServeModel::input_len(&qop), 32);
        assert_eq!(ServeModel::output_len(&qop), 24);
        let x: Vec<f32> = (0..2 * 32).map(|i| (i as f32 * 0.11).sin() * 0.9).collect();
        let mut scratch = ServeModel::make_scratch(&qop);
        let mut out = vec![0.0f32; 2 * 24];
        qop.infer_batch(&x, 2, &mut scratch, &mut out);
        let mut ws = Workspace::new();
        let mut golden = vec![0.0f32; 2 * 24];
        m.forward_batch_into(&x, 2, &mut ws, &mut golden).unwrap();
        let bound = qop.error_bound();
        for (a, b) in out.iter().zip(&golden) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn quantized_linear_serves_with_bias() {
        use circnn_core::{CirculantLinear, QuantConfig};
        let mut rng = seeded_rng(11);
        let weights = circnn_tensor::init::uniform(&mut rng, &[(24 / 8) * (16 / 8) * 8], -0.4, 0.4);
        let weights = weights.data();
        let bias: Vec<f32> = (0..24).map(|i| 0.05 * i as f32 - 0.6).collect();
        let mut fc = CirculantLinear::from_weights(16, 24, 8, weights, bias).unwrap();
        let ql = fc.quantize(QuantConfig::default()).unwrap();
        assert_eq!(ServeModel::input_len(&ql), 16);
        assert_eq!(ServeModel::output_len(&ql), 24);
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.21).cos() * 0.8).collect();
        let mut scratch = ServeModel::make_scratch(&ql);
        let mut out = vec![0.0f32; 24];
        ql.infer_batch(&x, 1, &mut scratch, &mut out);
        // The bias must actually land: zeroed-bias output differs.
        let ql0 = circnn_core::QuantizedLinear::new(ql.operator().clone(), vec![0.0; 24]).unwrap();
        let mut out0 = vec![0.0f32; 24];
        let mut s0 = ServeModel::make_scratch(&ql0);
        ql0.infer_batch(&x, 1, &mut s0, &mut out0);
        for ((a, b), bias) in out.iter().zip(&out0).zip(ql.bias()) {
            assert!((a - (b + bias)).abs() < 1e-5);
        }
    }

    #[test]
    fn probe_discovers_output_len() {
        let mut rng = seeded_rng(3);
        let net = Sequential::new()
            .add(circnn_nn::Linear::new(&mut rng, 8, 12))
            .add(Relu::new())
            .add(circnn_nn::Linear::new(&mut rng, 12, 5));
        let model = SequentialModel::new(net, 8).unwrap();
        assert_eq!(ServeModel::input_len(&model), 8);
        assert_eq!(ServeModel::output_len(&model), 5);
    }

    #[test]
    fn unservable_layer_is_rejected_at_construction() {
        // Every stock layer now supports read-only inference, so the
        // rejection path needs a deliberately opaque custom layer.
        struct Opaque;
        impl Layer for Opaque {
            fn forward(&mut self, input: &Tensor) -> Tensor {
                input.clone()
            }
            fn backward(&mut self, grad: &Tensor) -> Tensor {
                grad.clone()
            }
            fn name(&self) -> &'static str {
                "Opaque"
            }
        }
        let net = Sequential::new().add(Opaque);
        let err = SequentialModel::new(net, 25).unwrap_err();
        assert!(matches!(err, ServeError::NotServable(_)), "{err}");
        assert!(err.to_string().contains("not servable"), "{err}");
    }

    #[test]
    fn stale_inference_caches_are_rejected_at_registration() {
        // A layer that claims infer support but whose set_training(false)
        // does not sync its caches must be rejected with the typed error
        // when the model is wrapped — not assert per request in a worker.
        struct Stale;
        impl Layer for Stale {
            fn forward(&mut self, input: &Tensor) -> Tensor {
                input.clone()
            }
            fn backward(&mut self, grad: &Tensor) -> Tensor {
                grad.clone()
            }
            fn infer_batch(&self, input: &Tensor, _scratch: &mut InferScratch) -> Tensor {
                input.clone()
            }
            fn supports_infer(&self) -> bool {
                true
            }
            fn infer_ready(&self) -> bool {
                false
            }
            fn name(&self) -> &'static str {
                "Stale"
            }
        }
        let net = Sequential::new().add(Stale);
        let err = SequentialModel::new(net, 8).unwrap_err();
        assert!(matches!(err, ServeError::NotServable(_)), "{err}");
        assert!(err.to_string().contains("stale"), "{err}");
    }

    #[test]
    fn shaped_model_serves_a_convnet() {
        let mut rng = seeded_rng(6);
        let net = Sequential::new()
            .add(circnn_nn::Conv2d::new(&mut rng, 2, 3, 3, 1, 1))
            .add(Relu::new())
            .add(circnn_nn::MaxPool2d::new(2, 2))
            .add(circnn_nn::Flatten::new())
            .add(circnn_nn::Linear::new(&mut rng, 3 * 3 * 3, 5));
        let model = SequentialModel::with_input_shape(net, &[2, 6, 6]).unwrap();
        assert_eq!(ServeModel::input_len(&model), 72);
        assert_eq!(ServeModel::output_len(&model), 5);
        assert_eq!(model.input_shape(), &[2, 6, 6]);
        let mut scratch = ServeModel::make_scratch(&model);
        let x = vec![0.25f32; 2 * 72];
        let mut out = vec![0.0f32; 2 * 5];
        model.infer_batch(&x, 2, &mut scratch, &mut out);
        assert_eq!(
            &out[..5],
            &out[5..],
            "identical rows must infer identically"
        );
    }

    #[test]
    fn operator_model_reports_geometry() {
        let w = BlockCirculantMatrix::zeros(24, 40, 8).unwrap();
        assert_eq!(ServeModel::input_len(&w), 40);
        assert_eq!(ServeModel::output_len(&w), 24);
    }
}
