//! The model contract the server dispatches batches to.
//!
//! The server is generic over anything that can turn a `[batch, n]` slab
//! into a `[batch, m]` slab from behind a shared reference: the raw
//! [`BlockCirculantMatrix`] operator, or a whole network via
//! [`SequentialModel`]. Per-worker mutable state (FFT planes, spectra
//! arenas) lives in the associated `Scratch` type — one per worker thread,
//! created by the model so it can pre-warm buffers.

use circnn_core::{BlockCirculantMatrix, Workspace};
use circnn_nn::{InferScratch, Layer, Sequential};
use circnn_tensor::Tensor;

/// A batched inference backend the server can share across workers.
///
/// Implementations must be **batch-composition invariant**: each input
/// row's output must be bit-identical regardless of which batch the
/// scheduler coalesced it into. The block-circulant engine guarantees this
/// (the batch dimension is an independent SIMD lane), which is what lets
/// the server batch freely without changing any client's answer.
pub trait ServeModel: Send + Sync + 'static {
    /// Per-worker mutable scratch (spectra arenas, staging planes, …).
    type Scratch: Send + 'static;

    /// Creates one worker's scratch. Called once per worker at startup.
    fn make_scratch(&self) -> Self::Scratch;

    /// Length of one request vector (`n`).
    fn input_len(&self) -> usize;

    /// Length of one response vector (`m`).
    fn output_len(&self) -> usize;

    /// Runs the batch: `x` is row-major `[batch, input_len]`, `out` is
    /// row-major `[batch, output_len]`.
    fn infer_batch(&self, x: &[f32], batch: usize, scratch: &mut Self::Scratch, out: &mut [f32]);
}

/// The raw operator is itself a servable model: `y = W·x` per request.
impl ServeModel for BlockCirculantMatrix {
    type Scratch = Workspace;

    fn make_scratch(&self) -> Workspace {
        Workspace::new()
    }

    fn input_len(&self) -> usize {
        self.cols()
    }

    fn output_len(&self) -> usize {
        self.rows()
    }

    fn infer_batch(&self, x: &[f32], batch: usize, scratch: &mut Workspace, out: &mut [f32]) {
        self.forward_batch_into(x, batch, scratch, out)
            .expect("server validated slab dimensions");
    }
}

/// A whole [`Sequential`] network as a servable model.
///
/// Wraps the network together with its flat per-request input/output
/// lengths (a `Sequential` does not know its own geometry) and pins it to
/// inference mode. Batches run through the read-only
/// [`Sequential::infer`] path, so one wrapped network serves every worker
/// thread, each with a private [`InferScratch`].
///
/// # Examples
///
/// ```
/// use circnn_nn::{Linear, Relu, Sequential};
/// use circnn_serve::{SequentialModel, ServeModel};
/// use circnn_tensor::init::seeded_rng;
///
/// let mut rng = seeded_rng(0);
/// let net = Sequential::new()
///     .add(Linear::new(&mut rng, 16, 32))
///     .add(Relu::new())
///     .add(Linear::new(&mut rng, 32, 4));
/// let model = SequentialModel::new(net, 16).expect("FC nets are servable");
/// assert_eq!(model.output_len(), 4);
/// ```
#[derive(Debug)]
pub struct SequentialModel {
    net: Sequential,
    input_len: usize,
    output_len: usize,
}

impl SequentialModel {
    /// Wraps `net` for serving requests of `input_len` values.
    ///
    /// Switches the network to inference mode (syncing circulant spectra
    /// caches), verifies every layer supports the read-only inference path
    /// ([`Layer::supports_infer`]) — failing at construction, not inside a
    /// worker — and runs one probe batch to discover the output length.
    ///
    /// # Errors
    ///
    /// Returns `Err` naming the offending layer if any layer lacks
    /// [`Layer::infer_batch`] support (CONV/POOL layers, currently).
    ///
    /// # Panics
    ///
    /// The probe batch panics (with the first layer's own length-mismatch
    /// message) if `input_len` does not match the network's input
    /// geometry — the `Layer` contract has no shape query to validate
    /// against up front.
    pub fn new(mut net: Sequential, input_len: usize) -> Result<Self, String> {
        net.set_training(false);
        if let Some(layer) = net.iter().find(|l| !l.supports_infer()) {
            return Err(format!(
                "network is not servable: {} has no read-only batched inference path",
                layer.name()
            ));
        }
        let probe = Tensor::zeros(&[1, input_len]);
        let output_len = net.infer(&probe, &mut InferScratch::new()).len();
        Ok(Self {
            net,
            input_len,
            output_len,
        })
    }

    /// The wrapped network.
    pub fn network(&self) -> &Sequential {
        &self.net
    }
}

impl ServeModel for SequentialModel {
    /// Layer scratch slots plus a reusable input-staging buffer.
    type Scratch = (InferScratch, Vec<f32>);

    fn make_scratch(&self) -> Self::Scratch {
        (InferScratch::new(), Vec::new())
    }

    fn input_len(&self) -> usize {
        self.input_len
    }

    fn output_len(&self) -> usize {
        self.output_len
    }

    fn infer_batch(&self, x: &[f32], batch: usize, scratch: &mut Self::Scratch, out: &mut [f32]) {
        let (slots, staging) = scratch;
        // Stage the slab through a buffer that round-trips in and out of
        // the input `Tensor`, so steady-state dispatch reuses its capacity
        // instead of allocating a fresh copy per batch.
        staging.clear();
        staging.extend_from_slice(x);
        let input = Tensor::from_vec(std::mem::take(staging), &[batch, self.input_len]);
        let y = self.net.infer(&input, slots);
        out.copy_from_slice(y.data());
        *staging = input.into_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circnn_nn::Relu;
    use circnn_tensor::init::seeded_rng;

    #[test]
    fn probe_discovers_output_len() {
        let mut rng = seeded_rng(3);
        let net = Sequential::new()
            .add(circnn_nn::Linear::new(&mut rng, 8, 12))
            .add(Relu::new())
            .add(circnn_nn::Linear::new(&mut rng, 12, 5));
        let model = SequentialModel::new(net, 8).unwrap();
        assert_eq!(model.input_len(), 8);
        assert_eq!(model.output_len(), 5);
    }

    #[test]
    fn unservable_layer_is_rejected_at_construction() {
        let mut rng = seeded_rng(4);
        // Conv2d has no read-only inference path.
        let net = Sequential::new().add(circnn_nn::Conv2d::new(&mut rng, 1, 2, 3, 1, 1));
        let err = SequentialModel::new(net, 25).unwrap_err();
        assert!(err.contains("not servable"), "{err}");
    }

    #[test]
    fn operator_model_reports_geometry() {
        let w = BlockCirculantMatrix::zeros(24, 40, 8).unwrap();
        assert_eq!(ServeModel::input_len(&w), 40);
        assert_eq!(ServeModel::output_len(&w), 24);
    }
}
