//! Per-batch occupancy and latency accounting.

use std::time::Duration;

/// Why a worker stopped collecting and dispatched its slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The slab reached `max_batch` requests.
    Full,
    /// The oldest collected request aged past `max_wait`.
    Timeout,
    /// Shutdown drain: flush whatever is collected, immediately.
    Drain,
}

/// Running sums a worker folds each completed batch into (behind the
/// stats mutex — one short lock per batch, not per request).
#[derive(Debug, Default)]
pub(crate) struct StatsAccum {
    pub requests: u64,
    pub batches: u64,
    pub full_flushes: u64,
    pub timeout_flushes: u64,
    pub drain_flushes: u64,
    pub expired: u64,
    pub shed: u64,
    pub rejected: u64,
    pub panics: u64,
    pub retries: u64,
    pub max_occupancy: usize,
    pub infer_ns: u128,
    pub latency_ns: u128,
    pub max_latency_ns: u128,
}

impl StatsAccum {
    pub fn record_batch(
        &mut self,
        occupancy: usize,
        reason: FlushReason,
        infer: Duration,
        latency_sum: Duration,
        latency_max: Duration,
    ) {
        self.requests += occupancy as u64;
        self.batches += 1;
        match reason {
            FlushReason::Full => self.full_flushes += 1,
            FlushReason::Timeout => self.timeout_flushes += 1,
            FlushReason::Drain => self.drain_flushes += 1,
        }
        self.max_occupancy = self.max_occupancy.max(occupancy);
        self.infer_ns += infer.as_nanos();
        self.latency_ns += latency_sum.as_nanos();
        self.max_latency_ns = self.max_latency_ns.max(latency_max.as_nanos());
    }

    /// Counts a request failed fast because its deadline passed before
    /// dispatch (it never joined a batch).
    pub fn record_expired(&mut self) {
        self.expired += 1;
    }

    /// Counts a queued request canceled by
    /// [`OverloadPolicy::ShedOldest`](crate::OverloadPolicy::ShedOldest)
    /// to make room for a fresher submission.
    pub fn record_shed(&mut self) {
        self.shed += 1;
    }

    /// Counts a submission refused outright by
    /// [`OverloadPolicy::Reject`](crate::OverloadPolicy::Reject).
    pub fn record_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Counts one batch dispatch that panicked inside the model.
    pub fn record_panic(&mut self) {
        self.panics += 1;
    }

    /// Counts the quarantine pass after a batch panic: `retried` requests
    /// were re-dispatched individually and `succeeded` of them completed
    /// with a result (those also count as completed requests).
    pub fn record_retries(&mut self, retried: u64, succeeded: u64) {
        self.retries += retried;
        self.requests += succeeded;
    }

    pub fn snapshot(&self) -> ServeStats {
        let batches = self.batches.max(1) as f64;
        let requests = self.requests.max(1) as f64;
        ServeStats {
            requests: self.requests,
            batches: self.batches,
            full_flushes: self.full_flushes,
            timeout_flushes: self.timeout_flushes,
            drain_flushes: self.drain_flushes,
            expired: self.expired,
            shed: self.shed,
            rejected: self.rejected,
            panics: self.panics,
            retries: self.retries,
            max_occupancy: self.max_occupancy,
            mean_occupancy: self.requests as f64 / batches,
            mean_infer_us: self.infer_ns as f64 / batches / 1_000.0,
            mean_latency_us: self.latency_ns as f64 / requests / 1_000.0,
            max_latency_us: self.max_latency_ns as f64 / 1_000.0,
        }
    }
}

/// Aggregate serving statistics, snapshotted by
/// [`Server::stats`](crate::Server::stats) and returned by
/// [`Server::shutdown`](crate::Server::shutdown) — and per tenant by
/// [`TenantHandle::stats`](crate::TenantHandle::stats).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests completed.
    pub requests: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Batches flushed because they reached `max_batch`.
    pub full_flushes: u64,
    /// Batches flushed because the oldest request hit `max_wait`.
    pub timeout_flushes: u64,
    /// Batches flushed while draining at shutdown.
    pub drain_flushes: u64,
    /// Requests failed fast with
    /// [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded)
    /// because their deadline passed before dispatch.
    pub expired: u64,
    /// Queued requests canceled with
    /// [`ServeError::Overloaded`](crate::ServeError::Overloaded) by the
    /// [`OverloadPolicy::ShedOldest`](crate::OverloadPolicy::ShedOldest)
    /// policy to make room for fresher submissions.
    pub shed: u64,
    /// Submissions refused outright with
    /// [`ServeError::Overloaded`](crate::ServeError::Overloaded) by the
    /// [`OverloadPolicy::Reject`](crate::OverloadPolicy::Reject) policy.
    pub rejected: u64,
    /// Batch dispatches that panicked inside the model (the worker
    /// survives; the batch is quarantined and retried request by request).
    pub panics: u64,
    /// Requests re-dispatched individually by the post-panic quarantine
    /// pass (successes also count in [`ServeStats::requests`]).
    pub retries: u64,
    /// Largest batch dispatched.
    pub max_occupancy: usize,
    /// Mean requests per batch (the occupancy the policy achieved).
    pub mean_occupancy: f64,
    /// Mean model time per batch, microseconds.
    pub mean_infer_us: f64,
    /// Mean request latency (enqueue → completion), microseconds.
    pub mean_latency_us: f64,
    /// Worst request latency observed, microseconds.
    pub max_latency_us: f64,
}

impl core::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} requests in {} batches (occupancy mean {:.1}, max {}; \
             flushes {} full / {} timeout / {} drain; {} expired; \
             {} shed / {} rejected; {} panics / {} retries; \
             latency mean {:.0} µs, max {:.0} µs)",
            self.requests,
            self.batches,
            self.mean_occupancy,
            self.max_occupancy,
            self.full_flushes,
            self.timeout_flushes,
            self.drain_flushes,
            self.expired,
            self.shed,
            self.rejected,
            self.panics,
            self.retries,
            self.mean_latency_us,
            self.max_latency_us,
        )
    }
}
