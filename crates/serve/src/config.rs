//! Batching policy and server sizing.

use std::time::Duration;

/// What a **blocking** submission does when the bounded queue is at
/// capacity — the explicit failure model for overload.
///
/// Non-blocking submissions (`try_submit*`) always fail fast with
/// [`ServeError::QueueFull`](crate::ServeError::QueueFull); this policy
/// governs the blocking paths ([`Server::submit`](crate::Server::submit),
/// [`TenantHandle::submit`](crate::TenantHandle::submit), …) that a wire
/// connection drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Backpressure: park the submitter until a worker frees queue space.
    /// Latency under sustained overload grows without bound, but no
    /// request is ever refused. The historical behavior, and the default.
    #[default]
    Block,
    /// Fail fast: refuse the new submission with
    /// [`ServeError::Overloaded`](crate::ServeError::Overloaded) (counted
    /// in [`ServeStats::rejected`](crate::ServeStats::rejected)). Keeps
    /// queued latency bounded by `queue_capacity`.
    Reject,
    /// Shed to make room: cancel the queued request that is worst off
    /// against its staleness deadline — the one whose effective deadline
    /// is earliest, i.e. the most likely to be answered uselessly late —
    /// with [`ServeError::Overloaded`](crate::ServeError::Overloaded)
    /// (counted in [`ServeStats::shed`](crate::ServeStats::shed)), then
    /// accept the fresh submission. Keeps latency bounded while always
    /// admitting new work.
    ShedOldest,
}

/// Tunable policy of the dynamic batcher and worker pool.
///
/// The two policy knobs trade latency for occupancy exactly like the
/// hardware pipelines the paper targets: `max_batch` caps the slab a
/// worker assembles (the FFT engine's lane count), `max_wait` bounds how
/// long the **oldest** request in a forming batch may age before the slab
/// is flushed partially full.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest number of requests coalesced into one `[B, n]` slab.
    pub max_batch: usize,
    /// Maximum time the oldest collected request may wait for the slab to
    /// fill before a partial flush.
    pub max_wait: Duration,
    /// Bound of the submission queue; a full queue blocks
    /// [`Server::submit`](crate::Server::submit) (backpressure) and fails
    /// [`Server::try_submit`](crate::Server::try_submit).
    pub queue_capacity: usize,
    /// Worker threads, each owning one model scratch (e.g. a pre-warmed
    /// `Workspace`).
    pub workers: usize,
    /// What a blocking submission does when the queue is at capacity.
    pub overload: OverloadPolicy,
}

impl Default for ServeConfig {
    /// A small-footprint default: 32-wide slabs, 2 ms slack, two workers,
    /// queue bounded at four slabs, blocking backpressure on overload.
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            queue_capacity: 128,
            workers: 2,
            overload: OverloadPolicy::Block,
        }
    }
}

impl ServeConfig {
    /// Validates the knobs; every count must be nonzero.
    pub(crate) fn validate(&self) -> Result<(), crate::ServeError> {
        if self.max_batch == 0 {
            return Err(crate::ServeError::BadConfig("max_batch must be ≥ 1"));
        }
        if self.queue_capacity == 0 {
            return Err(crate::ServeError::BadConfig("queue_capacity must be ≥ 1"));
        }
        if self.workers == 0 {
            return Err(crate::ServeError::BadConfig("workers must be ≥ 1"));
        }
        Ok(())
    }
}

/// Per-tenant batching policy of the multi-tenant scheduler
/// ([`MultiServer`](crate::MultiServer)).
///
/// The same `max_batch`/`max_wait` trade-off as [`ServeConfig`], minus the
/// worker count: workers belong to the shared pool, not to a tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Largest number of requests coalesced into one `[B, n]` slab.
    pub max_batch: usize,
    /// Maximum batching slack: how long a request without an explicit
    /// deadline may wait for its slab to fill before a partial flush (it
    /// also bounds the slack of requests *with* deadlines — a tighter
    /// explicit deadline flushes sooner).
    pub max_wait: Duration,
    /// Bound of this tenant's submission queue; a full queue blocks
    /// [`TenantHandle::submit`](crate::TenantHandle::submit) and fails
    /// [`TenantHandle::try_submit_with_deadline`](crate::TenantHandle::try_submit_with_deadline).
    pub queue_capacity: usize,
    /// What a blocking submission does when this tenant's queue is at
    /// capacity.
    pub overload: OverloadPolicy,
}

impl Default for TenantConfig {
    /// Mirrors [`ServeConfig::default`]: 32-wide slabs, 2 ms slack, queue
    /// bounded at four slabs, blocking backpressure on overload.
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            queue_capacity: 128,
            overload: OverloadPolicy::Block,
        }
    }
}

impl TenantConfig {
    /// Validates the knobs; every count must be nonzero.
    pub(crate) fn validate(&self) -> Result<(), crate::ServeError> {
        if self.max_batch == 0 {
            return Err(crate::ServeError::BadConfig("max_batch must be ≥ 1"));
        }
        if self.queue_capacity == 0 {
            return Err(crate::ServeError::BadConfig("queue_capacity must be ≥ 1"));
        }
        Ok(())
    }
}
