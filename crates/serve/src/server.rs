//! The batching server: submission queue, batch collector, worker pool.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::config::{OverloadPolicy, ServeConfig};
use crate::error::ServeError;
use crate::model::ServeModel;
use crate::stats::{FlushReason, ServeStats, StatsAccum};

/// Locks a mutex, recovering the data even if a worker died while holding
/// it (a poisoned queue is still structurally valid; requests it holds are
/// drained or canceled normally).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One request parked in the queue: its input row and its completion cell.
struct PendingRequest {
    input: Vec<f32>,
    enqueued: Instant,
    done: CompletionCell,
}

/// A completion callback registered via [`ResponseHandle::on_ready`]: it
/// receives the result directly (the slot is bypassed) on whatever thread
/// fulfills the request.
type Waker = Box<dyn FnOnce(Result<Vec<f32>, ServeError>) + Send>;

/// The slot and (optional) waker behind one in-flight request.
struct CompletionState {
    result: Option<Result<Vec<f32>, ServeError>>,
    waker: Option<Waker>,
    /// Set the moment a result exists — even if it was handed straight to
    /// a waker and never stored.
    fulfilled: bool,
}

/// Result slot shared between a worker and a [`ResponseHandle`].
pub(crate) struct Completion {
    state: Mutex<CompletionState>,
    ready: Condvar,
}

/// A worker-side completion reference that **guarantees** an answer: if it
/// is dropped unfulfilled (worker panic mid-batch, queue destroyed with
/// requests still parked), the waiting client gets
/// [`ServeError::Canceled`] instead of hanging forever.
pub(crate) struct CompletionCell(Arc<Completion>);

impl CompletionCell {
    pub(crate) fn fulfill(&self, result: Result<Vec<f32>, ServeError>) {
        let fire = {
            let mut st = lock(&self.0.state);
            if st.fulfilled {
                return; // already answered (e.g. fulfill then drop guard)
            }
            st.fulfilled = true;
            match st.waker.take() {
                Some(waker) => Some((waker, result)),
                None => {
                    st.result = Some(result);
                    self.0.ready.notify_all();
                    None
                }
            }
        };
        // The waker runs OUTSIDE the completion lock so it may take its
        // own locks (an event loop's completion queue, say). Note it can
        // still run under a scheduler lock if the fulfilling site holds
        // one — wakers must never call back into the pool.
        if let Some((waker, result)) = fire {
            waker(result);
        }
    }
}

/// Creates a fresh `(worker cell, client handle)` pair around one result
/// slot — shared by the single-model [`Server`] and the multi-tenant
/// scheduler in [`crate::MultiServer`].
pub(crate) fn completion_pair() -> (CompletionCell, ResponseHandle) {
    let cell = Arc::new(Completion {
        state: Mutex::new(CompletionState {
            result: None,
            waker: None,
            fulfilled: false,
        }),
        ready: Condvar::new(),
    });
    (CompletionCell(Arc::clone(&cell)), ResponseHandle { cell })
}

impl Drop for CompletionCell {
    fn drop(&mut self) {
        // No-op if already fulfilled; otherwise the waiter (or waker)
        // learns the worker died.
        self.fulfill(Err(ServeError::Canceled));
    }
}

/// The client's end of one in-flight request.
///
/// Returned by [`Server::submit`]; redeem it with [`ResponseHandle::wait`]
/// from any thread. The handle is independent of the server's lifetime —
/// shutdown drains in-flight requests, so a handle taken before shutdown
/// still resolves.
pub struct ResponseHandle {
    cell: Arc<Completion>,
}

impl core::fmt::Debug for ResponseHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ResponseHandle")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl ResponseHandle {
    /// Blocks until the batch carrying this request completes and returns
    /// the model's output row.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Canceled`] if the serving worker died before
    /// producing a result.
    pub fn wait(self) -> Result<Vec<f32>, ServeError> {
        let mut st = lock(&self.cell.state);
        loop {
            if let Some(result) = st.result.take() {
                return result;
            }
            st = self
                .cell
                .ready
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking readiness probe.
    pub fn is_ready(&self) -> bool {
        lock(&self.cell.state).fulfilled
    }

    /// Registers `f` to run with the result the moment it exists — on the
    /// fulfilling worker's thread, or **immediately on this thread** if
    /// the request already completed. Consumes the handle: a request is
    /// redeemed either by [`ResponseHandle::wait`] or by a callback,
    /// never both.
    ///
    /// This is the event-driven alternative to parking a thread in
    /// `wait`: a nonblocking front end registers a callback that pushes
    /// the finished request onto its readiness loop's completion queue.
    ///
    /// `f` must be cheap and must not call back into the serving pool —
    /// it can run while scheduler locks are held (deadline expiry and
    /// overload shedding fulfill requests from inside the scheduler).
    pub fn on_ready(self, f: impl FnOnce(Result<Vec<f32>, ServeError>) + Send + 'static) {
        let mut st = lock(&self.cell.state);
        if let Some(result) = st.result.take() {
            drop(st);
            f(result);
            return;
        }
        st.waker = Some(Box::new(f));
    }
}

/// Submission queue + flags, behind the one server mutex.
struct QueueState {
    pending: VecDeque<PendingRequest>,
    shutdown: bool,
}

/// State shared by the handle, the workers, and every submitter.
struct Shared<M: ServeModel> {
    model: Arc<M>,
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    /// Workers wait here for requests (and for shutdown).
    wake_workers: Condvar,
    /// Backpressured submitters wait here for queue space.
    space: Condvar,
    stats: Mutex<StatsAccum>,
}

/// A multi-threaded dynamic-batching inference server.
///
/// See the [crate docs](crate) for the architecture; in short: submitters
/// park `[n]` requests in a bounded FIFO, workers coalesce them into
/// `[B, n]` slabs under the `max_batch`/`max_wait` policy and run them
/// through a shared [`ServeModel`], and each request's row comes back
/// through its [`ResponseHandle`].
pub struct Server<M: ServeModel> {
    shared: Arc<Shared<M>>,
    workers: Vec<JoinHandle<()>>,
}

impl<M: ServeModel> core::fmt::Debug for Server<M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("pending", &self.pending())
            .finish()
    }
}

impl<M: ServeModel> Server<M> {
    /// Starts the worker pool around an owned model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero-valued knobs.
    pub fn start(model: M, cfg: ServeConfig) -> Result<Self, ServeError> {
        Self::start_shared(Arc::new(model), cfg)
    }

    /// Starts the worker pool around an already-shared model (so the
    /// caller can keep a reference for direct, unbatched comparison).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero-valued knobs.
    pub fn start_shared(model: Arc<M>, cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        let shared = Arc::new(Shared {
            model,
            cfg,
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            wake_workers: Condvar::new(),
            space: Condvar::new(),
            stats: Mutex::new(StatsAccum::default()),
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let scratch = shared.model.make_scratch();
                std::thread::Builder::new()
                    .name(format!("circnn-serve-{i}"))
                    .spawn(move || worker_loop(&shared, scratch))
                    .expect("spawning a serve worker")
            })
            .collect();
        Ok(Self { shared, workers })
    }

    /// Submits one `[n]` request, **blocking while the queue is full**
    /// (backpressure), and returns its completion handle.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] on a mis-sized vector or
    /// [`ServeError::ShuttingDown`] after [`Server::shutdown`] began.
    pub fn submit(&self, input: Vec<f32>) -> Result<ResponseHandle, ServeError> {
        self.enqueue(input, true)
    }

    /// Non-blocking [`Server::submit`].
    ///
    /// # Errors
    ///
    /// As [`Server::submit`], plus [`ServeError::QueueFull`] instead of
    /// blocking.
    pub fn try_submit(&self, input: Vec<f32>) -> Result<ResponseHandle, ServeError> {
        self.enqueue(input, false)
    }

    fn enqueue(&self, input: Vec<f32>, block: bool) -> Result<ResponseHandle, ServeError> {
        let expected = self.shared.model.input_len();
        if input.len() != expected {
            return Err(ServeError::BadInput {
                expected,
                got: input.len(),
            });
        }
        let mut q = lock(&self.shared.queue);
        loop {
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.pending.len() < self.shared.cfg.queue_capacity {
                break;
            }
            if !block {
                return Err(ServeError::QueueFull);
            }
            // The queue is at capacity: the overload policy decides what a
            // blocking submission does next.
            match self.shared.cfg.overload {
                OverloadPolicy::Block => {
                    q = self
                        .shared
                        .space
                        .wait(q)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                OverloadPolicy::Reject => {
                    lock(&self.shared.stats).record_rejected();
                    return Err(ServeError::Overloaded);
                }
                OverloadPolicy::ShedOldest => {
                    // The FIFO front is the stalest request — cancel it to
                    // make room for the fresh submission.
                    if let Some(r) = q.pending.pop_front() {
                        r.done.fulfill(Err(ServeError::Overloaded));
                        lock(&self.shared.stats).record_shed();
                    }
                    break;
                }
            }
        }
        let (done, handle) = completion_pair();
        q.pending.push_back(PendingRequest {
            input,
            enqueued: Instant::now(),
            done,
        });
        drop(q);
        self.shared.wake_workers.notify_one();
        Ok(handle)
    }

    /// Requests currently parked in the queue (not yet collected).
    pub fn pending(&self) -> usize {
        lock(&self.shared.queue).pending.len()
    }

    /// Snapshot of the aggregate serving statistics.
    pub fn stats(&self) -> ServeStats {
        lock(&self.shared.stats).snapshot()
    }

    /// Graceful shutdown: stop accepting requests, **drain** everything
    /// already queued (every outstanding [`ResponseHandle`] resolves),
    /// join the workers, and return the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        lock(&self.shared.queue).shutdown = true;
        self.shared.wake_workers.notify_all();
        self.shared.space.notify_all();
    }
}

impl<M: ServeModel> Drop for Server<M> {
    /// Dropping the server without [`Server::shutdown`] still drains
    /// gracefully.
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One worker: collect → dispatch → fulfill, forever.
fn worker_loop<M: ServeModel>(shared: &Shared<M>, mut scratch: M::Scratch) {
    let n = shared.model.input_len();
    let m = shared.model.output_len();
    let max_batch = shared.cfg.max_batch;
    // Warm slabs once; the loop below never allocates them again.
    let mut slab = vec![0.0f32; max_batch * n];
    let mut out = vec![0.0f32; max_batch * m];
    let mut batch: Vec<PendingRequest> = Vec::with_capacity(max_batch);
    loop {
        let reason;
        {
            let mut q = lock(&shared.queue);
            // Park until there is at least one request; exit once shutdown
            // is flagged *and* the queue is fully drained.
            loop {
                if !q.pending.is_empty() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = shared
                    .wake_workers
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            while batch.len() < max_batch {
                match q.pending.pop_front() {
                    Some(r) => batch.push(r),
                    None => break,
                }
            }
            // Every pop frees queue capacity — wake blocked submitters NOW,
            // while this worker still waits for the slab to fill, or the
            // batch could only ever grow to `queue_capacity`.
            shared.space.notify_all();
            // The wait budget is anchored to the OLDEST collected request:
            // a request never waits more than `max_wait` on batching, no
            // matter how the collector threads interleave.
            let deadline = batch[0].enqueued + shared.cfg.max_wait;
            while batch.len() < max_batch && !q.shutdown {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = shared
                    .wake_workers
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
                while batch.len() < max_batch {
                    match q.pending.pop_front() {
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                shared.space.notify_all();
            }
            reason = if batch.len() == max_batch {
                FlushReason::Full
            } else if q.shutdown {
                FlushReason::Drain
            } else {
                FlushReason::Timeout
            };
        }
        // Dispatch outside the lock: other workers keep collecting while
        // this slab runs.
        let b = batch.len();
        for (i, req) in batch.iter().enumerate() {
            slab[i * n..(i + 1) * n].copy_from_slice(&req.input);
        }
        let t0 = Instant::now();
        // A panicking model must not take the worker (and with it the whole
        // pool, eventually the queue) down: cancel this batch's requests,
        // discard the possibly-inconsistent scratch, and keep serving.
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared
                .model
                .infer_batch(&slab[..b * n], b, &mut scratch, &mut out[..b * m]);
        }));
        let infer = t0.elapsed();
        if ran.is_err() {
            // The batch is poisoned: some member crashed the model. Discard
            // the possibly inconsistent scratch, then quarantine — retry
            // each member alone with a fresh scratch so one poison request
            // cannot take its healthy co-batched neighbors down with it.
            scratch = shared.model.make_scratch();
            lock(&shared.stats).record_panic();
            if b == 1 {
                // The lone member *is* the poison; retrying it alone would
                // only panic again.
                for req in batch.drain(..) {
                    req.done.fulfill(Err(ServeError::Canceled));
                }
                continue;
            }
            let mut succeeded = 0u64;
            let mut repanics = 0u64;
            for (i, req) in batch.drain(..).enumerate() {
                let mut quarantine_scratch = shared.model.make_scratch();
                let one = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.model.infer_batch(
                        &slab[i * n..(i + 1) * n],
                        1,
                        &mut quarantine_scratch,
                        &mut out[..m],
                    );
                }));
                match one {
                    Ok(()) => {
                        succeeded += 1;
                        req.done.fulfill(Ok(out[..m].to_vec()));
                    }
                    Err(_) => {
                        repanics += 1;
                        req.done.fulfill(Err(ServeError::Canceled));
                    }
                }
            }
            let mut stats = lock(&shared.stats);
            stats.record_retries(b as u64, succeeded);
            for _ in 0..repanics {
                stats.record_panic();
            }
            continue;
        }

        let completed = Instant::now();
        let mut latency_sum = std::time::Duration::ZERO;
        let mut latency_max = std::time::Duration::ZERO;
        for (i, req) in batch.drain(..).enumerate() {
            let waited = completed.saturating_duration_since(req.enqueued);
            latency_sum += waited;
            latency_max = latency_max.max(waited);
            req.done.fulfill(Ok(out[i * m..(i + 1) * m].to_vec()));
        }
        lock(&shared.stats).record_batch(b, reason, infer, latency_sum, latency_max);
    }
}
