//! # circnn-serve
//!
//! An async-style, request-batching inference server over the batched
//! block-circulant engine — the serving scenario CirCNN's throughput story
//! actually plays out in.
//!
//! CirCNN (Ding et al., MICRO'17) wins by keeping weight **spectra**
//! resident and streaming activations through FFT pipelines; the FPGA RNN
//! follow-ons showed the win only materializes when requests are coalesced
//! into batches that keep those pipelines full. This crate is that
//! coalescing layer in software: individual `[n]`-vector requests are
//! dynamically batched into `[B, n]` slabs and dispatched to the
//! allocation-free batched kernels of `circnn-core`
//! (`BlockCirculantMatrix::forward_batch_into`), or to a whole network via
//! `Sequential`'s read-only `infer` path.
//!
//! ## Architecture
//!
//! ```text
//!  clients (any thread)                server
//!  ──────────────────────   ┌──────────────────────────────────────────┐
//!  submit([n]) ───────────► │ bounded FIFO (Mutex + Condvar)           │
//!   ▲ blocks when full      │   │ collect ≤ max_batch, wait ≤ max_wait │
//!   │ (backpressure)        │   ▼                                      │
//!  ResponseHandle ◄──────── │ worker 0 ░ [B,n] slab ─► Arc<model>      │
//!   .wait() → [m] row       │ worker 1 ░ [B,n] slab ─► (shared,        │
//!                           │   each owns its scratch    read-only)    │
//!                           │   Workspace/InferScratch                 │
//!                           └──────────────────────────────────────────┘
//! ```
//!
//! * **Batching policy** — a worker collects up to
//!   [`ServeConfig::max_batch`] requests; once the *oldest* collected
//!   request has waited [`ServeConfig::max_wait`], the slab is flushed
//!   partially full. Full slabs flush immediately.
//! * **Backpressure** — the queue is bounded ([`ServeConfig::queue_capacity`]);
//!   [`Server::submit`] blocks (and [`Server::try_submit`] fails) while full.
//! * **Workers** — [`ServeConfig::workers`] threads, each owning one
//!   pre-warmed scratch ([`circnn_core::Workspace`] /
//!   [`circnn_nn::InferScratch`]), all sharing one read-only model.
//! * **Determinism** — the batched kernels are batch-composition
//!   invariant, so a request's answer is **bit-identical** no matter which
//!   batch the scheduler packed it into. Serving never changes results.
//! * **Shutdown** — [`Server::shutdown`] stops intake, drains every queued
//!   request (all handles resolve), joins the workers, and reports
//!   [`ServeStats`] (occupancy, flush reasons, latency).
//!
//! ## Multi-tenant, deadline-aware scheduling
//!
//! [`MultiServer`] generalizes the single-model server to **many named
//! models over one shared worker pool**: each tenant
//! ([`MultiServer::add_tenant`], hot add/remove) owns a bounded queue, a
//! [`TenantConfig`] batching policy and per-tenant [`ServeStats`].
//! Requests may carry a **deadline budget**
//! ([`TenantHandle::submit_with_deadline`]); workers always serve the
//! queue whose tightest effective deadline is earliest, tight-deadline
//! tenants preempt a slack tenant's batching slack, and requests whose
//! deadline passes before dispatch fail fast with
//! [`ServeError::DeadlineExceeded`]. This is the scheduling core under the
//! network front-end in `circnn-wire`.
//!
//! ## Example
//!
//! Serve a raw block-circulant operator and check a round trip against the
//! direct batched call:
//!
//! ```
//! use circnn_core::{BlockCirculantMatrix, Workspace};
//! use circnn_serve::{ServeConfig, Server};
//! use circnn_tensor::init::seeded_rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = BlockCirculantMatrix::random(&mut seeded_rng(0), 64, 128, 16)?;
//! let expected = w.matmat(&vec![0.5; 128], 1, &mut Workspace::new())?;
//!
//! let server = Server::start(w, ServeConfig::default())?;
//! let handle = server.submit(vec![0.5; 128])?;       // park a request …
//! let y = handle.wait()?;                            // … and redeem it
//! assert_eq!(y, expected);                           // bit-identical
//!
//! let stats = server.shutdown();                     // drains + joins
//! assert_eq!(stats.requests, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod model;
mod sched;
mod server;
mod stats;

pub use config::{OverloadPolicy, ServeConfig, TenantConfig};
pub use error::ServeError;
pub use model::{SequentialModel, ServeModel};
pub use sched::{MultiServer, TenantHandle};
pub use server::{ResponseHandle, Server};
pub use stats::{FlushReason, ServeStats};
