//! Criterion bench: single-sample vs batched vs parallel-batched
//! block-circulant inference at several `(m, n, k, B)` points.
//!
//! The `(512, 512, 16, B=32)` group is the headline number; the `batched`
//! binary (`cargo run --release -p circnn-bench --bin batched`) runs the
//! same comparison and records it to `BENCH_batched.json`.

use circnn_core::{default_batch_threads, BlockCirculantMatrix, Workspace};
use circnn_tensor::init::seeded_rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_batched_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched-inference");
    group.sample_size(12);
    for &(m, n, k, batch) in &[
        (256usize, 256usize, 8usize, 32usize),
        (512, 512, 16, 32),
        (1024, 1024, 64, 32),
    ] {
        let mut rng = seeded_rng((m + n + k + batch) as u64);
        let w = BlockCirculantMatrix::random(&mut rng, m, n, k).unwrap();
        let xt = circnn_tensor::init::uniform(&mut rng, &[batch * n], -1.0, 1.0);
        let x = xt.data();
        let label = format!("{m}x{n}-k{k}-B{batch}");
        group.bench_with_input(BenchmarkId::new("single", &label), &batch, |b, &bsz| {
            b.iter(|| {
                for s in 0..bsz {
                    black_box(w.matvec(black_box(&x[s * n..(s + 1) * n])).unwrap());
                }
            })
        });
        let mut ws = Workspace::new();
        let mut out = vec![0.0f32; batch * m];
        group.bench_with_input(BenchmarkId::new("batched", &label), &batch, |b, &bsz| {
            b.iter(|| {
                w.forward_batch_into_with_threads(black_box(x), bsz, &mut ws, &mut out, 1)
                    .unwrap();
                black_box(&out);
            })
        });
        let threads = default_batch_threads();
        let mut ws_p = Workspace::new();
        group.bench_with_input(BenchmarkId::new("parallel", &label), &batch, |b, &bsz| {
            b.iter(|| {
                w.forward_batch_into_with_threads(black_box(x), bsz, &mut ws_p, &mut out, threads)
                    .unwrap();
                black_box(&out);
            })
        });
    }
    group.finish();
}

fn bench_batch_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch-size-scaling");
    group.sample_size(12);
    let (m, n, k) = (512usize, 512usize, 16usize);
    let mut rng = seeded_rng(99);
    let w = BlockCirculantMatrix::random(&mut rng, m, n, k).unwrap();
    for &batch in &[1usize, 4, 16, 64, 256] {
        let xt = circnn_tensor::init::uniform(&mut rng, &[batch * n], -1.0, 1.0);
        let x = xt.data().to_vec();
        let mut ws = Workspace::new();
        let mut out = vec![0.0f32; batch * m];
        group.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, &bsz| {
            b.iter(|| {
                w.forward_batch_into(black_box(&x), bsz, &mut ws, &mut out)
                    .unwrap();
                black_box(&out);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batched_inference, bench_batch_size_scaling);
criterion_main!(benches);
