//! Benchmarks for the fixed-point datapath model and the 2-D FFT paths
//! (LeCun-[52] spatial convolution vs direct evaluation).

use circnn_fft::fft2d::{direct_conv2d_valid, fft_conv2d_valid};
use circnn_fft::fixed::{FixedFftPlan, QFormat};
use circnn_fft::RealFftPlan;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fixed_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixed-fft");
    group.sample_size(20);
    for &n in &[256usize, 1024] {
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin() * 0.7).collect();
        let plan16 = FixedFftPlan::new(n, QFormat::q16()).unwrap();
        group.bench_with_input(BenchmarkId::new("q16", n), &n, |b, _| {
            b.iter(|| plan16.forward_real(black_box(&signal)).unwrap())
        });
        let fplan = RealFftPlan::<f64>::new(n).unwrap();
        let fsig: Vec<f64> = signal.clone();
        group.bench_with_input(BenchmarkId::new("float64", n), &n, |b, _| {
            b.iter(|| fplan.forward(black_box(&fsig)).unwrap())
        });
    }
    group.finish();
}

fn bench_2d_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d-lecun");
    group.sample_size(15);
    // The large-kernel regime where [52] shines.
    for &(h, r) in &[(32usize, 11usize), (64, 11), (32, 3)] {
        let input: Vec<f32> = (0..h * h).map(|i| (i as f32 * 0.01).sin()).collect();
        let filter: Vec<f32> = (0..r * r).map(|i| (i as f32 * 0.3).cos()).collect();
        group.bench_with_input(
            BenchmarkId::new("fft", format!("{h}x{h}-r{r}")),
            &h,
            |b, _| b.iter(|| fft_conv2d_valid(black_box(&input), h, h, &filter, r).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("direct", format!("{h}x{h}-r{r}")),
            &h,
            |b, _| b.iter(|| direct_conv2d_valid(black_box(&input), h, h, &filter, r)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fixed_fft, bench_2d_convolution);
criterion_main!(benches);
