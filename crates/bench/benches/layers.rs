//! Layer-level benchmarks: FC and CONV forward/backward, dense vs
//! block-circulant — the software side of the paper's training-complexity
//! claim (Algorithms 1–2 are cheaper than dense GEMM in both directions).

use circnn_core::{CirculantConv2d, CirculantLinear};
use circnn_nn::{Conv2d, Layer, Linear};
use circnn_tensor::{init::seeded_rng, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fc_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fc-layer");
    group.sample_size(12);
    let mut rng = seeded_rng(1);
    let (n, m, k) = (2048usize, 2048usize, 256usize);
    let x = Tensor::from_vec((0..n).map(|i| (i as f32 * 0.01).sin()).collect(), &[n]);
    let g = Tensor::ones(&[m]);
    let mut dense = Linear::new(&mut rng, n, m);
    group.bench_function("dense-forward", |b| b.iter(|| dense.forward(black_box(&x))));
    group.bench_function("dense-fwd+bwd", |b| {
        b.iter(|| {
            dense.forward(black_box(&x));
            dense.backward(black_box(&g))
        })
    });
    let mut circ = CirculantLinear::new(&mut rng, n, m, k).unwrap();
    group.bench_function("circulant-forward", |b| {
        b.iter(|| circ.forward(black_box(&x)))
    });
    group.bench_function("circulant-fwd+bwd", |b| {
        b.iter(|| {
            circ.forward(black_box(&x));
            circ.backward(black_box(&g))
        })
    });
    group.finish();
}

fn bench_conv_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv-layer");
    group.sample_size(10);
    let mut rng = seeded_rng(2);
    let x = Tensor::from_vec(
        (0..32 * 16 * 16)
            .map(|i| (i as f32 * 0.003).sin())
            .collect(),
        &[32, 16, 16],
    );
    let mut dense = Conv2d::new(&mut rng, 32, 64, 3, 1, 1);
    group.bench_function("dense-forward", |b| b.iter(|| dense.forward(black_box(&x))));
    let mut circ = CirculantConv2d::new(&mut rng, 32, 64, 3, 1, 1, 16).unwrap();
    group.bench_function("circulant-forward", |b| {
        b.iter(|| circ.forward(black_box(&x)))
    });
    group.finish();
}

criterion_group!(benches, bench_fc_layers, bench_conv_layers);
criterion_main!(benches);
