//! The headline crossover: dense `O(n²)` matvec vs block-circulant
//! `O(n log n)` matvec across layer sizes and block sizes.

use circnn_core::BlockCirculantMatrix;
use circnn_tensor::{init, init::seeded_rng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec");
    group.sample_size(15);
    let mut rng = seeded_rng(1);
    for &n in &[256usize, 1024, 4096] {
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
        let dense = init::uniform(&mut rng, &[n, n], -0.1, 0.1);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| dense.matvec(black_box(&x)))
        });
        let k = n.min(128);
        let circ = BlockCirculantMatrix::random(&mut rng, n, n, k).unwrap();
        group.bench_with_input(BenchmarkId::new("circulant-k128", n), &n, |b, _| {
            b.iter(|| circ.matvec(black_box(&x)).unwrap())
        });
        if n >= 1024 {
            let circ_big = BlockCirculantMatrix::random(&mut rng, n, n, 1024.min(n)).unwrap();
            group.bench_with_input(BenchmarkId::new("circulant-k1024", n), &n, |b, _| {
                b.iter(|| circ_big.matvec(black_box(&x)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_accumulation_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec-ablation");
    group.sample_size(15);
    let mut rng = seeded_rng(2);
    let n = 2048;
    let w = BlockCirculantMatrix::random(&mut rng, n, n, 128).unwrap();
    let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).cos()).collect();
    group.bench_function("freq-domain-accumulation", |b| {
        b.iter(|| w.matvec(black_box(&x)).unwrap())
    });
    group.bench_function("per-block-ifft-naive", |b| {
        b.iter(|| w.matvec_naive(black_box(&x)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_matvec, bench_accumulation_ablation);
criterion_main!(benches);
