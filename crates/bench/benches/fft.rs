//! Microbenchmarks for the FFT substrate: complex vs real plans across
//! sizes (the real plan's ≈2× saving is the paper's Fig.-10 optimization).

use circnn_fft::{Complex, FftPlan, RealFftPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(20);
    for &n in &[64usize, 256, 1024, 4096] {
        let cplan = FftPlan::<f32>::new(n).unwrap();
        let signal: Vec<Complex<f32>> = (0..n)
            .map(|i| Complex::new((i as f32 * 0.37).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::new("complex", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = signal.clone();
                cplan.forward(black_box(&mut buf)).unwrap();
                buf
            })
        });
        let rplan = RealFftPlan::<f32>::new(n).unwrap();
        let real: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        group.bench_with_input(BenchmarkId::new("real", n), &n, |b, _| {
            b.iter(|| rplan.forward(black_box(&real)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
