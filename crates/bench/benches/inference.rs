//! End-to-end inference benchmarks: the benchmark models, dense vs
//! block-circulant, plus an RBM CD-1 training step at DBN scale (§3.4).

use circnn_core::BlockCirculantMatrix;
use circnn_models::{lenet5_circulant, lenet5_dense, svhn_net_circulant, svhn_net_dense};
use circnn_nn::rbm::Rbm;
use circnn_nn::{DenseOp, Layer};
use circnn_tensor::{init::seeded_rng, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group.sample_size(15);
    let mut rng = seeded_rng(1);
    let mnist = Tensor::ones(&[1, 28, 28]);
    let mut ld = lenet5_dense(&mut rng);
    let mut lc = lenet5_circulant(&mut rng);
    group.bench_function("lenet5-dense", |b| b.iter(|| ld.forward(black_box(&mnist))));
    group.bench_function("lenet5-circulant", |b| {
        b.iter(|| lc.forward(black_box(&mnist)))
    });
    let svhn = Tensor::ones(&[3, 32, 32]);
    let mut sd = svhn_net_dense(&mut rng);
    let mut sc = svhn_net_circulant(&mut rng);
    group.bench_function("svhn-dense", |b| b.iter(|| sd.forward(black_box(&svhn))));
    group.bench_function("svhn-circulant", |b| {
        b.iter(|| sc.forward(black_box(&svhn)))
    });
    group.finish();
}

fn bench_rbm_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbm-cd1");
    group.sample_size(10);
    let n = 2048;
    let v0: Vec<f32> = (0..n).map(|i| f32::from(i % 3 == 0)).collect();
    let mut dense = Rbm::new(DenseOp::zeros(n, n));
    let mut rng = seeded_rng(2);
    group.bench_function("dense-2048", |b| {
        b.iter(|| dense.cd1_step(black_box(&v0), 0.01, &mut rng))
    });
    let mut op_rng = seeded_rng(3);
    let circ = BlockCirculantMatrix::random(&mut op_rng, n, n, 256).unwrap();
    let mut circ_rbm = Rbm::new(circ);
    group.bench_function("circulant-2048-k256", |b| {
        b.iter(|| circ_rbm.cd1_step(black_box(&v0), 0.01, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_rbm_training);
criterion_main!(benches);
