//! # circnn-bench
//!
//! Experiment runners regenerating **every table and figure** of the
//! paper's evaluation, plus the ablations DESIGN.md calls out. Each module
//! matches one artifact and each has a binary wrapper in `src/bin`:
//!
//! | Module / binary | Paper artifact |
//! |---|---|
//! | [`fig7`] / `fig7` | Fig. 7(a,b,c): compression ratios and accuracy |
//! | [`fig13`] / `fig13` | Fig. 13: FPGA GOPS & GOPS/W comparison |
//! | [`fig14`] / `fig14` | Fig. 14: throughput/energy vs IBM TrueNorth |
//! | [`fig15`] / `fig15` | Fig. 15: ASIC comparison incl. near-threshold |
//! | [`sec53`] / `sec53` | §5.3: embedded-processor measurements |
//! | [`alg3`] / `alg3` | Algorithm 3 design-space example (§4.3) |
//! | [`train_speedup`] / `train_speedup` | §3.4: 5–9× DBN training gain |
//! | [`ablations`] / `ablations` | design-choice ablations |
//! | [`batched`] / `batched` | batched-inference engine trajectory (`BENCH_batched.json`) |
//! | [`conv`] / `conv` | batch-plane CONV pipeline trajectory (`BENCH_conv.json`) |
//! | [`rnn`] / `rnn` | recurrent engine + strided fused-MAC trajectory (`BENCH_rnn.json`) |
//! | [`serve`] / `serve` | serving-layer throughput trajectory (`BENCH_serve.json`) |
//! | [`wire`] / `wire` | network-serving throughput trajectory (`BENCH_wire.json`) |
//! | [`fault`] / `fault` | overload-policy latency/shed trajectory (`BENCH_fault.json`) |
//! | [`shard`] / `shard` | sharded-tier scaling + failover trajectory (`BENCH_shard.json`) |
//!
//! Experiments honor the `CIRCNN_QUICK=1` environment variable to shrink
//! training workloads (used by the integration tests); the binaries default
//! to the full configuration.

#![forbid(unsafe_code)]

pub mod ablations;
pub mod batched;
pub mod conv;
pub mod fault;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig7;
pub mod rnn;
pub mod sec53;
pub mod serve;
pub mod shard;
pub mod table;
pub mod train_speedup;
pub mod wire;

/// Algorithm-3 experiment (design-space optimization).
pub mod alg3;

/// Returns `true` when the quick (CI-sized) configuration is requested.
pub fn quick_mode() -> bool {
    std::env::var("CIRCNN_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}
