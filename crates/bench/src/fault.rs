//! Overload-behavior trajectory: client-observed latency and shed rate
//! under 1×/2×/4× offered load for each [`OverloadPolicy`].
//!
//! The server is a single worker running a fixed-cost model (a calibrated
//! sleep per dispatch), so its capacity is known exactly. An **open-loop**
//! submitter offers requests on a fixed schedule — like real ingress
//! traffic, it does not slow down because the server is behind — and every
//! request's latency is measured from its *scheduled* arrival time, so
//! time a blocked submitter spends parked counts against the policy that
//! parked it.
//!
//! The trajectory this reproduces is the PR's acceptance criterion:
//!
//! * `Block` — admission waits for queue space. At 4× overload the
//!   backlog (and with it p99 latency) grows without bound for as long as
//!   the run lasts; nothing is shed.
//! * `Reject` — admission fails fast once the queue is full. Completed
//!   requests keep a bounded p99 (≤ queue depth × service time); the
//!   excess load surfaces as a ~75 % shed rate at 4×.
//! * `ShedOldest` — admission evicts the stalest queued request. Same
//!   bounded p99, same shed rate, but the *newest* requests survive —
//!   the right trade when stale answers are worthless.
//!
//! The `fault` binary wraps [`run`] and writes `BENCH_fault.json`.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use circnn_serve::{OverloadPolicy, ServeConfig, ServeError, ServeModel, Server};

/// Fixed-cost model: sleeps `delay` per dispatch, then echoes. With
/// `max_batch = 1` the server's capacity is exactly `1 / delay`.
struct FixedCost {
    len: usize,
    delay: Duration,
}

impl ServeModel for FixedCost {
    type Scratch = ();
    fn make_scratch(&self) {}
    fn input_len(&self) -> usize {
        self.len
    }
    fn output_len(&self) -> usize {
        self.len
    }
    fn infer_batch(&self, x: &[f32], _batch: usize, _scratch: &mut (), out: &mut [f32]) {
        std::thread::sleep(self.delay);
        out.copy_from_slice(x);
    }
}

/// One measured (policy, overload) point.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Overload policy under test.
    pub policy: OverloadPolicy,
    /// Offered load as a multiple of server capacity (1, 2, 4).
    pub overload: u32,
    /// Offered request rate, requests/second.
    pub offered_rps: f64,
    /// Requests that completed with a result.
    pub completed: u64,
    /// Requests shed from the queue (`ShedOldest`).
    pub shed: u64,
    /// Requests refused at admission (`Reject`).
    pub rejected: u64,
    /// Median completed-request latency from *scheduled* arrival, µs.
    pub p50_us: f64,
    /// 99th-percentile completed-request latency, µs.
    pub p99_us: f64,
}

impl FaultPoint {
    /// Fraction of offered requests that were shed or rejected.
    pub fn shed_rate(&self) -> f64 {
        let total = self.completed + self.shed + self.rejected;
        if total == 0 {
            0.0
        } else {
            (self.shed + self.rejected) as f64 / total as f64
        }
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn policy_name(p: OverloadPolicy) -> &'static str {
    match p {
        OverloadPolicy::Block => "block",
        OverloadPolicy::Reject => "reject",
        OverloadPolicy::ShedOldest => "shed_oldest",
    }
}

/// Offers `requests` requests at `overload ×` the server's capacity under
/// `policy` and measures the outcome mix and completed-request latency.
pub fn measure(
    policy: OverloadPolicy,
    overload: u32,
    requests: u64,
    service_time: Duration,
) -> FaultPoint {
    const LEN: usize = 8;
    let server = Server::start(
        FixedCost {
            len: LEN,
            delay: service_time,
        },
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 32,
            workers: 1,
            overload: policy,
        },
    )
    .expect("valid config");

    let interval = service_time / overload;
    let offered_rps = 1.0 / interval.as_secs_f64();
    let (tx, rx) = mpsc::channel::<(Instant, circnn_serve::ResponseHandle)>();
    let mut rejected = 0u64;

    // Collector: waits out every admitted request and tallies outcomes.
    // Completions arrive in admission order (single FIFO worker), so a
    // serial drain observes each fulfillment promptly.
    let collector = std::thread::spawn(move || {
        let (mut completed, mut shed, mut latencies) = (0u64, 0u64, Vec::new());
        for (scheduled, handle) in rx {
            match handle.wait() {
                Ok(_) => {
                    completed += 1;
                    latencies.push(scheduled.elapsed().as_secs_f64() * 1e6);
                }
                Err(ServeError::Overloaded) => shed += 1,
                Err(e) => panic!("unexpected serve error: {e}"),
            }
        }
        (completed, shed, latencies)
    });

    // Open-loop submitter: request i is *due* at `t0 + i × interval`
    // regardless of server progress; lateness caused by a blocking
    // admission is charged to the request's latency.
    let t0 = Instant::now();
    for i in 0..requests {
        let due = t0 + interval * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match server.submit(vec![0.25; LEN]) {
            Ok(handle) => tx.send((due, handle)).expect("collector alive"),
            Err(ServeError::Overloaded) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    drop(tx);
    let (completed, shed, mut latencies) = collector.join().expect("collector");
    let stats = server.shutdown();
    debug_assert_eq!(stats.shed, shed, "server-side shed count agrees");
    debug_assert_eq!(stats.rejected, rejected, "server-side reject count");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    FaultPoint {
        policy,
        overload,
        offered_rps,
        completed,
        shed,
        rejected,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

/// Runs the full policy × overload grid.
pub fn run(quick: bool) -> Vec<FaultPoint> {
    let (requests, service_time) = if quick {
        (240, Duration::from_millis(1))
    } else {
        (1500, Duration::from_millis(2))
    };
    let mut points = Vec::new();
    for policy in [
        OverloadPolicy::Block,
        OverloadPolicy::Reject,
        OverloadPolicy::ShedOldest,
    ] {
        for overload in [1u32, 2, 4] {
            points.push(measure(policy, overload, requests, service_time));
        }
    }
    points
}

/// Renders the points as the `BENCH_fault.json` trajectory document.
pub fn to_json(points: &[FaultPoint]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"fault_overload\",\n  \"unit\": \"microseconds\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"overload\": {}, \"offered_rps\": {:.0}, \
             \"completed\": {}, \"shed\": {}, \"rejected\": {}, \
             \"shed_rate\": {:.3}, \"p50_us\": {:.0}, \"p99_us\": {:.0}}}{}\n",
            policy_name(p.policy),
            p.overload,
            p.offered_rps,
            p.completed,
            p.shed,
            p.rejected,
            p.shed_rate(),
            p.p50_us,
            p.p99_us,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints a human-readable table.
pub fn print(points: &[FaultPoint]) {
    println!(
        "{:>11} {:>4} | {:>9} {:>9} {:>5} {:>5} {:>6} | {:>10} {:>10}",
        "policy", "load", "offered", "done", "shed", "rej", "rate", "p50", "p99"
    );
    for p in points {
        println!(
            "{:>11} {:>3}x | {:>5.0} r/s {:>9} {:>5} {:>5} {:>5.0}% | {:>7.1} ms {:>7.1} ms",
            policy_name(p.policy),
            p.overload,
            p.offered_rps,
            p.completed,
            p.shed,
            p.rejected,
            p.shed_rate() * 100.0,
            p.p50_us / 1e3,
            p.p99_us / 1e3,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small point per policy: every offered request is accounted for,
    /// and the JSON carries the acceptance-relevant fields.
    #[test]
    fn measures_and_serializes_small_points() {
        let points: Vec<_> = [
            OverloadPolicy::Block,
            OverloadPolicy::Reject,
            OverloadPolicy::ShedOldest,
        ]
        .into_iter()
        .map(|p| measure(p, 4, 60, Duration::from_millis(1)))
        .collect();
        for p in &points {
            assert_eq!(p.completed + p.shed + p.rejected, 60, "{p:?}");
        }
        // Block never sheds; the bounded policies must under 4× load.
        assert_eq!(points[0].shed + points[0].rejected, 0);
        assert!(points[1].rejected > 0, "{:?}", points[1]);
        assert!(points[2].shed > 0, "{:?}", points[2]);
        let json = to_json(&points);
        assert!(json.contains("\"policy\": \"block\""));
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"shed_rate\""));
    }
}
