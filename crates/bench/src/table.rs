//! Minimal fixed-width table printer for experiment outputs.

/// A printable table with a title, column headers and string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a ratio like `12.3×`.
pub fn times(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}×")
    } else {
        format!("{x:.1}×")
    }
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "10000".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 5);
        // All data lines have the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.row(&["1".into()]);
        assert!(t.render().lines().count() >= 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(times(12.34), "12.3×");
        assert_eq!(times(123.4), "123×");
        assert_eq!(pct(0.953), "95.3%");
    }
}
