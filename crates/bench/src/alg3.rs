//! Algorithm 3 — design-space optimization of the basic computing block,
//! reproducing the §4.3 worked example (block size 128 on the Cyclone V).

use circnn_hw::dse::{evaluate, optimize, DseConfig, DseResult};

use crate::table::{pct, Table};

/// The §4.3 example numbers, measured from the calibrated model.
#[derive(Debug, Clone, Copy)]
pub struct Alg3Example {
    /// Performance gain for p: 16→32 at d = 1 (paper: +53.8 %).
    pub p_perf_gain: f64,
    /// Power increase for the same step (paper: < 10 %).
    pub p_power_increase: f64,
    /// Performance gain for d: 1→2 at p = 32 (paper: +62.2 %).
    pub d_perf_gain: f64,
    /// Power increase for the same step (paper: +7.8 %).
    pub d_power_increase: f64,
}

/// Runs the worked example.
pub fn example() -> Alg3Example {
    let cfg = DseConfig::cyclone_v();
    let p16 = evaluate(&cfg, 16, 1);
    let p32 = evaluate(&cfg, 32, 1);
    let d2 = evaluate(&cfg, 32, 2);
    Alg3Example {
        p_perf_gain: p32.throughput / p16.throughput - 1.0,
        p_power_increase: p32.power_w / p16.power_w - 1.0,
        d_perf_gain: d2.throughput / p32.throughput - 1.0,
        d_power_increase: d2.power_w / p32.power_w - 1.0,
    }
}

/// Runs the full optimizer.
pub fn run() -> DseResult {
    optimize(&DseConfig::cyclone_v())
}

/// Prints the example and the optimizer outcome.
pub fn print(example: &Alg3Example, result: &DseResult) {
    let mut t = Table::new(
        "Algorithm 3 example (block 128, Cyclone V): step effects",
        &[
            "step",
            "perf gain (paper)",
            "perf gain (ours)",
            "power (paper)",
            "power (ours)",
        ],
    );
    t.row(&[
        "p: 16 → 32 (d = 1)".into(),
        "+53.8%".into(),
        format!("+{}", pct(example.p_perf_gain)),
        "<10%".into(),
        format!("+{}", pct(example.p_power_increase)),
    ]);
    t.row(&[
        "d: 1 → 2 (p = 32)".into(),
        "+62.2%".into(),
        format!("+{}", pct(example.d_perf_gain)),
        "+7.8%".into(),
        format!("+{}", pct(example.d_power_increase)),
    ]);
    t.print();

    let mut o = Table::new("Algorithm 3 optimizer outcome", &["quantity", "value"]);
    o.row(&[
        "bandwidth-derived p bound".into(),
        format!("{}", result.p_bound),
    ]);
    o.row(&["selected p".into(), format!("{}", result.best.p)]);
    o.row(&["selected d".into(), format!("{}", result.best.d)]);
    o.row(&[
        "throughput (butterflies/cycle)".into(),
        format!("{:.1}", result.best.throughput),
    ]);
    o.row(&[
        "modeled power".into(),
        format!("{:.2} W", result.best.power_w),
    ]);
    o.row(&[
        "points evaluated".into(),
        format!("{}", result.evaluated.len()),
    ]);
    o.print();
    println!(
        "paper: p is the optimization priority; d capped at 3 (control complexity).\n\
         selected design ({}, {}) honors both.\n",
        result.best.p, result.best.d
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_matches_paper_numbers() {
        let e = example();
        assert!((e.p_perf_gain - 0.538).abs() < 0.02, "{}", e.p_perf_gain);
        assert!(e.p_power_increase < 0.10 && e.p_power_increase > 0.0);
        assert!((e.d_perf_gain - 0.622).abs() < 0.03, "{}", e.d_perf_gain);
        assert!(
            (e.d_power_increase - 0.078).abs() < 0.012,
            "{}",
            e.d_power_increase
        );
    }

    #[test]
    fn optimizer_selects_depth_bounded_design() {
        let r = run();
        assert!(r.best.d <= 3);
        assert!(r.best.p <= r.p_bound);
    }
}
