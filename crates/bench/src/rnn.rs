//! Recurrent-inference trajectory: per-timestep scalar dispatch versus
//! engine-resident sequence inference on the unified spectral-plane core,
//! plus the strided-conv fused run-MAC versus the retired per-offset
//! gather dataflow.
//!
//! The scalar baseline is the pre-unification recurrent step reconstructed
//! from the public Algorithm-1 pieces: two allocating `matvec` calls per
//! timestep per sequence (`W_ih·x`, `W_hh·h`) and a tanh sweep — one
//! weight-spectrum sweep **per sequence** per step. The engine path runs
//! the fused batched step ([`CirculantRnnCell::step_batch_into`]): both
//! matmuls' products accumulate into one set of planes, bias and tanh ride
//! the IFFT's unpack pass, and each weight spectrum is swept **once per
//! step for the whole batch** — the weights stay resident, only the state
//! streams, which is where Li et al.'s FPGA RNN work says block-circulant
//! inference pays off most.
//!
//! The strided-conv table compares the fused run-MAC (one register-tiled
//! sweep over all `r²` offsets, strided input lanes) against the retired
//! per-offset gather dataflow, reconstructed from the public spectral
//! pieces (`col_spectra` / `accumulate_forward` / `finish_forward`):
//! channel spectra per input pixel, `r²` per-offset accumulations per
//! output pixel, one shared IFFT per output block.
//!
//! The `rnn` binary wraps [`run`] and writes the points to
//! `BENCH_rnn.json` so the trajectory can be tracked across commits.

use std::time::Instant;

use circnn_core::{
    default_batch_threads, BlockCirculantMatrix, CirculantConv2d, CirculantRnnCell, ConvWorkspace,
    RecurrentWorkspace,
};
use circnn_nn::Layer;
use circnn_tensor::init::seeded_rng;

/// One measured recurrent configuration.
#[derive(Debug, Clone)]
pub struct RnnPoint {
    /// Input width per timestep.
    pub in_dim: usize,
    /// Hidden units.
    pub hidden: usize,
    /// Circulant block size.
    pub k: usize,
    /// Sequence length.
    pub steps: usize,
    /// Concurrent sequences.
    pub batch: usize,
    /// Worker threads used by the parallel engine path.
    pub threads: usize,
    /// Nanoseconds per (timestep · sequence), scalar per-timestep matvecs.
    pub scalar_ns: f64,
    /// Nanoseconds per (timestep · sequence), fused engine step, 1 thread.
    pub engine_ns: f64,
    /// Nanoseconds per (timestep · sequence), fused engine step, threaded.
    pub parallel_ns: f64,
}

impl RnnPoint {
    /// Throughput gain of the serial fused engine step over the scalar
    /// per-timestep path.
    pub fn engine_speedup(&self) -> f64 {
        self.scalar_ns / self.engine_ns
    }

    /// Throughput gain of the threaded fused engine step.
    pub fn parallel_speedup(&self) -> f64 {
        self.scalar_ns / self.parallel_ns
    }
}

/// One measured strided-conv configuration.
#[derive(Debug, Clone)]
pub struct StridedConvPoint {
    /// Input channels.
    pub c: usize,
    /// Output channels.
    pub p: usize,
    /// Square input size.
    pub hw: usize,
    /// Kernel size `r`.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Circulant block size.
    pub k: usize,
    /// Batch size.
    pub batch: usize,
    /// Nanoseconds per sample, per-offset gather reference.
    pub gather_ns: f64,
    /// Nanoseconds per sample, fused run-MAC pipeline (1 thread).
    pub fused_ns: f64,
}

impl StridedConvPoint {
    /// Throughput gain of the fused run-MAC over the gather reference.
    pub fn speedup(&self) -> f64 {
        self.gather_ns / self.fused_ns
    }
}

/// Times `f` and returns median nanoseconds per call over `samples` runs.
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    f(); // warm-up also sizes workspaces
    let mut times: Vec<f64> = (0..samples.max(3))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

/// The retired scalar recurrent step: two allocating matvecs + tanh, per
/// sequence, per timestep (zero bias — `CirculantRnnCell::new` starts
/// with zero bias, so both paths compute the same function).
fn scalar_step(cell: &CirculantRnnCell, x: &[f32], h: &[f32]) -> Vec<f32> {
    let mut pre = cell.w_ih().matvec(x).expect("sized input");
    let rec = cell.w_hh().matvec(h).expect("sized state");
    for (p, r) in pre.iter_mut().zip(&rec) {
        *p = (*p + r).tanh();
    }
    pre
}

/// Measures one recurrent configuration.
pub fn measure_rnn(
    in_dim: usize,
    hidden: usize,
    k: usize,
    steps: usize,
    batch: usize,
    samples: usize,
) -> RnnPoint {
    let mut rng = seeded_rng((in_dim * 31 + hidden * 7 + k + steps + batch) as u64);
    let cell = CirculantRnnCell::new(&mut rng, in_dim, hidden, k, 0.9).expect("valid cell shape");
    let threads = default_batch_threads();
    // Timestep slabs, row-major [batch, in_dim].
    let slabs: Vec<Vec<f32>> = (0..steps)
        .map(|_| {
            circnn_tensor::init::uniform(&mut rng, &[batch * in_dim], -1.0, 1.0)
                .data()
                .to_vec()
        })
        .collect();
    let work = (steps * batch) as f64;

    // Scalar baseline: sequence-by-sequence, step-by-step.
    let scalar_ns = median_ns(samples, || {
        for b in 0..batch {
            let mut h = vec![0.0f32; hidden];
            for slab in &slabs {
                h = scalar_step(&cell, &slab[b * in_dim..(b + 1) * in_dim], &h);
            }
            std::hint::black_box(&h);
        }
    }) / work;

    // Fused engine step, whole batch per dispatch, resident weights.
    let run_engine = |threads: usize| -> f64 {
        let mut ws = RecurrentWorkspace::new();
        let mut h = vec![0.0f32; batch * hidden];
        let mut next = vec![0.0f32; batch * hidden];
        median_ns(samples, || {
            h.fill(0.0);
            for slab in &slabs {
                cell.step_batch_into_with_threads(slab, &h, batch, &mut ws, &mut next, threads)
                    .expect("sized slabs");
                core::mem::swap(&mut h, &mut next);
            }
            std::hint::black_box(&h);
        }) / work
    };
    let engine_ns = run_engine(1);
    let parallel_ns = run_engine(threads);

    // Sanity: the engine path computes the scalar recurrence (to
    // rounding — the factorizations differ).
    {
        let mut ws = RecurrentWorkspace::new();
        let mut h = vec![0.0f32; batch * hidden];
        let mut next = vec![0.0f32; batch * hidden];
        for slab in &slabs {
            cell.step_batch_into(slab, &h, batch, &mut ws, &mut next)
                .expect("sized slabs");
            core::mem::swap(&mut h, &mut next);
        }
        let mut href = vec![0.0f32; hidden];
        for slab in &slabs {
            href = scalar_step(&cell, &slab[..in_dim], &href);
        }
        for (i, (&a, &e)) in h[..hidden].iter().zip(&href).enumerate() {
            assert!(
                (a - e).abs() < 1e-3 * e.abs().max(1.0),
                "engine step diverged from scalar recurrence at unit {i}: {a} vs {e}"
            );
        }
    }

    RnnPoint {
        in_dim,
        hidden,
        k,
        steps,
        batch,
        threads,
        scalar_ns,
        engine_ns,
        parallel_ns,
    }
}

/// The retired per-offset gather reference for one image (any stride):
/// channel spectra once per input pixel, per-offset accumulation per
/// output pixel, one shared IFFT per output pixel's block set.
#[allow(clippy::too_many_arguments)]
fn gather_reference(
    engines: &[BlockCirculantMatrix],
    bias: &[f32],
    c: usize,
    r: usize,
    stride: usize,
    padding: usize,
    img: &[f32],
    hw: usize,
    out: &mut [f32],
) {
    let (h, w) = (hw, hw);
    let e0 = &engines[0];
    let oh = (h + 2 * padding - r) / stride + 1;
    let ow = (w + 2 * padding - r) / stride + 1;
    let mut pixel_spectra = Vec::with_capacity(h * w);
    let mut chans = vec![0.0f32; c];
    for iy in 0..h {
        for ix in 0..w {
            for (ci, slot) in chans.iter_mut().enumerate() {
                *slot = img[(ci * h + iy) * w + ix];
            }
            pixel_spectra.push(e0.col_spectra(&chans).expect("sized channel vector"));
        }
    }
    let mut acc = vec![circnn_fft::Complex::zero(); e0.block_rows() * e0.bins()];
    for oy in 0..oh {
        for ox in 0..ow {
            acc.fill(circnn_fft::Complex::zero());
            for kh in 0..r {
                let iy = (oy * stride + kh) as isize - padding as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                for kw in 0..r {
                    let ix = (ox * stride + kw) as isize - padding as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    let spec = &pixel_spectra[iy as usize * w + ix as usize];
                    engines[kh * r + kw].accumulate_forward(spec, &mut acc);
                }
            }
            let y = e0.finish_forward(&acc).expect("sized accumulator");
            for (pch, &v) in y.iter().enumerate() {
                out[(pch * oh + oy) * ow + ox] = v + bias[pch];
            }
        }
    }
}

/// Measures one strided-conv configuration: fused run-MAC pipeline versus
/// the per-offset gather reference.
#[allow(clippy::too_many_arguments)]
pub fn measure_strided(
    c: usize,
    p: usize,
    hw: usize,
    r: usize,
    stride: usize,
    k: usize,
    batch: usize,
    samples: usize,
) -> StridedConvPoint {
    let padding = r / 2;
    let mut rng = seeded_rng((c * 13 + p * 5 + hw * 3 + stride + k + batch) as u64);
    let mut conv =
        CirculantConv2d::new(&mut rng, c, p, r, stride, padding, k).expect("valid conv shape");
    let mut groups: Vec<Vec<f32>> = Vec::new();
    conv.visit_params(&mut |param, _| groups.push(param.to_vec()));
    let per = (p.div_ceil(k)) * (c.div_ceil(k)) * k;
    let engines: Vec<BlockCirculantMatrix> = (0..r * r)
        .map(|o| {
            BlockCirculantMatrix::from_weights(p, c, k, &groups[0][o * per..(o + 1) * per])
                .expect("valid operator shape")
        })
        .collect();
    conv.set_training(false);
    let x = circnn_tensor::init::uniform(&mut rng, &[batch, c, hw, hw], -1.0, 1.0);
    let oh = (hw + 2 * padding - r) / stride + 1;
    let per_out = p * oh * oh;
    let mut out = vec![0.0f32; batch * per_out];

    let gather_ns = median_ns(samples, || {
        for b in 0..batch {
            let img = x.data()[b * c * hw * hw..(b + 1) * c * hw * hw].to_vec();
            gather_reference(
                &engines,
                &groups[1],
                c,
                r,
                stride,
                padding,
                &img,
                hw,
                &mut out[b * per_out..(b + 1) * per_out],
            );
        }
        std::hint::black_box(&out);
    }) / batch as f64;

    let mut ws = ConvWorkspace::new();
    let fused_ns = median_ns(samples, || {
        conv.infer_batch_into(&x, &mut ws, &mut out, 1)
            .expect("sized slab");
        std::hint::black_box(&out);
    }) / batch as f64;

    // Sanity: fused and gather compute the same conv.
    {
        let mut reference = vec![0.0f32; per_out];
        let img = x.data()[..c * hw * hw].to_vec();
        gather_reference(
            &engines,
            &groups[1],
            c,
            r,
            stride,
            padding,
            &img,
            hw,
            &mut reference,
        );
        let scale = reference.iter().fold(1.0f32, |a, &v| a.max(v.abs()));
        for (i, (&a, &e)) in out[..per_out].iter().zip(&reference).enumerate() {
            assert!(
                (a - e).abs() < 5e-4 * scale,
                "fused strided path diverged from gather reference at {i}: {a} vs {e}"
            );
        }
    }

    StridedConvPoint {
        c,
        p,
        hw,
        kernel: r,
        stride,
        k,
        batch,
        gather_ns,
        fused_ns,
    }
}

/// The recurrent trajectory grid (`in_dim, hidden, k, steps, batch`); the
/// B ∈ {1, 8, 32} sweep is the acceptance-criteria table.
pub fn rnn_grid(quick: bool) -> Vec<(usize, usize, usize, usize, usize)> {
    if quick {
        vec![(16, 128, 16, 8, 1), (16, 128, 16, 8, 32)]
    } else {
        vec![
            (16, 128, 16, 24, 1),
            (16, 128, 16, 24, 8),
            (16, 128, 16, 24, 32),
            (32, 256, 32, 24, 8),
        ]
    }
}

/// The strided-conv grid (`c, p, hw, r, stride, k, batch`).
pub fn strided_grid(quick: bool) -> Vec<(usize, usize, usize, usize, usize, usize, usize)> {
    if quick {
        vec![(8, 16, 10, 3, 2, 8, 4)]
    } else {
        vec![
            (8, 16, 10, 3, 2, 8, 8),
            (16, 32, 12, 3, 2, 16, 8),
            (8, 16, 13, 3, 3, 8, 8),
        ]
    }
}

/// Runs the whole trajectory.
pub fn run(quick: bool) -> (Vec<RnnPoint>, Vec<StridedConvPoint>) {
    let samples = if quick { 5 } else { 11 };
    let rnn = rnn_grid(quick)
        .into_iter()
        .map(|(d, h, k, t, b)| measure_rnn(d, h, k, t, b, samples))
        .collect();
    let strided = strided_grid(quick)
        .into_iter()
        .map(|(c, p, hw, r, s, k, b)| measure_strided(c, p, hw, r, s, k, b, samples))
        .collect();
    (rnn, strided)
}

/// Renders the points as the `BENCH_rnn.json` trajectory document.
pub fn to_json(rnn: &[RnnPoint], strided: &[StridedConvPoint]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"recurrent_engine\",\n  \"unit\": \"ns_per_step_sequence\",\n  \
         \"points\": [\n",
    );
    for (i, p) in rnn.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"in_dim\": {}, \"hidden\": {}, \"k\": {}, \"steps\": {}, \"batch\": {}, \
             \"threads\": {}, \"scalar_ns\": {:.1}, \"engine_ns\": {:.1}, \"parallel_ns\": {:.1}, \
             \"engine_speedup\": {:.2}, \"parallel_speedup\": {:.2}}}{}\n",
            p.in_dim,
            p.hidden,
            p.k,
            p.steps,
            p.batch,
            p.threads,
            p.scalar_ns,
            p.engine_ns,
            p.parallel_ns,
            p.engine_speedup(),
            p.parallel_speedup(),
            if i + 1 == rnn.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"strided_conv\": [\n");
    for (i, p) in strided.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"c\": {}, \"p\": {}, \"hw\": {}, \"kernel\": {}, \"stride\": {}, \"k\": {}, \
             \"batch\": {}, \"gather_ns\": {:.1}, \"fused_ns\": {:.1}, \"speedup\": {:.2}}}{}\n",
            p.c,
            p.p,
            p.hw,
            p.kernel,
            p.stride,
            p.k,
            p.batch,
            p.gather_ns,
            p.fused_ns,
            p.speedup(),
            if i + 1 == strided.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints a human-readable table.
pub fn print(rnn: &[RnnPoint], strided: &[StridedConvPoint]) {
    println!(
        "{:>4} {:>5} {:>4} {:>5} {:>4} | {:>12} {:>12} {:>12} | {:>8} {:>8}",
        "D", "H", "k", "T", "B", "scalar", "engine", "parallel", "E-spdup", "P-spdup"
    );
    for p in rnn {
        println!(
            "{:>4} {:>5} {:>4} {:>5} {:>4} | {:>9.0} ns {:>9.0} ns {:>9.0} ns | {:>7.2}x {:>7.2}x",
            p.in_dim,
            p.hidden,
            p.k,
            p.steps,
            p.batch,
            p.scalar_ns,
            p.engine_ns,
            p.parallel_ns,
            p.engine_speedup(),
            p.parallel_speedup()
        );
    }
    println!("\nstrided conv (fused run-MAC vs per-offset gather reference):");
    for p in strided {
        println!(
            "  C={:>3} P={:>3} HW={:>3} r={} s={} k={:>3} B={:>3} | gather {:>9.0} ns  fused {:>9.0} ns | {:>5.2}x",
            p.c, p.p, p.hw, p.kernel, p.stride, p.k, p.batch, p.gather_ns, p.fused_ns, p.speedup()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes_small_points() {
        let p = measure_rnn(4, 16, 4, 3, 2, 3);
        assert!(p.scalar_ns > 0.0 && p.engine_ns > 0.0 && p.parallel_ns > 0.0);
        let s = measure_strided(4, 8, 7, 3, 2, 4, 2, 3);
        assert!(s.gather_ns > 0.0 && s.fused_ns > 0.0);
        let json = to_json(std::slice::from_ref(&p), std::slice::from_ref(&s));
        assert!(json.contains("\"hidden\": 16"));
        assert!(json.contains("strided_conv"));
        assert!(json.contains("engine_speedup"));
    }
}
