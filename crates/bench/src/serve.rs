//! Serving-layer trajectory: batched dynamic-batching server versus
//! one-request-per-call dispatch, across offered-load points.
//!
//! Each point floods the server from `clients` concurrent closed-loop
//! client threads (each keeps a window of in-flight requests, so offered
//! load scales with the client count) and measures end-to-end request
//! throughput twice over the **same** operator:
//!
//! * **batched** — `max_batch = 32`: workers coalesce whatever is queued
//!   into `[B, n]` slabs for the one-sweep batched engine;
//! * **unbatched** — `max_batch = 1`: identical queue, handles and worker
//!   machinery, but every request is dispatched alone. This isolates the
//!   *batching* win from the server overhead itself.
//!
//! The `serve` binary wraps [`run`] and writes `BENCH_serve.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use circnn_core::BlockCirculantMatrix;
use circnn_serve::{ServeConfig, ServeStats, Server};
use circnn_tensor::init::seeded_rng;

/// One measured offered-load point.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// Output / input dimension and block size of the served operator.
    pub m: usize,
    /// Input dimension.
    pub n: usize,
    /// Circulant block size.
    pub k: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// End-to-end requests/second with dynamic batching (`max_batch = 32`).
    pub batched_rps: f64,
    /// Requests/second with one-request-per-call dispatch (`max_batch = 1`).
    pub unbatched_rps: f64,
    /// Mean batch occupancy the policy achieved in the batched run.
    pub occupancy: f64,
    /// Mean request latency in the batched run, microseconds.
    pub batched_latency_us: f64,
    /// Mean request latency in the unbatched run, microseconds.
    pub unbatched_latency_us: f64,
}

impl ServePoint {
    /// Throughput gain of dynamic batching over per-request dispatch.
    pub fn speedup(&self) -> f64 {
        self.batched_rps / self.unbatched_rps
    }
}

/// Floods `server` from `clients` threads × `requests` each (window of 8
/// in-flight per client) and returns (wall seconds, final stats).
fn flood(
    server: &Server<BlockCirculantMatrix>,
    n: usize,
    clients: usize,
    requests: usize,
) -> (f64, ServeStats) {
    const WINDOW: usize = 8;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let server = &server;
            s.spawn(move || {
                let mut rng = seeded_rng(0xC11E47 + c as u64);
                let mut window = std::collections::VecDeque::new();
                for _ in 0..requests {
                    let x = circnn_tensor::init::uniform(&mut rng, &[n], -1.0, 1.0);
                    window.push_back(server.submit(x.data().to_vec()).expect("accepting"));
                    if window.len() >= WINDOW {
                        window
                            .pop_front()
                            .expect("window is non-empty")
                            .wait()
                            .expect("served");
                    }
                }
                for h in window {
                    h.wait().expect("served");
                }
            });
        }
    });
    (t0.elapsed().as_secs_f64(), server.stats())
}

/// Measures one offered-load point over a fresh `(m, n, k)` operator.
pub fn measure(
    m: usize,
    n: usize,
    k: usize,
    clients: usize,
    requests_per_client: usize,
    workers: usize,
) -> ServePoint {
    let total = (clients * requests_per_client) as f64;
    let mk = || {
        BlockCirculantMatrix::random(&mut seeded_rng((m + n + k) as u64), m, n, k)
            .expect("valid shape")
    };
    let batched_cfg = ServeConfig {
        max_batch: 32,
        max_wait: Duration::from_micros(300),
        queue_capacity: 256,
        workers,
        ..Default::default()
    };
    let unbatched_cfg = ServeConfig {
        max_batch: 1,
        max_wait: Duration::ZERO,
        queue_capacity: 256,
        workers,
        ..Default::default()
    };

    // The stats are cumulative and the warm-up flood is untimed, so the
    // published occupancy/latency come from before/after deltas of the
    // timed flood only.
    let delta_requests =
        |before: &ServeStats, after: &ServeStats| (after.requests - before.requests).max(1) as f64;
    let delta_latency_us = |before: &ServeStats, after: &ServeStats| {
        let sum_after = after.mean_latency_us * after.requests as f64;
        let sum_before = before.mean_latency_us * before.requests as f64;
        (sum_after - sum_before) / delta_requests(before, after)
    };

    let server = Server::start_shared(Arc::new(mk()), batched_cfg).expect("valid config");
    // Warm-up sizes every worker's workspace before the timed flood.
    let (_, _) = flood(&server, n, clients, 4.max(requests_per_client / 10));
    let before = server.stats();
    let (secs, after) = flood(&server, n, clients, requests_per_client);
    let batched_rps = total / secs;
    let occupancy =
        delta_requests(&before, &after) / (after.batches - before.batches).max(1) as f64;
    let batched_latency_us = delta_latency_us(&before, &after);
    server.shutdown();

    let server = Server::start_shared(Arc::new(mk()), unbatched_cfg).expect("valid config");
    let (_, _) = flood(&server, n, clients, 4.max(requests_per_client / 10));
    let before = server.stats();
    let (secs, after) = flood(&server, n, clients, requests_per_client);
    let unbatched_rps = total / secs;
    let unbatched_latency_us = delta_latency_us(&before, &after);
    server.shutdown();

    ServePoint {
        m,
        n,
        k,
        clients,
        requests_per_client,
        batched_rps,
        unbatched_rps,
        occupancy,
        batched_latency_us,
        unbatched_latency_us,
    }
}

/// Offered-load grid: client counts around and past `max_batch`.
pub fn grid(quick: bool) -> Vec<(usize, usize)> {
    // (clients, requests per client)
    if quick {
        vec![(4, 64), (16, 32)]
    } else {
        vec![(2, 512), (8, 256), (32, 128)]
    }
}

/// Runs the whole trajectory on the headline `(512, 512, 16)` operator.
pub fn run(quick: bool) -> Vec<ServePoint> {
    let workers = if circnn_core::default_batch_threads() > 1 {
        2
    } else {
        1
    };
    grid(quick)
        .into_iter()
        .map(|(c, r)| measure(512, 512, 16, c, r, workers))
        .collect()
}

/// Renders the points as the `BENCH_serve.json` trajectory document.
pub fn to_json(points: &[ServePoint]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"serve_throughput\",\n  \"unit\": \"requests_per_second\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"m\": {}, \"n\": {}, \"k\": {}, \"clients\": {}, \
             \"requests_per_client\": {}, \"batched_rps\": {:.0}, \
             \"unbatched_rps\": {:.0}, \"speedup\": {:.2}, \"occupancy\": {:.1}, \
             \"batched_latency_us\": {:.0}, \"unbatched_latency_us\": {:.0}}}{}\n",
            p.m,
            p.n,
            p.k,
            p.clients,
            p.requests_per_client,
            p.batched_rps,
            p.unbatched_rps,
            p.speedup(),
            p.occupancy,
            p.batched_latency_us,
            p.unbatched_latency_us,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints a human-readable table.
pub fn print(points: &[ServePoint]) {
    println!(
        "{:>7} {:>8} | {:>12} {:>12} {:>7} | {:>9} {:>12} {:>12}",
        "clients", "reqs", "batched", "unbatched", "spdup", "occup", "lat(batch)", "lat(single)"
    );
    for p in points {
        println!(
            "{:>7} {:>8} | {:>8.0} r/s {:>8.0} r/s {:>6.2}x | {:>9.1} {:>9.0} µs {:>9.0} µs",
            p.clients,
            p.clients * p.requests_per_client,
            p.batched_rps,
            p.unbatched_rps,
            p.speedup(),
            p.occupancy,
            p.batched_latency_us,
            p.unbatched_latency_us,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes_a_small_point() {
        let p = measure(64, 64, 8, 2, 12, 1);
        assert!(p.batched_rps > 0.0 && p.unbatched_rps > 0.0);
        let json = to_json(std::slice::from_ref(&p));
        assert!(json.contains("\"clients\": 2"));
        assert!(json.contains("speedup"));
    }
}
