//! Fig. 15 — ASIC synthesis comparison: our 45 nm design (16-bit, 200 MHz)
//! and the 4-bit near-threshold variant against published ASIC results and
//! an embedded GPU.

use circnn_hw::baselines::{asic_references, best_asic_gops_per_w, RefPoint};
use circnn_hw::netdesc::NetworkDescriptor;
use circnn_hw::platform;
use circnn_hw::simulator::{simulate, SimReport};

use crate::table::{times, Table};

/// Result of the Fig.-15 reproduction.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// Our FPGA point (also plotted in the paper's Fig. 15).
    pub fpga: SimReport,
    /// Our 45 nm ASIC synthesis point.
    pub asic: SimReport,
    /// Our 4-bit near-threshold point.
    pub near_threshold: SimReport,
    /// Published references.
    pub references: Vec<RefPoint>,
}

impl Fig15 {
    /// Improvement of the 16-bit ASIC over the best published point.
    pub fn asic_improvement(&self) -> f64 {
        self.asic.equiv_gops_per_w / best_asic_gops_per_w()
    }

    /// Extra factor from near-threshold + 4-bit (the paper's "another 17×").
    pub fn near_threshold_factor(&self) -> f64 {
        self.near_threshold.equiv_gops_per_w / self.asic.equiv_gops_per_w
    }

    /// Total improvement of the near-threshold point over the best
    /// published ASIC (the paper's "102×" composite).
    pub fn total_improvement(&self) -> f64 {
        self.near_threshold.equiv_gops_per_w / best_asic_gops_per_w()
    }

    /// Improvement over the Jetson TX1 GPU (the paper's "570×").
    pub fn gpu_improvement(&self) -> f64 {
        let tx1 = self
            .references
            .iter()
            .find(|r| r.name.contains("TX1"))
            .map(|r| r.gops_per_w)
            .unwrap_or(100.0);
        self.asic.equiv_gops_per_w / tx1
    }
}

/// Runs the Fig.-15 experiment.
pub fn run() -> Fig15 {
    let net = NetworkDescriptor::alexnet_circulant();
    Fig15 {
        fpga: simulate(&net, &platform::cyclone_v()),
        asic: simulate(&net, &platform::asic_45nm()),
        near_threshold: simulate(&net, &platform::asic_near_threshold()),
        references: asic_references(),
    }
}

/// Prints the comparison table.
pub fn print(fig: &Fig15) {
    let mut t = Table::new(
        "Fig. 15: ASIC comparison (equivalent GOPS / GOPS-per-W)",
        &["design", "GOPS", "GOPS/W"],
    );
    t.row(&[
        "CirCNN synthesis (ours, 16-bit)".into(),
        format!("{:.0}", fig.asic.equiv_gops),
        format!("{:.0}", fig.asic.equiv_gops_per_w),
    ]);
    t.row(&[
        "CirCNN near-threshold 4-bit (ours)".into(),
        format!("{:.0}", fig.near_threshold.equiv_gops),
        format!("{:.0}", fig.near_threshold.equiv_gops_per_w),
    ]);
    t.row(&[
        "CirCNN FPGA (ours)".into(),
        format!("{:.0}", fig.fpga.equiv_gops),
        format!("{:.0}", fig.fpga.equiv_gops_per_w),
    ]);
    for r in &fig.references {
        t.row(&[
            r.name.into(),
            format!("{:.0}", r.gops),
            format!("{:.0}", r.gops_per_w),
        ]);
    }
    t.print();
    println!(
        "paper claims: >6x over best ASIC; +17x from 4-bit near-threshold (102x total); 570x vs TX1\n\
         measured    : {} over best ASIC; +{} near-threshold ({} total); {} vs TX1\n",
        times(fig.asic_improvement()),
        times(fig.near_threshold_factor()),
        times(fig.total_improvement()),
        times(fig.gpu_improvement()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_asic_has_the_highest_throughput_and_efficiency() {
        let fig = run();
        for r in &fig.references {
            assert!(fig.asic.equiv_gops > r.gops, "{}", r.name);
            assert!(fig.asic.equiv_gops_per_w > r.gops_per_w, "{}", r.name);
        }
    }

    #[test]
    fn fpga_reaches_the_same_order_as_asic_baselines() {
        // "even our FPGA implementation could achieve the same order of
        // energy efficiency and higher throughput compared with the best
        // state-of-the-art ASICs" — within one order of the 10-TOPS/W best.
        let fig = run();
        assert!(fig.fpga.equiv_gops_per_w > best_asic_gops_per_w() / 15.0);
    }

    #[test]
    fn near_threshold_factor_is_near_17() {
        let fig = run();
        let f = fig.near_threshold_factor();
        assert!(f > 8.0 && f < 30.0, "near-threshold factor {f}");
    }

    #[test]
    fn composite_improvements_preserve_paper_ordering() {
        let fig = run();
        assert!(fig.asic_improvement() > 1.0);
        assert!(fig.total_improvement() > 10.0 * fig.asic_improvement() / 17.0);
        assert!(
            fig.gpu_improvement() > 50.0,
            "vs TX1: {}",
            fig.gpu_improvement()
        );
    }
}
