//! §5.3 — embedded-processor measurements.
//!
//! The paper runs LeNet-5 and AlexNet FC layers on an ARM Cortex-A9
//! smartphone. Here the **host CPU running this very Rust implementation**
//! is the embedded processor (substitution documented in DESIGN.md): the
//! claims under test are *relative* — block-circulant FC beats dense GEMV,
//! the advantage grows with layer size (the paper's "benefits of
//! computational complexity reduction become more significant when the
//! model size becomes larger"), and LeNet-5 inference is millisecond-scale.

use std::time::Instant;

use circnn_core::BlockCirculantMatrix;
use circnn_hw::baselines::embedded;
use circnn_models::{lenet5_circulant, lenet5_dense};
use circnn_nn::Layer;
use circnn_tensor::{init::seeded_rng, Tensor};

use crate::table::Table;

/// Measured §5.3 quantities.
#[derive(Debug, Clone)]
pub struct Sec53 {
    /// ms per LeNet-5 (circulant) forward pass on the host.
    pub lenet_circ_ms: f64,
    /// ms per LeNet-5 (dense) forward pass on the host.
    pub lenet_dense_ms: f64,
    /// AlexNet FC6 (9216→4096, k = 128) circulant layers/s.
    pub alexnet_fc_circ_layers_per_s: f64,
    /// AlexNet FC6 dense layers/s.
    pub alexnet_fc_dense_layers_per_s: f64,
    /// Speedup of circulant over dense at a sweep of square layer sizes.
    pub size_sweep: Vec<(usize, f64)>,
}

fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One warmup.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

/// Runs the host-CPU measurements.
pub fn run(quick: bool) -> Sec53 {
    let reps = if quick { 3 } else { 20 };
    let mut rng = seeded_rng(3);
    let mut lenet_c = lenet5_circulant(&mut rng);
    let mut lenet_d = lenet5_dense(&mut rng);
    let image = Tensor::ones(&[1, 28, 28]);
    let lenet_circ_ms = time_ms(reps, || {
        let _ = lenet_c.forward(&image);
    });
    let lenet_dense_ms = time_ms(reps, || {
        let _ = lenet_d.forward(&image);
    });

    // AlexNet FC6: 9216 → 4096 with block 128 (the paper's block size).
    let circ = BlockCirculantMatrix::random(&mut rng, 4096, 9216, 128).expect("valid block");
    let dense = circnn_tensor::init::uniform(&mut rng, &[4096, 9216], -0.01, 0.01);
    let x: Vec<f32> = (0..9216).map(|i| (i as f32 * 0.001).sin()).collect();
    let fc_reps = if quick { 2 } else { 10 };
    let circ_ms = time_ms(fc_reps, || {
        let _ = circ.matvec(&x).expect("dims fixed");
    });
    let dense_ms = time_ms(fc_reps, || {
        let _ = dense.matvec(&x);
    });

    // Crossover sweep: square n×n layers, k = min(n, 128). The quick
    // configuration uses the extremes so the growth trend is measurable
    // even on a noisy debug build.
    let sizes: &[usize] = if quick {
        &[128, 2048]
    } else {
        &[128, 256, 512, 1024, 2048, 4096]
    };
    let size_sweep = sizes
        .iter()
        .map(|&n| {
            let k = n.min(128);
            let w = BlockCirculantMatrix::random(&mut rng, n, n, k).expect("valid block");
            let d = circnn_tensor::init::uniform(&mut rng, &[n, n], -0.01, 0.01);
            let xv: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).cos()).collect();
            let sweep_reps = if quick {
                4
            } else {
                (2_000_000 / (n * n)).clamp(3, 200)
            };
            let tc = time_ms(sweep_reps, || {
                let _ = w.matvec(&xv).expect("dims fixed");
            });
            let td = time_ms(sweep_reps, || {
                let _ = d.matvec(&xv);
            });
            (n, td / tc)
        })
        .collect();

    Sec53 {
        lenet_circ_ms,
        lenet_dense_ms,
        alexnet_fc_circ_layers_per_s: 1e3 / circ_ms,
        alexnet_fc_dense_layers_per_s: 1e3 / dense_ms,
        size_sweep,
    }
}

/// Prints the §5.3 tables with the paper's published comparators.
pub fn print(r: &Sec53) {
    let mut t = Table::new(
        "Sec. 5.3: embedded-processor results (host CPU stands in for ARM Cortex-A9)",
        &[
            "quantity",
            "measured (host)",
            "paper (ARM A9)",
            "published comparator",
        ],
    );
    t.row(&[
        "LeNet-5 ms/image (circulant)".into(),
        format!("{:.3} ms", r.lenet_circ_ms),
        format!("{:.1} ms", embedded::PAPER_ARM_MNIST_MS),
        format!(
            "TrueNorth high-acc: {:.0} img/s",
            embedded::TRUENORTH_HIGH_ACCURACY_MNIST_FPS
        ),
    ]);
    t.row(&[
        "LeNet-5 ms/image (dense)".into(),
        format!("{:.3} ms", r.lenet_dense_ms),
        "—".into(),
        format!(
            "Tesla C2075: {:.0} img/s @ {:.1} W",
            embedded::TESLA_C2075_MNIST_FPS,
            embedded::TESLA_C2075_POWER_W
        ),
    ]);
    t.row(&[
        "AlexNet FC6 layers/s (circulant)".into(),
        format!("{:.0}", r.alexnet_fc_circ_layers_per_s),
        format!("{:.0}", embedded::PAPER_ARM_ALEXNET_FC_LAYERS_PER_S),
        format!(
            "Tesla C2075: {:.0} layers/s",
            embedded::TESLA_C2075_ALEXNET_FC_LAYERS_PER_S
        ),
    ]);
    t.row(&[
        "AlexNet FC6 layers/s (dense)".into(),
        format!("{:.0}", r.alexnet_fc_dense_layers_per_s),
        "—".into(),
        "—".into(),
    ]);
    t.print();

    let mut s = Table::new(
        "Circulant-over-dense FC speedup vs layer size (the paper's 'benefits grow with model size')",
        &["n (square layer)", "speedup"],
    );
    for (n, speedup) in &r.size_sweep {
        s.row(&[format!("{n}"), format!("{speedup:.1}×")]);
    }
    s.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circulant_fc6_beats_dense_substantially() {
        let r = run(true);
        assert!(
            r.alexnet_fc_circ_layers_per_s > 3.0 * r.alexnet_fc_dense_layers_per_s,
            "circ {} vs dense {}",
            r.alexnet_fc_circ_layers_per_s,
            r.alexnet_fc_dense_layers_per_s
        );
    }

    #[test]
    fn speedup_grows_with_layer_size() {
        let r = run(true);
        assert!(r.size_sweep.len() >= 2);
        let first = r.size_sweep.first().unwrap().1;
        let last = r.size_sweep.last().unwrap().1;
        assert!(last > first, "speedup should grow: {first} → {last}");
    }
}
