//! Fig. 7 — storage savings and test accuracy.
//!
//! * (a) FC-layer storage reduction per benchmark (block-circulant + 16-bit
//!   vs dense fp32) and whole-model reduction with FC-only compression;
//! * (b) test accuracy of the dense baseline vs the block-circulant model,
//!   trained identically on the synthetic stand-in datasets;
//! * (c) whole-model storage reduction with FC **and** CONV compression,
//!   against the pruning state of the art (12× LeNet-5 / 9× AlexNet
//!   parameter reduction, refs [34, 35]).

use circnn_models::zoo::Benchmark;
use circnn_nn::trainer::{evaluate_accuracy, train_classifier, TrainConfig};
use circnn_nn::{Adam, Sequential};
use circnn_tensor::init::seeded_rng;

use crate::table::{pct, times, Table};

/// One benchmark row of the Fig. 7 reproduction.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// FC-layer storage reduction (Fig. 7a bar).
    pub fc_storage_ratio: f64,
    /// Whole-model storage reduction, FC-only compression (Fig. 7a text).
    pub whole_fc_only: f64,
    /// Whole-model storage reduction, FC + CONV compression (Fig. 7c bar).
    pub whole_full: f64,
    /// Whole-model parameter reduction, FC + CONV (vs pruning's 12×/9×).
    pub param_ratio_full: f64,
    /// Dense-baseline test accuracy (Fig. 7b blue bar).
    pub acc_dense: f32,
    /// Block-circulant test accuracy (Fig. 7b red bar).
    pub acc_circulant: f32,
}

/// Per-benchmark training sizes `(train, test, epochs, lr)`.
fn training_plan(benchmark: Benchmark, quick: bool) -> (usize, usize, usize, f32) {
    // Epoch counts sized so the *circulant* variants converge: the
    // compressed parameterization needs a few more passes than dense to
    // reach its plateau (the paper trains to convergence on both sides).
    let (train, test, epochs, lr) = match benchmark {
        Benchmark::Mnist => (800, 200, 5, 0.002),
        Benchmark::Cifar10 => (600, 200, 12, 0.002),
        Benchmark::Svhn => (600, 200, 6, 0.002),
        Benchmark::ImageNet => (400, 120, 10, 0.002),
    };
    if quick {
        (train / 8, test / 4, 2, lr)
    } else {
        (train, test, epochs, lr)
    }
}

fn train_and_test(
    mut net: Sequential,
    benchmark: Benchmark,
    train_n: usize,
    test_n: usize,
    epochs: usize,
    lr: f32,
) -> f32 {
    // One generation pass, split into train/held-out — the class
    // prototypes are seed-derived, so train and test MUST share the seed.
    let full = benchmark.dataset(train_n + test_n, 11);
    let (train, test) = full.split_at(train_n);
    let mut opt = Adam::new(lr);
    let cfg = TrainConfig {
        epochs,
        batch_size: 16,
        shuffle_seed: 7,
        ..Default::default()
    };
    let _ = train_classifier(&mut net, &mut opt, &train.images, &train.labels, &cfg);
    evaluate_accuracy(&mut net, &test.images, &test.labels)
}

/// Runs the full Fig.-7 experiment.
pub fn run(quick: bool) -> Vec<Fig7Row> {
    Benchmark::all()
        .into_iter()
        .map(|b| {
            let fc_only = b.storage_fc_only();
            let full = b.storage_full();
            let (train_n, test_n, epochs, lr) = training_plan(b, quick);
            let mut rng = seeded_rng(42);
            let dense = b.build_dense(&mut rng);
            let mut rng = seeded_rng(42);
            let circ = b.build_circulant(&mut rng);
            let acc_dense = train_and_test(dense, b, train_n, test_n, epochs, lr);
            let acc_circulant = train_and_test(circ, b, train_n, test_n, epochs, lr);
            Fig7Row {
                benchmark: b.name(),
                fc_storage_ratio: fc_only.fc_storage_ratio(),
                whole_fc_only: fc_only.storage_ratio(),
                whole_full: full.storage_ratio(),
                param_ratio_full: full.param_ratio(),
                acc_dense,
                acc_circulant,
            }
        })
        .collect()
}

/// Storage-only variant (no training): the Fig. 7a/7c bars are pure shape
/// arithmetic and include the STL-10 row the accuracy experiment skips.
pub fn storage_rows() -> Vec<(String, f64, f64, f64)> {
    let mut rows: Vec<(String, f64, f64, f64)> = Benchmark::all()
        .into_iter()
        .map(|b| {
            let fc = b.storage_fc_only();
            let full = b.storage_full();
            (
                b.name().to_string(),
                fc.fc_storage_ratio(),
                fc.storage_ratio(),
                full.storage_ratio(),
            )
        })
        .collect();
    let stl = circnn_models::storage::stl_storage_fc_only();
    rows.insert(
        3,
        (
            "STL-10".into(),
            stl.fc_storage_ratio(),
            stl.storage_ratio(),
            f64::NAN,
        ),
    );
    rows
}

/// Prints the Fig.-7 tables.
pub fn print(rows: &[Fig7Row]) {
    let mut a = Table::new(
        "Fig. 7(a): storage saving, block-circulant FC (+16-bit quant) vs dense fp32",
        &["benchmark", "FC-layer saving", "whole model (FC-only)"],
    );
    for (name, fc, whole, _) in storage_rows() {
        a.row(&[name, times(fc), times(whole)]);
    }
    a.print();

    let mut b = Table::new(
        "Fig. 7(b): test accuracy on synthetic stand-in datasets",
        &["benchmark", "dense baseline", "block-circulant", "delta"],
    );
    for r in rows {
        b.row(&[
            r.benchmark.to_string(),
            pct(f64::from(r.acc_dense)),
            pct(f64::from(r.acc_circulant)),
            format!(
                "{:+.1} pts",
                100.0 * f64::from(r.acc_circulant - r.acc_dense)
            ),
        ]);
    }
    b.print();

    let mut c = Table::new(
        "Fig. 7(c): whole-model saving with FC+CONV compression (paper: beats pruning's 12×/9× params)",
        &["benchmark", "storage saving", "parameter reduction"],
    );
    for r in rows {
        c.row(&[
            r.benchmark.to_string(),
            times(r.whole_full),
            times(r.param_ratio_full),
        ]);
    }
    c.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_rows_cover_all_five_benchmarks() {
        let rows = storage_rows();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|r| r.0 == "STL-10"));
        // Every FC saving is at least an order of magnitude.
        assert!(rows.iter().all(|r| r.1 > 10.0));
    }

    #[test]
    fn alexnet_fc_saving_is_in_paper_band() {
        let rows = storage_rows();
        let alex = rows.iter().find(|r| r.0 == "ImageNet").unwrap();
        assert!(alex.1 > 400.0 && alex.1 < 4000.0, "fc saving {}", alex.1);
        assert!(alex.2 > 20.0 && alex.2 < 60.0, "whole-model {}", alex.2);
    }
}
