//! §3.4 — training acceleration for DBN-scale FC stacks.
//!
//! The paper observes "a 5× to 9× acceleration in training … for DBNs"
//! (noting the gap to the full model-reduction ratio is the FFT's constant
//! factor). The measurement here is direct: wall-clock per training step —
//! an RBM CD-1 update, and an FC forward+backward — with dense vs
//! block-circulant weights of the same logical size, on the host CPU.

use std::time::Instant;

use circnn_core::{BlockCirculantMatrix, CirculantLinear};
use circnn_nn::rbm::Rbm;
use circnn_nn::{DenseOp, Layer, Linear};
use circnn_tensor::{init::seeded_rng, Tensor};

use crate::table::Table;

/// One size point of the training-speedup measurement.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupPoint {
    /// Layer width `n` (square layers).
    pub n: usize,
    /// Circulant block size.
    pub block: usize,
    /// RBM CD-1 step speedup (dense time / circulant time).
    pub rbm_speedup: f64,
    /// FC forward+backward speedup.
    pub fc_speedup: f64,
}

fn time_s<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() / reps as f64
}

/// Measures RBM and FC training-step speedups at the given widths.
pub fn run(quick: bool) -> Vec<SpeedupPoint> {
    let sizes: &[(usize, usize)] = if quick {
        &[(512, 128)]
    } else {
        &[(1024, 128), (2048, 256), (4096, 512)]
    };
    let mut rng = seeded_rng(5);
    sizes
        .iter()
        .map(|&(n, block)| {
            let reps = if quick {
                2
            } else {
                (8_000_000 / (n * n)).clamp(2, 50)
            };
            let v0: Vec<f32> = (0..n).map(|i| f32::from(i % 2 == 0)).collect();
            // RBM: dense vs circulant weight operator.
            let mut rbm_dense = Rbm::new(DenseOp::zeros(n, n));
            let mut rng_a = seeded_rng(9);
            let td = time_s(reps, || {
                let _ = rbm_dense.cd1_step(&v0, 0.01, &mut rng_a);
            });
            let circ_op = BlockCirculantMatrix::random(&mut rng, n, n, block).expect("valid");
            let mut rbm_circ = Rbm::new(circ_op);
            let mut rng_b = seeded_rng(9);
            let tc = time_s(reps, || {
                let _ = rbm_circ.cd1_step(&v0, 0.01, &mut rng_b);
            });
            // FC training step: forward + backward.
            let x = Tensor::from_vec(v0.clone(), &[n]);
            let g = Tensor::ones(&[n]);
            let mut fc_dense = Linear::new(&mut rng, n, n);
            let tfd = time_s(reps, || {
                let _ = fc_dense.forward(&x);
                let _ = fc_dense.backward(&g);
            });
            let mut fc_circ = CirculantLinear::new(&mut rng, n, n, block).expect("valid");
            let tfc = time_s(reps, || {
                let _ = fc_circ.forward(&x);
                let _ = fc_circ.backward(&g);
            });
            SpeedupPoint {
                n,
                block,
                rbm_speedup: td / tc,
                fc_speedup: tfd / tfc,
            }
        })
        .collect()
}

/// Prints the speedup table.
pub fn print(points: &[SpeedupPoint]) {
    let mut t = Table::new(
        "Sec. 3.4: training-step speedup, block-circulant vs dense (paper: 5-9x for DBNs)",
        &["n", "block k", "RBM CD-1 speedup", "FC fwd+bwd speedup"],
    );
    for p in points {
        t.row(&[
            format!("{}", p.n),
            format!("{}", p.block),
            format!("{:.1}×", p.rbm_speedup),
            format!("{:.1}×", p.fc_speedup),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circulant_training_step_is_faster_at_scale() {
        let points = run(true);
        let p = points[0];
        assert!(p.rbm_speedup > 1.5, "rbm speedup {}", p.rbm_speedup);
        assert!(p.fc_speedup > 1.5, "fc speedup {}", p.fc_speedup);
    }
}
