//! Wire-serving trajectory: batched network serving versus
//! one-request-per-connection dispatch, across concurrent connections and
//! tenant counts.
//!
//! Each point starts a real [`circnn_wire::WireServer`] over a
//! [`circnn_wire::ModelRegistry`] holding `tenants` independent 512×512
//! block-circulant operators, floods it from `clients` TCP connections
//! (each a closed loop keeping `WINDOW` pipelined requests in flight,
//! spread round-robin over the tenants), and measures end-to-end request
//! throughput twice:
//!
//! * **batched** — tenant policy `max_batch = 32`: the shared worker pool
//!   coalesces traffic from all connections into `[B, n]` slabs;
//! * **unbatched** — identical sockets, frames, queues and workers, but
//!   `max_batch = 1`: every request is dispatched alone, isolating the
//!   batching win from the wire overhead itself.
//!
//! The `wire` binary wraps [`run`] and writes `BENCH_wire.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use circnn_core::BlockCirculantMatrix;
use circnn_serve::{ServeStats, TenantConfig};
use circnn_tensor::init::seeded_rng;
use circnn_wire::{ModelRegistry, WireClient, WireConfig, WireServer};

/// Pipelined requests kept in flight per connection (the wire replies in
/// arrival order per connection, so no request ids are needed).
const WINDOW: usize = 8;

/// One measured offered-load point.
#[derive(Debug, Clone)]
pub struct WirePoint {
    /// Registered models (tenants), each its own queue and stats.
    pub tenants: usize,
    /// Concurrent TCP client connections.
    pub clients: usize,
    /// Requests issued per connection.
    pub requests_per_client: usize,
    /// End-to-end requests/second with dynamic batching (`max_batch = 32`).
    pub batched_rps: f64,
    /// Requests/second with one-request-per-connection dispatch
    /// (`max_batch = 1`).
    pub unbatched_rps: f64,
    /// Mean batch occupancy achieved in the batched run (all tenants).
    pub occupancy: f64,
    /// Mean request latency in the batched run, microseconds (server
    /// side: enqueue → completion).
    pub batched_latency_us: f64,
    /// Mean request latency in the unbatched run, microseconds.
    pub unbatched_latency_us: f64,
}

impl WirePoint {
    /// Throughput gain of batched wire serving over per-request dispatch.
    pub fn speedup(&self) -> f64 {
        self.batched_rps / self.unbatched_rps
    }
}

/// Sums per-tenant stats into `(requests, batches, latency_sum_us)`.
fn totals(stats: &[ServeStats]) -> (u64, u64, f64) {
    let requests = stats.iter().map(|s| s.requests).sum();
    let batches = stats.iter().map(|s| s.batches).sum();
    let latency_sum = stats
        .iter()
        .map(|s| s.mean_latency_us * s.requests as f64)
        .sum();
    (requests, batches, latency_sum)
}

/// Floods the server from `clients` connections × `requests` each and
/// returns the wall-clock seconds.
fn flood(addr: std::net::SocketAddr, tenants: usize, clients: usize, requests: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let model = format!("m{}", c % tenants);
                let mut wire = WireClient::connect(addr).expect("connect");
                let mut rng = seeded_rng(0xA11CE + c as u64);
                let mut in_flight = 0usize;
                for _ in 0..requests {
                    let x = circnn_tensor::init::uniform(&mut rng, &[512], -1.0, 1.0);
                    wire.send_infer(&model, x.data(), None).expect("send");
                    in_flight += 1;
                    if in_flight >= WINDOW {
                        wire.recv_infer().expect("recv");
                        in_flight -= 1;
                    }
                }
                for _ in 0..in_flight {
                    wire.recv_infer().expect("recv");
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Measures one `(tenants, clients)` point in one batching mode.
fn run_mode(
    tenants: usize,
    clients: usize,
    requests_per_client: usize,
    workers: usize,
    max_batch: usize,
) -> (f64, f64, f64) {
    let registry = Arc::new(ModelRegistry::new(workers).expect("valid worker count"));
    let cfg = TenantConfig {
        max_batch,
        max_wait: if max_batch > 1 {
            Duration::from_micros(300)
        } else {
            Duration::ZERO
        },
        queue_capacity: 256,
        ..Default::default()
    };
    for t in 0..tenants {
        let w = BlockCirculantMatrix::random(&mut seeded_rng(41 + t as u64), 512, 512, 16)
            .expect("valid shape");
        registry
            .add_model(&format!("m{t}"), w, cfg.clone())
            .expect("fresh name");
    }
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr();
    // Warm-up sizes every worker scratch and client buffer.
    flood(addr, tenants, clients, 4.max(requests_per_client / 10));
    let names: Vec<String> = (0..tenants).map(|t| format!("m{t}")).collect();
    let before: Vec<ServeStats> = names
        .iter()
        .map(|n| registry.stats(n).expect("registered"))
        .collect();
    let secs = flood(addr, tenants, clients, requests_per_client);
    let after: Vec<ServeStats> = names
        .iter()
        .map(|n| registry.stats(n).expect("registered"))
        .collect();
    server.shutdown();
    let (req_b, bat_b, lat_b) = totals(&before);
    let (req_a, bat_a, lat_a) = totals(&after);
    let requests = (req_a - req_b).max(1) as f64;
    let rps = (clients * requests_per_client) as f64 / secs;
    let occupancy = requests / (bat_a - bat_b).max(1) as f64;
    let latency_us = (lat_a - lat_b) / requests;
    (rps, occupancy, latency_us)
}

/// Measures one offered-load point in both modes.
pub fn measure(
    tenants: usize,
    clients: usize,
    requests_per_client: usize,
    workers: usize,
) -> WirePoint {
    let (batched_rps, occupancy, batched_latency_us) =
        run_mode(tenants, clients, requests_per_client, workers, 32);
    let (unbatched_rps, _, unbatched_latency_us) =
        run_mode(tenants, clients, requests_per_client, workers, 1);
    WirePoint {
        tenants,
        clients,
        requests_per_client,
        batched_rps,
        unbatched_rps,
        occupancy,
        batched_latency_us,
        unbatched_latency_us,
    }
}

/// The measured grid: connection counts around and past the slab width,
/// at one and two tenants. Every grid includes the ≥ 8-connection point
/// the acceptance criteria pin.
pub fn grid(quick: bool) -> Vec<(usize, usize, usize)> {
    // (tenants, clients, requests per client)
    if quick {
        vec![(1, 8, 48), (2, 8, 48)]
    } else {
        vec![
            (1, 2, 256),
            (1, 8, 192),
            (1, 16, 128),
            (2, 8, 192),
            (2, 16, 128),
        ]
    }
}

/// Runs the whole trajectory on the headline 512×512, k = 16 operator.
pub fn run(quick: bool) -> Vec<WirePoint> {
    let workers = if circnn_core::default_batch_threads() > 1 {
        2
    } else {
        1
    };
    grid(quick)
        .into_iter()
        .map(|(t, c, r)| measure(t, c, r, workers))
        .collect()
}

/// Renders the points as the `BENCH_wire.json` trajectory document.
pub fn to_json(points: &[WirePoint]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"wire_throughput\",\n  \"unit\": \"requests_per_second\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tenants\": {}, \"clients\": {}, \"requests_per_client\": {}, \
             \"window\": {WINDOW}, \"batched_rps\": {:.0}, \"unbatched_rps\": {:.0}, \
             \"speedup\": {:.2}, \"occupancy\": {:.1}, \
             \"batched_latency_us\": {:.0}, \"unbatched_latency_us\": {:.0}}}{}\n",
            p.tenants,
            p.clients,
            p.requests_per_client,
            p.batched_rps,
            p.unbatched_rps,
            p.speedup(),
            p.occupancy,
            p.batched_latency_us,
            p.unbatched_latency_us,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints a human-readable table.
pub fn print(points: &[WirePoint]) {
    println!(
        "{:>7} {:>7} {:>8} | {:>12} {:>12} {:>7} | {:>9} {:>12} {:>12}",
        "tenants",
        "conns",
        "reqs",
        "batched",
        "unbatched",
        "spdup",
        "occup",
        "lat(batch)",
        "lat(single)"
    );
    for p in points {
        println!(
            "{:>7} {:>7} {:>8} | {:>8.0} r/s {:>8.0} r/s {:>6.2}x | {:>9.1} {:>9.0} µs {:>9.0} µs",
            p.tenants,
            p.clients,
            p.clients * p.requests_per_client,
            p.batched_rps,
            p.unbatched_rps,
            p.speedup(),
            p.occupancy,
            p.batched_latency_us,
            p.unbatched_latency_us,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes_a_small_point() {
        let p = measure(2, 4, 12, 1);
        assert!(p.batched_rps > 0.0 && p.unbatched_rps > 0.0);
        let json = to_json(std::slice::from_ref(&p));
        assert!(json.contains("\"tenants\": 2"));
        assert!(json.contains("speedup"));
    }
}
