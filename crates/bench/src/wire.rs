//! Wire-serving trajectory: batched network serving versus
//! one-request-per-connection dispatch, across concurrent connections and
//! tenant counts.
//!
//! Each point starts a real [`circnn_wire::WireServer`] over a
//! [`circnn_wire::ModelRegistry`] holding `tenants` independent 512×512
//! block-circulant operators, floods it from `clients` TCP connections
//! (each a closed loop keeping `WINDOW` pipelined requests in flight,
//! spread round-robin over the tenants), and measures end-to-end request
//! throughput twice:
//!
//! * **batched** — tenant policy `max_batch = 32`: the shared worker pool
//!   coalesces traffic from all connections into `[B, n]` slabs;
//! * **unbatched** — identical sockets, frames, queues and workers, but
//!   `max_batch = 1`: every request is dispatched alone, isolating the
//!   batching win from the wire overhead itself.
//!
//! A second axis measures the **front end** itself: the connection sweep
//! ([`run_sweep`]) serves an identical tenant (same batching config, same
//! worker pool) behind the thread-per-connection [`WireServer`] and the
//! readiness-loop [`circnn_wire::EventServer`], from 16 up to 4096
//! concurrent connections, reporting throughput and client-observed p99
//! latency for each. The measured window deliberately includes
//! connection setup — at 10k-connection scale, accepting is serving.
//!
//! The `wire` binary wraps [`run`] + [`run_sweep`] and writes
//! `BENCH_wire.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use circnn_core::BlockCirculantMatrix;
use circnn_serve::{ServeStats, TenantConfig};
use circnn_tensor::init::seeded_rng;
use circnn_wire::{
    ClientConfig, EventConfig, EventServer, ModelRegistry, WireClient, WireConfig, WireServer,
};

/// Pipelined requests kept in flight per connection (the wire replies in
/// arrival order per connection, so no request ids are needed).
const WINDOW: usize = 8;

/// One measured offered-load point.
#[derive(Debug, Clone)]
pub struct WirePoint {
    /// Registered models (tenants), each its own queue and stats.
    pub tenants: usize,
    /// Concurrent TCP client connections.
    pub clients: usize,
    /// Requests issued per connection.
    pub requests_per_client: usize,
    /// End-to-end requests/second with dynamic batching (`max_batch = 32`).
    pub batched_rps: f64,
    /// Requests/second with one-request-per-connection dispatch
    /// (`max_batch = 1`).
    pub unbatched_rps: f64,
    /// Mean batch occupancy achieved in the batched run (all tenants).
    pub occupancy: f64,
    /// Mean request latency in the batched run, microseconds (server
    /// side: enqueue → completion).
    pub batched_latency_us: f64,
    /// Mean request latency in the unbatched run, microseconds.
    pub unbatched_latency_us: f64,
}

impl WirePoint {
    /// Throughput gain of batched wire serving over per-request dispatch.
    pub fn speedup(&self) -> f64 {
        self.batched_rps / self.unbatched_rps
    }
}

/// Sums per-tenant stats into `(requests, batches, latency_sum_us)`.
fn totals(stats: &[ServeStats]) -> (u64, u64, f64) {
    let requests = stats.iter().map(|s| s.requests).sum();
    let batches = stats.iter().map(|s| s.batches).sum();
    let latency_sum = stats
        .iter()
        .map(|s| s.mean_latency_us * s.requests as f64)
        .sum();
    (requests, batches, latency_sum)
}

/// Floods the server from `clients` connections × `requests` each and
/// returns the wall-clock seconds.
fn flood(addr: std::net::SocketAddr, tenants: usize, clients: usize, requests: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let model = format!("m{}", c % tenants);
                let mut wire = WireClient::connect(addr).expect("connect");
                let mut rng = seeded_rng(0xA11CE + c as u64);
                let mut in_flight = 0usize;
                for _ in 0..requests {
                    let x = circnn_tensor::init::uniform(&mut rng, &[512], -1.0, 1.0);
                    wire.send_infer(&model, x.data(), None).expect("send");
                    in_flight += 1;
                    if in_flight >= WINDOW {
                        wire.recv_infer().expect("recv");
                        in_flight -= 1;
                    }
                }
                for _ in 0..in_flight {
                    wire.recv_infer().expect("recv");
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Measures one `(tenants, clients)` point in one batching mode.
fn run_mode(
    tenants: usize,
    clients: usize,
    requests_per_client: usize,
    workers: usize,
    max_batch: usize,
) -> (f64, f64, f64) {
    let registry = Arc::new(ModelRegistry::new(workers).expect("valid worker count"));
    let cfg = TenantConfig {
        max_batch,
        max_wait: if max_batch > 1 {
            Duration::from_micros(300)
        } else {
            Duration::ZERO
        },
        queue_capacity: 256,
        ..Default::default()
    };
    for t in 0..tenants {
        let w = BlockCirculantMatrix::random(&mut seeded_rng(41 + t as u64), 512, 512, 16)
            .expect("valid shape");
        registry
            .add_model(&format!("m{t}"), w, cfg.clone())
            .expect("fresh name");
    }
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr();
    // Warm-up sizes every worker scratch and client buffer.
    flood(addr, tenants, clients, 4.max(requests_per_client / 10));
    let names: Vec<String> = (0..tenants).map(|t| format!("m{t}")).collect();
    let before: Vec<ServeStats> = names
        .iter()
        .map(|n| registry.stats(n).expect("registered"))
        .collect();
    let secs = flood(addr, tenants, clients, requests_per_client);
    let after: Vec<ServeStats> = names
        .iter()
        .map(|n| registry.stats(n).expect("registered"))
        .collect();
    server.shutdown();
    let (req_b, bat_b, lat_b) = totals(&before);
    let (req_a, bat_a, lat_a) = totals(&after);
    let requests = (req_a - req_b).max(1) as f64;
    let rps = (clients * requests_per_client) as f64 / secs;
    let occupancy = requests / (bat_a - bat_b).max(1) as f64;
    let latency_us = (lat_a - lat_b) / requests;
    (rps, occupancy, latency_us)
}

/// Measures one offered-load point in both modes.
pub fn measure(
    tenants: usize,
    clients: usize,
    requests_per_client: usize,
    workers: usize,
) -> WirePoint {
    let (batched_rps, occupancy, batched_latency_us) =
        run_mode(tenants, clients, requests_per_client, workers, 32);
    let (unbatched_rps, _, unbatched_latency_us) =
        run_mode(tenants, clients, requests_per_client, workers, 1);
    WirePoint {
        tenants,
        clients,
        requests_per_client,
        batched_rps,
        unbatched_rps,
        occupancy,
        batched_latency_us,
        unbatched_latency_us,
    }
}

/// The measured grid: connection counts around and past the slab width,
/// at one and two tenants. Every grid includes the ≥ 8-connection point
/// the acceptance criteria pin.
pub fn grid(quick: bool) -> Vec<(usize, usize, usize)> {
    // (tenants, clients, requests per client)
    if quick {
        vec![(1, 8, 48), (2, 8, 48)]
    } else {
        vec![
            (1, 2, 256),
            (1, 8, 192),
            (1, 16, 128),
            (2, 8, 192),
            (2, 16, 128),
        ]
    }
}

/// Runs the whole trajectory on the headline 512×512, k = 16 operator.
pub fn run(quick: bool) -> Vec<WirePoint> {
    let workers = if circnn_core::default_batch_threads() > 1 {
        2
    } else {
        1
    };
    grid(quick)
        .into_iter()
        .map(|(t, c, r)| measure(t, c, r, workers))
        .collect()
}

/// One measured connection-sweep point: the same tenant and batching
/// config behind both front ends.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Concurrent TCP connections held open for the whole window.
    pub conns: usize,
    /// Closed-loop requests issued per connection.
    pub requests_per_conn: usize,
    /// Requests/second through the readiness-loop front end.
    pub event_rps: f64,
    /// Requests/second through the thread-per-connection front end.
    pub threaded_rps: f64,
    /// Client-observed p99 request latency on the event server, µs.
    pub event_p99_us: f64,
    /// Client-observed p99 request latency on the threaded server, µs.
    pub threaded_p99_us: f64,
}

impl SweepPoint {
    /// Throughput of the event front end relative to thread-per-conn.
    pub fn event_gain(&self) -> f64 {
        self.event_rps / self.threaded_rps
    }
}

/// Which front end a sweep run binds over the shared registry.
enum FrontEnd {
    Threaded(WireServer),
    Event(EventServer),
}

impl FrontEnd {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            FrontEnd::Threaded(s) => s.local_addr(),
            FrontEnd::Event(s) => s.local_addr(),
        }
    }
    fn shutdown(self) {
        match self {
            FrontEnd::Threaded(s) => s.shutdown(),
            FrontEnd::Event(s) => s.shutdown(),
        }
    }
}

/// The sweep tenant: a small 64×64 operator, so the measurement weighs
/// the front end (sockets, threads, readiness) rather than the matvec.
fn sweep_registry() -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new(1).expect("valid worker count"));
    let w = BlockCirculantMatrix::random(&mut seeded_rng(97), 64, 64, 16).expect("valid shape");
    registry
        .add_model(
            "m0",
            w,
            TenantConfig {
                max_batch: 32,
                max_wait: Duration::from_micros(300),
                queue_capacity: 256,
                ..Default::default()
            },
        )
        .expect("fresh name");
    registry
}

fn sweep_client_config() -> ClientConfig {
    ClientConfig {
        // At 4096 concurrent connects the accept side may lag (that lag
        // is part of what the sweep measures) — be patient, don't flake.
        connect_timeout: Some(Duration::from_secs(30)),
        read_timeout: Some(Duration::from_secs(60)),
        write_timeout: Some(Duration::from_secs(60)),
        retries: 0,
        ..Default::default()
    }
}

/// Drives `conns` closed-loop connections (one request in flight each)
/// from a fixed pool of client threads and returns `(secs, p99_us)`.
/// The window opens before the first connect: connection setup cost is
/// front-end work and is charged to the front end.
fn sweep_flood(addr: std::net::SocketAddr, conns: usize, requests_per_conn: usize) -> (f64, f64) {
    const CLIENT_THREADS: usize = 8;
    let per_thread = conns.div_ceil(CLIENT_THREADS);
    let t0 = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENT_THREADS)
            .map(|ct| {
                s.spawn(move || {
                    let own = per_thread.min(conns.saturating_sub(ct * per_thread));
                    let mut clients: Vec<WireClient> = (0..own)
                        .map(|_| {
                            WireClient::connect_with(addr, sweep_client_config())
                                .expect("sweep connect")
                        })
                        .collect();
                    let mut rng = seeded_rng(0xFEED + ct as u64);
                    let mut lats = Vec::with_capacity(own * requests_per_conn);
                    let mut stamps = vec![t0; own];
                    for _ in 0..requests_per_conn {
                        for (i, wire) in clients.iter_mut().enumerate() {
                            let x = circnn_tensor::init::uniform(&mut rng, &[64], -1.0, 1.0);
                            stamps[i] = Instant::now();
                            wire.send_infer("m0", x.data(), None).expect("sweep send");
                        }
                        for (i, wire) in clients.iter_mut().enumerate() {
                            wire.recv_infer().expect("sweep recv");
                            lats.push(stamps[i].elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep client thread"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let p99 =
        latencies_us[((latencies_us.len() as f64 * 0.99) as usize).min(latencies_us.len() - 1)];
    (secs, p99)
}

/// Measures one connection count through one front end.
fn sweep_mode(event: bool, conns: usize, requests_per_conn: usize) -> (f64, f64) {
    let registry = sweep_registry();
    let front = if event {
        FrontEnd::Event(
            EventServer::bind(
                "127.0.0.1:0",
                Arc::clone(&registry),
                EventConfig {
                    max_connections: conns + 16,
                    ..Default::default()
                },
            )
            .expect("bind event server"),
        )
    } else {
        FrontEnd::Threaded(
            WireServer::bind(
                "127.0.0.1:0",
                Arc::clone(&registry),
                WireConfig {
                    max_connections: conns + 16,
                    ..Default::default()
                },
            )
            .expect("bind threaded server"),
        )
    };
    let addr = front.addr();
    // Warm-up outside the window: worker scratch, client buffers, pools.
    sweep_flood(addr, 8.min(conns), 16);
    let (secs, p99) = sweep_flood(addr, conns, requests_per_conn);
    front.shutdown();
    let rps = (conns * requests_per_conn) as f64 / secs;
    (rps, p99)
}

/// Measures both front ends at one connection count.
pub fn measure_sweep(conns: usize, requests_per_conn: usize) -> SweepPoint {
    let (event_rps, event_p99_us) = sweep_mode(true, conns, requests_per_conn);
    let (threaded_rps, threaded_p99_us) = sweep_mode(false, conns, requests_per_conn);
    SweepPoint {
        conns,
        requests_per_conn,
        event_rps,
        threaded_rps,
        event_p99_us,
        threaded_p99_us,
    }
}

/// The sweep grid: connection counts doubling past where thread-per-conn
/// degrades. The request total stays roughly constant so every point
/// finishes in comparable wall time.
pub fn sweep_grid(quick: bool) -> Vec<(usize, usize)> {
    let conns: &[usize] = if quick {
        &[16, 256]
    } else {
        &[16, 256, 1024, 4096]
    };
    let budget = if quick { 2048 } else { 8192 };
    conns.iter().map(|&c| (c, (budget / c).max(2))).collect()
}

/// Runs the connection sweep.
pub fn run_sweep(quick: bool) -> Vec<SweepPoint> {
    sweep_grid(quick)
        .into_iter()
        .map(|(c, r)| measure_sweep(c, r))
        .collect()
}

/// Renders the batching points plus the connection sweep as the
/// `BENCH_wire.json` trajectory document.
pub fn to_json(points: &[WirePoint], sweep: &[SweepPoint]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"wire_throughput\",\n  \"unit\": \"requests_per_second\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tenants\": {}, \"clients\": {}, \"requests_per_client\": {}, \
             \"window\": {WINDOW}, \"batched_rps\": {:.0}, \"unbatched_rps\": {:.0}, \
             \"speedup\": {:.2}, \"occupancy\": {:.1}, \
             \"batched_latency_us\": {:.0}, \"unbatched_latency_us\": {:.0}}}{}\n",
            p.tenants,
            p.clients,
            p.requests_per_client,
            p.batched_rps,
            p.unbatched_rps,
            p.speedup(),
            p.occupancy,
            p.batched_latency_us,
            p.unbatched_latency_us,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"conns\": {}, \"requests_per_conn\": {}, \
             \"event_rps\": {:.0}, \"threaded_rps\": {:.0}, \
             \"event_vs_threaded\": {:.2}, \
             \"event_p99_us\": {:.0}, \"threaded_p99_us\": {:.0}}}{}\n",
            p.conns,
            p.requests_per_conn,
            p.event_rps,
            p.threaded_rps,
            p.event_gain(),
            p.event_p99_us,
            p.threaded_p99_us,
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the connection sweep as a human-readable table.
pub fn print_sweep(sweep: &[SweepPoint]) {
    println!(
        "\n{:>7} {:>8} | {:>12} {:>12} {:>7} | {:>12} {:>12}",
        "conns", "reqs", "event", "threaded", "gain", "p99(event)", "p99(thread)"
    );
    for p in sweep {
        println!(
            "{:>7} {:>8} | {:>8.0} r/s {:>8.0} r/s {:>6.2}x | {:>9.0} µs {:>9.0} µs",
            p.conns,
            p.conns * p.requests_per_conn,
            p.event_rps,
            p.threaded_rps,
            p.event_gain(),
            p.event_p99_us,
            p.threaded_p99_us,
        );
    }
}

/// Prints a human-readable table.
pub fn print(points: &[WirePoint]) {
    println!(
        "{:>7} {:>7} {:>8} | {:>12} {:>12} {:>7} | {:>9} {:>12} {:>12}",
        "tenants",
        "conns",
        "reqs",
        "batched",
        "unbatched",
        "spdup",
        "occup",
        "lat(batch)",
        "lat(single)"
    );
    for p in points {
        println!(
            "{:>7} {:>7} {:>8} | {:>8.0} r/s {:>8.0} r/s {:>6.2}x | {:>9.1} {:>9.0} µs {:>9.0} µs",
            p.tenants,
            p.clients,
            p.clients * p.requests_per_client,
            p.batched_rps,
            p.unbatched_rps,
            p.speedup(),
            p.occupancy,
            p.batched_latency_us,
            p.unbatched_latency_us,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes_a_small_point() {
        let p = measure(2, 4, 12, 1);
        assert!(p.batched_rps > 0.0 && p.unbatched_rps > 0.0);
        let s = measure_sweep(8, 4);
        assert!(s.event_rps > 0.0 && s.threaded_rps > 0.0);
        assert!(s.event_p99_us > 0.0 && s.threaded_p99_us > 0.0);
        let json = to_json(std::slice::from_ref(&p), std::slice::from_ref(&s));
        assert!(json.contains("\"tenants\": 2"));
        assert!(json.contains("speedup"));
        assert!(json.contains("\"sweep\""));
        assert!(json.contains("event_vs_threaded"));
    }
}
