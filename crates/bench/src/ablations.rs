//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. frequency-domain accumulation (one IFFT per output block-row) vs the
//!    literal per-block IFFT of Algorithm 1 as printed;
//! 2. real-FFT Hermitian symmetry on/off (Fig. 10's "red circles");
//! 3. depth `d` sweep on the basic computing block (§4.3);
//! 4. block-size sweep: compression / accuracy / runtime trade-off
//!    (the paper's "fine-grained tradeoff" of §2.4);
//! 5. spectrum caching (store `FFT(w)`) vs recomputing per call (§4.2);
//! 6. quantization bit-width sweep (16-bit fine, 4-bit broken, §5.2).

use std::time::Instant;

use circnn_core::BlockCirculantMatrix;
use circnn_fft::ops;
use circnn_hw::bcb::BasicComputingBlock;
use circnn_models::zoo::Benchmark;
use circnn_nn::trainer::{evaluate_accuracy, train_classifier, TrainConfig};
use circnn_nn::{Adam, Layer as _};
use circnn_quant::fake_quantize_layer;
use circnn_tensor::init::seeded_rng;

use crate::table::{pct, Table};

fn time_s<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() / reps as f64
}

/// Ablation 1+5: matvec variants on a 4096→4096, k = 256 layer.
pub fn matvec_variants(quick: bool) -> Vec<(String, f64)> {
    let n = if quick { 1024 } else { 4096 };
    let k = if quick { 128 } else { 256 };
    let mut rng = seeded_rng(1);
    let w = BlockCirculantMatrix::random(&mut rng, n, n, k).expect("valid");
    let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.001).sin()).collect();
    let reps = if quick { 3 } else { 20 };
    let accum = time_s(reps, || {
        let _ = w.matvec(&x).expect("dims fixed");
    });
    let naive = time_s(reps, || {
        let _ = w.matvec_naive(&x).expect("dims fixed");
    });
    // Spectrum caching ablation: recompute FFT(w) on every call by
    // rebuilding the operator (what a cache-less implementation pays).
    let weights = w.weights().to_vec();
    let recompute = time_s(reps, || {
        let fresh = BlockCirculantMatrix::from_weights(n, n, k, &weights).expect("valid");
        let _ = fresh.matvec(&x).expect("dims fixed");
    });
    vec![
        ("freq-domain accumulation (ours)".into(), accum),
        ("per-block IFFT (Algorithm 1 literal)".into(), naive),
        ("no spectrum cache (re-FFT weights)".into(), recompute),
    ]
}

/// Ablation 2: butterfly counts with and without the Hermitian saving.
pub fn hermitian_savings() -> Vec<(usize, u64, u64)> {
    [64usize, 256, 1024, 4096]
        .into_iter()
        .map(|k| (k, ops::complex_fft_butterflies(k), ops::rfft_butterflies(k)))
        .collect()
}

/// Ablation 3: depth sweep at fixed p = 32 (Cyclone V bandwidth).
pub fn depth_sweep() -> Vec<(usize, f64, f64)> {
    (1..=4)
        .map(|d| {
            let bcb = BasicComputingBlock::new(32, d);
            (d, bcb.butterflies_per_cycle(), bcb.pipeline_efficiency())
        })
        .collect()
}

/// One row of the block-size sweep.
#[derive(Debug, Clone, Copy)]
pub struct BlockSweepRow {
    /// Block size.
    pub k: usize,
    /// Parameter compression on the MNIST model's first FC layer.
    pub compression: f64,
    /// Test accuracy of the retrained circulant model.
    pub accuracy: f32,
}

/// Ablation 4: block-size vs accuracy on the MNIST stand-in — the §2.4
/// "fine-grained tradeoff of accuracy and compression".
pub fn block_size_sweep(quick: bool) -> Vec<BlockSweepRow> {
    use circnn_core::CirculantLinear;
    use circnn_nn::{Flatten, Linear, Relu, Sequential};
    let blocks: &[usize] = if quick { &[1, 16] } else { &[1, 4, 16, 64] };
    let (train_n, test_n, epochs) = if quick { (120, 60, 2) } else { (600, 200, 5) };
    let full = Benchmark::Mnist.dataset(train_n + test_n, 21);
    let (train, test) = full.split_at(train_n);
    blocks
        .iter()
        .map(|&k| {
            let mut rng = seeded_rng(31);
            // A compact FC model so the block size is the only variable.
            let mut net = Sequential::new()
                .add(Flatten::new())
                .add(CirculantLinear::new(&mut rng, 784, 128, k).expect("valid"))
                .add(Relu::new())
                .add(Linear::new(&mut rng, 128, 10));
            let mut opt = Adam::new(0.002);
            let cfg = TrainConfig {
                epochs,
                batch_size: 16,
                shuffle_seed: 3,
                ..Default::default()
            };
            let _ = train_classifier(&mut net, &mut opt, &train.images, &train.labels, &cfg);
            let accuracy = evaluate_accuracy(&mut net, &test.images, &test.labels);
            BlockSweepRow {
                k,
                compression: k as f64,
                accuracy,
            }
        })
        .collect()
}

/// Related-work baseline (§2.3, LeCun et al. \[52\]): spatial FFT convolution
/// accelerates large kernels but keeps (indeed grows) the storage, while
/// CirCNN compresses the parameters themselves. One row per method:
/// `(name, forward seconds, stored floats)`.
pub fn lecun_comparison(quick: bool) -> Vec<(String, f64, usize)> {
    use circnn_core::{CirculantConv2d, LeCunFftConv2d};
    use circnn_nn::Conv2d;
    use circnn_tensor::Tensor;
    // Large 11×11 kernels on a 32×32 map — the regime [52] targets.
    let (c, p, r, h) = (8usize, 8usize, 11usize, 32usize);
    let reps = if quick { 2 } else { 10 };
    let mut rng = seeded_rng(71);
    let x = Tensor::from_vec(
        (0..c * h * h).map(|i| (i as f32 * 0.003).sin()).collect(),
        &[c, h, h],
    );
    let mut dense = Conv2d::new(&mut rng, c, p, r, 1, 0);
    let t_dense = time_s(reps, || {
        let _ = dense.forward(&x);
    });
    let mut lecun = LeCunFftConv2d::new(&mut rng, c, p, r).unwrap();
    let _ = lecun.forward(&x).unwrap(); // plan + spectra
    let t_lecun = time_s(reps, || {
        let _ = lecun.forward(&x).unwrap();
    });
    let mut circ = CirculantConv2d::new(&mut rng, c, p, r, 1, 0, 8).unwrap();
    let t_circ = time_s(reps, || {
        let _ = circ.forward(&x);
    });
    vec![
        ("dense conv (im2col GEMM)".into(), t_dense, c * p * r * r),
        (
            "LeCun FFT conv [52]".into(),
            t_lecun,
            lecun.parameter_count() + lecun.spectrum_storage_floats(),
        ),
        (
            "CirCNN circulant conv (k=8)".into(),
            t_circ,
            c * p * r * r / 8,
        ),
    ]
}

/// Ablation 6: accuracy vs quantization bit width on a trained MNIST model.
pub fn quantization_sweep(quick: bool) -> Vec<(u32, f32)> {
    let (train_n, test_n, epochs) = if quick { (150, 60, 2) } else { (600, 200, 4) };
    let full = Benchmark::Mnist.dataset(train_n + test_n, 51);
    let (train, test) = full.split_at(train_n);
    let mut rng = seeded_rng(61);
    let mut net = Benchmark::Mnist.build_circulant(&mut rng);
    let mut opt = Adam::new(0.002);
    let cfg = TrainConfig {
        epochs,
        batch_size: 16,
        shuffle_seed: 1,
        ..Default::default()
    };
    let _ = train_classifier(&mut net, &mut opt, &train.images, &train.labels, &cfg);
    let bits_list: &[u32] = if quick {
        &[16, 4]
    } else {
        &[24, 16, 8, 6, 4, 2]
    };
    bits_list
        .iter()
        .map(|&bits| {
            let mut rng2 = seeded_rng(61);
            let mut qnet = Benchmark::Mnist.build_circulant(&mut rng2);
            // Copy trained weights, then quantize.
            let mut source = Vec::new();
            net.visit_params(&mut |p, _| source.push(p.to_vec()));
            let mut i = 0;
            qnet.visit_params(&mut |p, _| {
                p.copy_from_slice(&source[i]);
                i += 1;
            });
            let _ = fake_quantize_layer(&mut qnet, bits);
            (
                bits,
                evaluate_accuracy(&mut qnet, &test.images, &test.labels),
            )
        })
        .collect()
}

/// Prints every ablation.
pub fn print_all(quick: bool) {
    let mut t = Table::new(
        "Ablation: matvec variants (4096×4096, k=256)",
        &["variant", "time/call"],
    );
    for (name, secs) in matvec_variants(quick) {
        t.row(&[name, format!("{:.3} ms", secs * 1e3)]);
    }
    t.print();

    let mut h = Table::new(
        "Ablation: Hermitian-symmetry saving (butterflies per FFT)",
        &["size", "complex FFT", "real FFT (ours)", "saving"],
    );
    for (k, c, r) in hermitian_savings() {
        h.row(&[
            format!("{k}"),
            format!("{c}"),
            format!("{r}"),
            pct(1.0 - r as f64 / c as f64),
        ]);
    }
    h.print();

    let mut d = Table::new(
        "Ablation: depth sweep at p=32 (paper: d>3 impractical)",
        &["d", "butterflies/cycle", "pipeline efficiency"],
    );
    for (depth, tput, eff) in depth_sweep() {
        d.row(&[
            format!("{depth}"),
            format!("{tput:.1}"),
            format!("{eff:.2}"),
        ]);
    }
    d.print();

    let mut b = Table::new(
        "Ablation: block size vs accuracy (784→128 FC on MNIST stand-in)",
        &["k", "compression", "test accuracy"],
    );
    for row in block_size_sweep(quick) {
        b.row(&[
            format!("{}", row.k),
            format!("{:.0}×", row.compression),
            pct(f64::from(row.accuracy)),
        ]);
    }
    b.print();

    let mut l = Table::new(
        "Related work [52]: LeCun FFT conv vs CirCNN (8->8 ch, 11x11 kernel, 32x32 map)",
        &["method", "forward time", "stored floats"],
    );
    for (name, secs, floats) in lecun_comparison(quick) {
        l.row(&[name, format!("{:.3} ms", secs * 1e3), format!("{floats}")]);
    }
    l.print();

    let mut q = Table::new(
        "Ablation: weight quantization (paper: 16-bit negligible, 4-bit broken)",
        &["bits", "test accuracy"],
    );
    for (bits, acc) in quantization_sweep(quick) {
        q.row(&[format!("{bits}"), pct(f64::from(acc))]);
    }
    q.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_domain_accumulation_beats_naive() {
        let rows = matvec_variants(true);
        let accum = rows[0].1;
        let naive = rows[1].1;
        let recompute = rows[2].1;
        assert!(naive > accum, "naive {naive} should be slower than {accum}");
        assert!(
            recompute > accum,
            "no-cache {recompute} should be slower than {accum}"
        );
    }

    #[test]
    fn hermitian_saving_is_at_least_half() {
        for (_, c, r) in hermitian_savings() {
            assert!((r as f64) < 0.6 * c as f64);
        }
    }

    #[test]
    fn depth_sweep_has_diminishing_returns() {
        let sweep = depth_sweep();
        let g12 = sweep[1].1 / sweep[0].1;
        let g34 = sweep[3].1 / sweep[2].1;
        assert!(g12 > g34, "d gains must diminish: {g12} vs {g34}");
    }
}
