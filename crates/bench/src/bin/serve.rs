//! Runs the serving-layer trajectory and writes `BENCH_serve.json`.
fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — request-batching serving layer (quick = {quick})\n");
    let points = circnn_bench::serve::run(quick);
    circnn_bench::serve::print(&points);
    let json = circnn_bench::serve::to_json(&points);
    let path = "BENCH_serve.json";
    std::fs::write(path, json).expect("writing trajectory file");
    println!("\nwrote {path}");
}
