//! Regenerates the paper's Fig. 7 (compression & accuracy tables).
fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — Fig. 7 (quick = {quick})\n");
    let rows = circnn_bench::fig7::run(quick);
    circnn_bench::fig7::print(&rows);
}
