//! Regenerates the Section 3.4 DBN training-speedup measurement.
fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — training speedup (quick = {quick})\n");
    let points = circnn_bench::train_speedup::run(quick);
    circnn_bench::train_speedup::print(&points);
}
