//! Runs the sharded-tier trajectory and writes `BENCH_shard.json`.

fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — sharded serving tier (quick = {quick})\n");
    let (points, failover) = circnn_bench::shard::run(quick);
    circnn_bench::shard::print(&points, &failover);
    std::fs::write(
        "BENCH_shard.json",
        circnn_bench::shard::to_json(&points, &failover),
    )
    .expect("writing trajectory file");
    println!("\nwrote BENCH_shard.json");
}
