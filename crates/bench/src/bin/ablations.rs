//! Runs the design-choice ablations listed in DESIGN.md.
fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — ablations (quick = {quick})\n");
    circnn_bench::ablations::print_all(quick);
}
