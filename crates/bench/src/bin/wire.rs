//! Wire-serving trajectory binary: batching grid plus the front-end
//! connection sweep; writes `BENCH_wire.json`.

fn main() {
    let quick = circnn_bench::quick_mode();
    let points = circnn_bench::wire::run(quick);
    circnn_bench::wire::print(&points);
    let sweep = circnn_bench::wire::run_sweep(quick);
    circnn_bench::wire::print_sweep(&sweep);
    let json = circnn_bench::wire::to_json(&points, &sweep);
    std::fs::write("BENCH_wire.json", json).expect("writing BENCH_wire.json");
    println!(
        "\nwrote BENCH_wire.json ({} points, {} sweep points)",
        points.len(),
        sweep.len()
    );
}
