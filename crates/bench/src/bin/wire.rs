//! Wire-serving trajectory binary: writes `BENCH_wire.json`.

fn main() {
    let quick = circnn_bench::quick_mode();
    let points = circnn_bench::wire::run(quick);
    circnn_bench::wire::print(&points);
    let json = circnn_bench::wire::to_json(&points);
    std::fs::write("BENCH_wire.json", json).expect("writing BENCH_wire.json");
    println!("\nwrote BENCH_wire.json ({} points)", points.len());
}
