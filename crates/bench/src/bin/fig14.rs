//! Regenerates the paper's Fig. 14 (TrueNorth comparison).
fn main() {
    println!("CirCNN reproduction — Fig. 14\n");
    let rows = circnn_bench::fig14::run();
    circnn_bench::fig14::print(&rows);
}
