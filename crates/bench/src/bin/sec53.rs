//! Regenerates the Section 5.3 embedded-processor measurements.
fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — Section 5.3 (quick = {quick})\n");
    let r = circnn_bench::sec53::run(quick);
    circnn_bench::sec53::print(&r);
}
