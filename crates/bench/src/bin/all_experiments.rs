//! Runs every experiment in sequence (the EXPERIMENTS.md generator).
fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — full experiment suite (quick = {quick})\n");
    let rows = circnn_bench::fig7::run(quick);
    circnn_bench::fig7::print(&rows);
    circnn_bench::fig13::print(&circnn_bench::fig13::run());
    circnn_bench::fig14::print(&circnn_bench::fig14::run());
    circnn_bench::fig15::print(&circnn_bench::fig15::run());
    let s = circnn_bench::sec53::run(quick);
    circnn_bench::sec53::print(&s);
    circnn_bench::alg3::print(&circnn_bench::alg3::example(), &circnn_bench::alg3::run());
    circnn_bench::train_speedup::print(&circnn_bench::train_speedup::run(quick));
    circnn_bench::ablations::print_all(quick);
}
