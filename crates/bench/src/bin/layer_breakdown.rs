//! Per-layer cycle/energy breakdown of a network on a platform — the view
//! an accelerator architect actually debugs with (which stage bottlenecks
//! each layer, where the energy goes).
//!
//! ```text
//! cargo run -p circnn-bench --bin layer_breakdown --release [alexnet|vgg16|lenet]
//! ```

use circnn_bench::table::Table;
use circnn_hw::netdesc::NetworkDescriptor;
use circnn_hw::platform;
use circnn_hw::simulator::simulate;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "alexnet".into());
    let net = match which.as_str() {
        "vgg16" => NetworkDescriptor::vgg16_circulant(),
        "lenet" => NetworkDescriptor::lenet5_circulant(),
        _ => NetworkDescriptor::alexnet_circulant(),
    };
    for plat in [platform::cyclone_v(), platform::asic_45nm()] {
        let report = simulate(&net, &plat);
        let mut t = Table::new(
            &format!(
                "{} on {}: per-layer breakdown",
                report.network, report.platform
            ),
            &[
                "#",
                "kind",
                "cycles",
                "share",
                "bottleneck",
                "dyn energy",
                "equiv Mops",
            ],
        );
        for (i, l) in report.layers.iter().enumerate() {
            t.row(&[
                format!("{i}"),
                l.kind.to_string(),
                format!("{:.0}", l.cycles),
                format!("{:.1}%", 100.0 * l.cycles / report.cycles),
                l.bottleneck.to_string(),
                format!("{:.1} uJ", l.dynamic_j * 1e6),
                format!("{:.1}", l.workload.dense_equiv_ops as f64 / 1e6),
            ]);
        }
        t.print();
        println!("{}\n", report.summary_row());
    }
}
