//! Runs the batched-convolution trajectory and writes `BENCH_conv.json`.
fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — batch-plane CONV pipeline (quick = {quick})\n");
    let (conv, fft) = circnn_bench::conv::run(quick);
    circnn_bench::conv::print(&conv, &fft);
    let json = circnn_bench::conv::to_json(&conv, &fft);
    let path = "BENCH_conv.json";
    std::fs::write(path, json).expect("writing trajectory file");
    println!("\nwrote {path}");
}
