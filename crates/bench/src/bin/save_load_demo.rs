//! Round-trips a trained block-circulant layer through the deployment
//! codec (`circnn_core::serialize`) and verifies the reloaded operator
//! computes identically — the ship-a-model workflow end to end.
//!
//! ```text
//! cargo run -p circnn-bench --bin save_load_demo --release
//! ```

use circnn_core::{serialize, BlockCirculantMatrix};
use circnn_tensor::init::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(1);
    // AlexNet FC6 shape at the paper's block size.
    let w = BlockCirculantMatrix::random(&mut rng, 4096, 9216, 128)?;
    let x: Vec<f32> = (0..9216).map(|i| (i as f32 * 0.001).sin()).collect();
    let y = w.matvec(&x)?;

    let mut full = Vec::new();
    serialize::save(&w, &mut full)?;
    let mut deployed = Vec::new();
    serialize::save_quantized(&w, &mut deployed)?;
    println!("dense fp32 equivalent : {:>12} bytes", 4096 * 9216 * 4);
    println!("circulant fp32 file   : {:>12} bytes", full.len());
    println!("circulant 16-bit file : {:>12} bytes", deployed.len());
    println!(
        "total reduction       : {:>11.0}x",
        (4096.0 * 9216.0 * 4.0) / deployed.len() as f64
    );

    let back = serialize::load(&deployed[..])?;
    let y2 = back.matvec(&x)?;
    let max_err = y
        .iter()
        .zip(&y2)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max output deviation after 16-bit round trip: {max_err:.2e}");
    Ok(())
}
