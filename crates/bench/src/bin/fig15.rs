//! Regenerates the paper's Fig. 15 (ASIC comparison).
fn main() {
    println!("CirCNN reproduction — Fig. 15\n");
    let fig = circnn_bench::fig15::run();
    circnn_bench::fig15::print(&fig);
}
