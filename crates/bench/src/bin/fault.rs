//! Runs the overload-policy trajectory and writes `BENCH_fault.json`.
fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — overload policies under offered load (quick = {quick})\n");
    let points = circnn_bench::fault::run(quick);
    circnn_bench::fault::print(&points);
    let json = circnn_bench::fault::to_json(&points);
    let path = "BENCH_fault.json";
    std::fs::write(path, json).expect("writing trajectory file");
    println!("\nwrote {path}");
}
