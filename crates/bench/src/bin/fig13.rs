//! Regenerates the paper's Fig. 13 (FPGA comparison).
fn main() {
    println!("CirCNN reproduction — Fig. 13\n");
    let fig = circnn_bench::fig13::run();
    circnn_bench::fig13::print(&fig);
}
