//! Runs the batched-inference trajectory and writes `BENCH_batched.json`.
fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — batched inference engine (quick = {quick})\n");
    let points = circnn_bench::batched::run(quick);
    circnn_bench::batched::print(&points);
    let json = circnn_bench::batched::to_json(&points);
    let path = "BENCH_batched.json";
    std::fs::write(path, json).expect("writing trajectory file");
    println!("\nwrote {path}");
}
