//! Regenerates the Algorithm 3 design-space example (Section 4.3).
fn main() {
    println!("CirCNN reproduction — Algorithm 3\n");
    let example = circnn_bench::alg3::example();
    let result = circnn_bench::alg3::run();
    circnn_bench::alg3::print(&example, &result);
}
