//! Runs the recurrent-engine trajectory and writes `BENCH_rnn.json`.
fn main() {
    let quick = circnn_bench::quick_mode();
    println!("CirCNN reproduction — recurrent inference on the unified engine (quick = {quick})\n");
    let (rnn, strided) = circnn_bench::rnn::run(quick);
    circnn_bench::rnn::print(&rnn, &strided);
    let json = circnn_bench::rnn::to_json(&rnn, &strided);
    let path = "BENCH_rnn.json";
    std::fs::write(path, json).expect("writing trajectory file");
    println!("\nwrote {path}");
}
