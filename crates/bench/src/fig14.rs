//! Fig. 14 — end-to-end throughput and energy efficiency vs IBM TrueNorth
//! on MNIST / CIFAR-10 / SVHN. Our side: the circulant benchmark models
//! simulated on the Cyclone V preset; TrueNorth side: the published
//! single-chip low-power-mode numbers the paper uses.

use circnn_hw::baselines::{paper_fig14_circnn, truenorth_references, TrueNorthPoint};
use circnn_hw::platform;
use circnn_hw::simulator::simulate;
use circnn_models::zoo::Benchmark;

use crate::table::Table;

/// One dataset row of the Fig.-14 reproduction.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Our simulated frames/s.
    pub ours_fps: f64,
    /// Our simulated frames/s/W (= frames per joule).
    pub ours_fps_per_w: f64,
    /// TrueNorth published frames/s.
    pub truenorth_fps: f64,
    /// TrueNorth published frames/s/W.
    pub truenorth_fps_per_w: f64,
    /// The paper's own FPGA numbers for this row (regression reference).
    pub paper: TrueNorthPoint,
}

/// Runs the Fig.-14 experiment.
pub fn run() -> Vec<Fig14Row> {
    let refs = truenorth_references();
    let paper = paper_fig14_circnn();
    let fpga = platform::cyclone_v();
    [Benchmark::Mnist, Benchmark::Cifar10, Benchmark::Svhn]
        .into_iter()
        .zip(refs)
        .zip(paper)
        .map(|((b, tn), paper)| {
            let report = simulate(&b.fig14_descriptor(), &fpga);
            Fig14Row {
                dataset: tn.dataset,
                ours_fps: report.fps,
                ours_fps_per_w: report.frames_per_joule,
                truenorth_fps: tn.fps,
                truenorth_fps_per_w: tn.fps_per_w,
                paper,
            }
        })
        .collect()
}

/// Prints the comparison tables.
pub fn print(rows: &[Fig14Row]) {
    let mut a = Table::new(
        "Fig. 14(a): throughput (frames/s)",
        &["dataset", "TrueNorth", "ours (sim)", "paper's FPGA"],
    );
    for r in rows {
        a.row(&[
            r.dataset.into(),
            format!("{:.0}", r.truenorth_fps),
            format!("{:.0}", r.ours_fps),
            format!("{:.0}", r.paper.fps),
        ]);
    }
    a.print();
    let mut b = Table::new(
        "Fig. 14(b): energy efficiency (frames/s/W)",
        &["dataset", "TrueNorth", "ours (sim)", "paper's FPGA"],
    );
    for r in rows {
        b.row(&[
            r.dataset.into(),
            format!("{:.0}", r.truenorth_fps_per_w),
            format!("{:.0}", r.ours_fps_per_w),
            format!("{:.0}", r.paper.fps_per_w),
        ]);
    }
    b.print();
    println!(
        "paper shape: faster than TrueNorth on MNIST & SVHN, slower on CIFAR-10\n\
         (small-scale FFTs limit the CIFAR model); energy efficiency within one\n\
         order of magnitude across the board\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_throughput_ordering() {
        let rows = run();
        let get = |d: &str| rows.iter().find(|r| r.dataset == d).unwrap();
        // Faster than TrueNorth on MNIST and SVHN …
        assert!(get("MNIST").ours_fps > get("MNIST").truenorth_fps);
        assert!(get("SVHN").ours_fps > get("SVHN").truenorth_fps);
        // … but MNIST is much faster than CIFAR on our engine (the CIFAR
        // model's small FFTs bound its throughput, the paper's explanation
        // for losing that column).
        assert!(get("MNIST").ours_fps > 4.0 * get("CIFAR-10").ours_fps);
    }

    #[test]
    fn energy_efficiency_is_same_order_of_magnitude_as_truenorth() {
        for r in run() {
            let ratio = r.ours_fps_per_w / r.truenorth_fps_per_w;
            assert!(
                (0.1..30.0).contains(&ratio),
                "{}: ratio {ratio} out of one-order band",
                r.dataset
            );
        }
    }

    #[test]
    fn our_numbers_are_within_shape_of_the_papers() {
        // Not absolute-value matching (different substrate), but each of
        // our fps numbers should be within ~5× of the paper's own FPGA
        // column for the same dataset.
        for r in run() {
            let ratio = r.ours_fps / r.paper.fps;
            assert!(
                (0.2..5.0).contains(&ratio),
                "{}: {} vs paper {}",
                r.dataset,
                r.ours_fps,
                r.paper.fps
            );
        }
    }
}
