//! Sharded-tier trajectory: scatter-gather throughput of the
//! [`circnn_shard::ShardRouter`] against a single-process server, plus
//! the latency cost of a replica failover.
//!
//! Three throughput configurations serve the same block-circulant
//! operator end to end over real sockets — one process, a 2-shard
//! cluster, a 4-shard cluster — driven by one synchronous client issuing
//! `InferBatch` requests. The failover experiment runs a 2-replica
//! shard, kills the primary mid-run, and reports the first-request
//! latency spike against the steady-state and recovered medians.
//!
//! The `shard` binary wraps [`run`] and writes `BENCH_shard.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use circnn_core::{BlockCirculantMatrix, Workspace};
use circnn_serve::TenantConfig;
use circnn_shard::topology::{segment_ranges, split_operator, ClusterSpec, ShardSpec};
use circnn_shard::{RouterConfig, RouterServer, ShardRouter};
use circnn_tensor::init::seeded_rng;
use circnn_wire::{ClientConfig, ModelRegistry, WireClient, WireConfig, WireServer};

/// One measured serving configuration.
#[derive(Debug, Clone)]
pub struct ShardPoint {
    /// `"single"`, `"2-shard"`, `"4-shard"`.
    pub config: &'static str,
    /// Shard processes behind the serving surface (1 = no router).
    pub shards: usize,
    /// Operator rows.
    pub m: usize,
    /// Operator columns.
    pub n: usize,
    /// Block size.
    pub k: usize,
    /// Rows per `InferBatch` request.
    pub batch: usize,
    /// Requests measured.
    pub requests: usize,
    /// Client-observed requests/second.
    pub rps: f64,
    /// Median request latency, µs.
    pub p50_us: f64,
}

/// The failover experiment's summary.
#[derive(Debug, Clone)]
pub struct FailoverPoint {
    /// Median latency before the kill, µs.
    pub steady_p50_us: f64,
    /// Latency of the first request after the primary died, µs — the
    /// failover hit (connect-failure detection plus the retry on the
    /// surviving replica).
    pub first_after_kill_us: f64,
    /// Median latency after failover settled, µs.
    pub recovered_p50_us: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn operator(m: usize, n: usize, k: usize) -> BlockCirculantMatrix {
    BlockCirculantMatrix::random(&mut seeded_rng(4242), m, n, k).expect("valid shape")
}

fn request(n: usize, batch: usize, seed: u64) -> Vec<f32> {
    circnn_tensor::init::uniform(&mut seeded_rng(seed), &[batch * n], -1.0, 1.0)
        .data()
        .to_vec()
}

fn router_config() -> RouterConfig {
    RouterConfig {
        client: ClientConfig {
            connect_timeout: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            retries: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            ..ClientConfig::default()
        },
        ..RouterConfig::default()
    }
}

/// Boots one shard server per slice (with `replicas` replicas each)
/// holding `"op"`; returns the servers shard-major plus the spec.
fn boot_shards(
    w: &BlockCirculantMatrix,
    shards: usize,
    replicas: usize,
) -> (Vec<Vec<WireServer>>, ClusterSpec) {
    let slices = split_operator(w, shards).expect("splittable");
    let mut servers = Vec::new();
    let mut spec = ClusterSpec { shards: Vec::new() };
    for slice in &slices {
        let mut shard_servers = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..replicas {
            let registry = Arc::new(ModelRegistry::new(2).expect("pool"));
            registry
                .add_segment("op", slice.clone(), TenantConfig::default())
                .expect("register segment");
            let server =
                WireServer::bind("127.0.0.1:0", registry, WireConfig::default()).expect("bind");
            addrs.push(server.local_addr());
            shard_servers.push(server);
        }
        servers.push(shard_servers);
        spec.shards.push(ShardSpec { replicas: addrs });
    }
    (servers, spec)
}

/// Issues `requests` batched requests through `client` and returns
/// (rps, p50 µs). The first reply is verified bitwise against the
/// in-process kernel, so the measurement can never be of wrong answers.
fn drive(
    client: &mut WireClient,
    w: &BlockCirculantMatrix,
    batch: usize,
    requests: usize,
) -> (f64, f64) {
    let n = w.cols();
    let x = request(n, batch, 99);
    let first = client.infer_batch("op", batch, &x, None).expect("serve");
    let mut ws = Workspace::new();
    let mut direct = Vec::new();
    for row in x.chunks(n) {
        direct.extend_from_slice(&w.matmat(row, 1, &mut ws).expect("matmat"));
    }
    assert_eq!(first, direct, "served batch must be bitwise-exact");

    let mut latencies = Vec::with_capacity(requests);
    let t0 = Instant::now();
    for i in 0..requests {
        let x = request(n, batch, 1000 + i as u64);
        let t = Instant::now();
        let _ = client.infer_batch("op", batch, &x, None).expect("serve");
        latencies.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let total = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (requests as f64 / total, percentile(&latencies, 0.50))
}

/// Measures one sharded configuration end to end.
fn measure_sharded(
    w: &BlockCirculantMatrix,
    shards: usize,
    batch: usize,
    requests: usize,
    config: &'static str,
) -> ShardPoint {
    let (servers, spec) = boot_shards(w, shards, 1);
    let slices = split_operator(w, shards).expect("splittable");
    let router = Arc::new(ShardRouter::new(&spec, router_config()).expect("router"));
    router
        .add_sharded_model("op", w.cols(), &segment_ranges(&slices))
        .expect("register");
    let front = RouterServer::bind("127.0.0.1:0", Arc::clone(&router), WireConfig::default())
        .expect("bind front");
    let mut client = WireClient::connect(front.local_addr()).expect("connect");
    let (rps, p50_us) = drive(&mut client, w, batch, requests);
    drop(client);
    front.shutdown();
    router.drain_pools();
    for shard in servers {
        for server in shard {
            server.shutdown();
        }
    }
    ShardPoint {
        config,
        shards,
        m: w.rows(),
        n: w.cols(),
        k: w.block_size(),
        batch,
        requests,
        rps,
        p50_us,
    }
}

/// Measures the single-process baseline (no router in the path).
fn measure_single(w: &BlockCirculantMatrix, batch: usize, requests: usize) -> ShardPoint {
    let registry = Arc::new(ModelRegistry::new(2).expect("pool"));
    registry
        .add_model("op", w.clone(), TenantConfig::default())
        .expect("register");
    let server = WireServer::bind("127.0.0.1:0", registry, WireConfig::default()).expect("bind");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let (rps, p50_us) = drive(&mut client, w, batch, requests);
    drop(client);
    server.shutdown();
    ShardPoint {
        config: "single",
        shards: 1,
        m: w.rows(),
        n: w.cols(),
        k: w.block_size(),
        batch,
        requests,
        rps,
        p50_us,
    }
}

/// The failover experiment: a 2-shard cluster whose first shard has two
/// replicas; the primary dies mid-run.
fn measure_failover(w: &BlockCirculantMatrix, batch: usize, requests: usize) -> FailoverPoint {
    let (mut servers, spec) = boot_shards(w, 2, 2);
    let slices = split_operator(w, 2).expect("splittable");
    let router = Arc::new(ShardRouter::new(&spec, router_config()).expect("router"));
    router
        .add_sharded_model("op", w.cols(), &segment_ranges(&slices))
        .expect("register");
    let n = w.cols();

    let mut steady = Vec::new();
    for i in 0..requests {
        let x = request(n, batch, 2000 + i as u64);
        let t = Instant::now();
        let _ = router.infer_batch("op", batch, &x, None).expect("serve");
        steady.push(t.elapsed().as_secs_f64() * 1e6);
    }

    // Kill shard 0's primary, then measure the very next request — it
    // pays the dead-connection detection plus the failover retry.
    let primary = servers[0].remove(0);
    primary.shutdown();
    let x = request(n, batch, 3000);
    let t = Instant::now();
    let _ = router
        .infer_batch("op", batch, &x, None)
        .expect("failover serve");
    let first_after_kill_us = t.elapsed().as_secs_f64() * 1e6;

    let mut recovered = Vec::new();
    for i in 0..requests {
        let x = request(n, batch, 4000 + i as u64);
        let t = Instant::now();
        let _ = router.infer_batch("op", batch, &x, None).expect("serve");
        recovered.push(t.elapsed().as_secs_f64() * 1e6);
    }

    router.drain_pools();
    for shard in servers {
        for server in shard {
            server.shutdown();
        }
    }
    steady.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    recovered.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    FailoverPoint {
        steady_p50_us: percentile(&steady, 0.50),
        first_after_kill_us,
        recovered_p50_us: percentile(&recovered, 0.50),
    }
}

/// Runs the full trajectory: single vs 2-shard vs 4-shard, plus the
/// failover experiment.
pub fn run(quick: bool) -> (Vec<ShardPoint>, FailoverPoint) {
    let (m, n, k, batch, requests) = if quick {
        (128, 128, 16, 4, 20)
    } else {
        (512, 512, 16, 8, 120)
    };
    let w = operator(m, n, k);
    let points = vec![
        measure_single(&w, batch, requests),
        measure_sharded(&w, 2, batch, requests, "2-shard"),
        measure_sharded(&w, 4, batch, requests, "4-shard"),
    ];
    let failover = measure_failover(&w, batch, (requests / 2).max(5));
    (points, failover)
}

/// Renders the `BENCH_shard.json` trajectory document.
pub fn to_json(points: &[ShardPoint], failover: &FailoverPoint) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"shard_router\",\n  \"unit\": \"requests_per_second\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"shards\": {}, \"m\": {}, \"n\": {}, \"k\": {}, \
             \"batch\": {}, \"requests\": {}, \"rps\": {:.1}, \"p50_us\": {:.0}}}{}\n",
            p.config,
            p.shards,
            p.m,
            p.n,
            p.k,
            p.batch,
            p.requests,
            p.rps,
            p.p50_us,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"failover\": {{\"steady_p50_us\": {:.0}, \"first_after_kill_us\": {:.0}, \
         \"recovered_p50_us\": {:.0}}}\n}}\n",
        failover.steady_p50_us, failover.first_after_kill_us, failover.recovered_p50_us
    ));
    out
}

/// Prints a human-readable table.
pub fn print(points: &[ShardPoint], failover: &FailoverPoint) {
    println!(
        "{:>8} {:>6} | {:>5}x{:<5} k={:<3} B={:<3} | {:>9} {:>10}",
        "config", "shards", "m", "n", "", "", "rps", "p50"
    );
    for p in points {
        println!(
            "{:>8} {:>6} | {:>5}x{:<5} k={:<3} B={:<3} | {:>7.1}/s {:>7.1} ms",
            p.config,
            p.shards,
            p.m,
            p.n,
            p.k,
            p.batch,
            p.rps,
            p.p50_us / 1e3
        );
    }
    println!(
        "failover: steady p50 {:.1} ms → first request after kill {:.1} ms → recovered p50 {:.1} ms",
        failover.steady_p50_us / 1e3,
        failover.first_after_kill_us / 1e3,
        failover.recovered_p50_us / 1e3
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end smoke: all three configurations and the
    /// failover point measure and serialize.
    #[test]
    fn measures_and_serializes_small_points() {
        let w = operator(32, 32, 8);
        let points = vec![
            measure_single(&w, 2, 3),
            measure_sharded(&w, 2, 2, 3, "2-shard"),
        ];
        let failover = measure_failover(&w, 2, 3);
        assert!(points.iter().all(|p| p.rps > 0.0));
        assert!(failover.first_after_kill_us > 0.0);
        let json = to_json(&points, &failover);
        assert!(json.contains("\"config\": \"2-shard\""));
        assert!(json.contains("\"failover\""));
        assert!(json.contains("first_after_kill_us"));
    }
}
