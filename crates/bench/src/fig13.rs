//! Fig. 13 — FPGA performance and energy efficiency vs the state of the
//! art. Our point: AlexNet (block-circulant) simulated on the Cyclone V
//! preset; reference points are the published numbers the paper plots.

use circnn_hw::baselines::{fpga_references, RefPoint};
use circnn_hw::netdesc::NetworkDescriptor;
use circnn_hw::platform;
use circnn_hw::simulator::{simulate, SimReport};

use crate::table::{times, Table};

/// Result of the Fig.-13 reproduction.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// Our simulated FPGA point (AlexNet, the paper's workload).
    pub ours: SimReport,
    /// VGG-16 on the same FPGA — the workload class of the \[FPGA16\] and
    /// \[ICCAD16\] reference designs, for a like-for-like column.
    pub ours_vgg: SimReport,
    /// Published reference points.
    pub references: Vec<RefPoint>,
}

impl Fig13 {
    /// Energy-efficiency improvement over a reference point.
    pub fn improvement_over(&self, name: &str) -> Option<f64> {
        self.references
            .iter()
            .find(|r| r.name == name)
            .map(|r| self.ours.equiv_gops_per_w / r.gops_per_w)
    }
}

/// Runs the Fig.-13 experiment.
pub fn run() -> Fig13 {
    let fpga = platform::cyclone_v();
    let ours = simulate(&NetworkDescriptor::alexnet_circulant(), &fpga);
    let ours_vgg = simulate(&NetworkDescriptor::vgg16_circulant(), &fpga);
    Fig13 {
        ours,
        ours_vgg,
        references: fpga_references(),
    }
}

/// Prints the comparison table.
pub fn print(fig: &Fig13) {
    let mut t = Table::new(
        "Fig. 13: FPGA comparison (equivalent GOPS / GOPS-per-W, AlexNet-class workloads)",
        &["design", "GOPS", "GOPS/W", "our improvement"],
    );
    t.row(&[
        "CirCNN AlexNet (ours, sim)".into(),
        format!("{:.0}", fig.ours.equiv_gops),
        format!("{:.0}", fig.ours.equiv_gops_per_w),
        "—".into(),
    ]);
    t.row(&[
        "CirCNN VGG-16 (ours, sim)".into(),
        format!("{:.0}", fig.ours_vgg.equiv_gops),
        format!("{:.0}", fig.ours_vgg.equiv_gops_per_w),
        "—".into(),
    ]);
    for r in &fig.references {
        t.row(&[
            r.name.into(),
            format!("{:.0}", r.gops),
            format!("{:.1}", r.gops_per_w),
            times(fig.ours.equiv_gops_per_w / r.gops_per_w),
        ]);
    }
    t.print();
    println!(
        "paper claim: 11-16x vs compressed designs [FPGA17], 60-70x vs uncompressed [FPGA16/ICCAD16]\n\
         measured   : {:.1}x vs [FPGA17,Han], {:.1}x vs [FPGA17,Zhao], {:.1}x vs [FPGA16], {:.1}x vs [ICCAD16]\n",
        fig.improvement_over("[FPGA17,Han]").unwrap_or(f64::NAN),
        fig.improvement_over("[FPGA17,Zhao]").unwrap_or(f64::NAN),
        fig.improvement_over("[FPGA16]").unwrap_or(f64::NAN),
        fig.improvement_over("[ICCAD16]").unwrap_or(f64::NAN),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_point_beats_every_reference_on_efficiency() {
        let fig = run();
        for r in &fig.references {
            assert!(
                fig.ours.equiv_gops_per_w > r.gops_per_w,
                "{} ({}) not beaten ({})",
                r.name,
                r.gops_per_w,
                fig.ours.equiv_gops_per_w
            );
        }
    }

    #[test]
    fn vgg_point_is_the_same_story() {
        // The like-for-like VGG column must also beat the VGG-based
        // references by an order of magnitude.
        let fig = run();
        assert!(fig.ours_vgg.equiv_gops_per_w > 10.0 * 14.6);
    }

    #[test]
    fn improvements_have_the_paper_shape() {
        // Compressed baselines (ESE, Zhao): order 10×; uncompressed
        // (Qiu, Caffeine): order 50–100×.
        let fig = run();
        let ese = fig.improvement_over("[FPGA17,Han]").unwrap();
        let qiu = fig.improvement_over("[FPGA16]").unwrap();
        assert!(ese > 5.0 && ese < 30.0, "vs ESE: {ese}");
        assert!(qiu > 40.0 && qiu < 120.0, "vs Qiu: {qiu}");
        assert!(
            qiu > 3.0 * ese,
            "uncompressed gap must dwarf compressed gap"
        );
    }
}
