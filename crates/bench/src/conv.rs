//! Batched-convolution trajectory: the batch-plane CONV pipeline versus
//! the retired per-image, per-pixel spectral path, plus the real-input
//! plane-FFT specialization versus the complex plane FFT.
//!
//! The per-image baseline is the seed code path reconstructed from the
//! public Algorithm-1 pieces (`col_spectra` / `accumulate_forward` /
//! `finish_forward`): channel spectra once per input pixel via scalar
//! real FFTs, `r²` operator accumulations per output pixel, one scalar
//! IFFT per output block — allocating per pixel, image by image. The
//! batched pipeline runs the whole `[B, C, H, W]` slab through SoA
//! `[bin][block][batch·pixels]` planes with one batch-plane FFT dispatch
//! per block row.
//!
//! The `conv` binary wraps [`run`] and writes the points to
//! `BENCH_conv.json` so the trajectory can be tracked across commits.

use std::time::Instant;

use circnn_core::{default_batch_threads, BlockCirculantMatrix, CirculantConv2d, ConvWorkspace};
use circnn_fft::BatchFftPlan;
use circnn_nn::Layer;
use circnn_tensor::init::seeded_rng;

/// One measured conv configuration.
#[derive(Debug, Clone)]
pub struct ConvPoint {
    /// Input channels.
    pub c: usize,
    /// Output channels.
    pub p: usize,
    /// Square input size (H = W).
    pub hw: usize,
    /// Kernel size `r`.
    pub kernel: usize,
    /// Circulant block size.
    pub k: usize,
    /// Batch size.
    pub batch: usize,
    /// Worker threads used by the parallel engine.
    pub threads: usize,
    /// Nanoseconds per sample for the retired per-image path.
    pub per_image_ns: f64,
    /// Nanoseconds per sample for the one-thread batched plane pipeline.
    pub batched_ns: f64,
    /// Nanoseconds per sample for the multi-thread plane pipeline.
    pub parallel_ns: f64,
    /// Nanoseconds per sample for the one-thread 16-bit fixed-point
    /// pipeline (i16 resident spectra, integer MAC, dequant in epilogue).
    pub quantized_ns: f64,
}

impl ConvPoint {
    /// Throughput gain of the serial plane pipeline over per-image.
    pub fn batched_speedup(&self) -> f64 {
        self.per_image_ns / self.batched_ns
    }

    /// Throughput gain of the parallel plane pipeline over per-image.
    pub fn parallel_speedup(&self) -> f64 {
        self.per_image_ns / self.parallel_ns
    }

    /// Throughput gain of the one-thread quantized pipeline over the
    /// one-thread f32 pipeline (like for like: same threading).
    pub fn quantized_speedup(&self) -> f64 {
        self.batched_ns / self.quantized_ns
    }
}

/// One real-vs-complex plane FFT measurement.
#[derive(Debug, Clone)]
pub struct PlaneFftPoint {
    /// Transform length.
    pub n: usize,
    /// Lanes per dispatch.
    pub lanes: usize,
    /// Nanoseconds per dispatch, complex path on real data.
    pub complex_ns: f64,
    /// Nanoseconds per dispatch, real-input (Hermitian) path.
    pub real_ns: f64,
}

impl PlaneFftPoint {
    /// Forward-transform gain of the real-input specialization.
    pub fn speedup(&self) -> f64 {
        self.complex_ns / self.real_ns
    }
}

/// Times `f` and returns median nanoseconds per call over `samples` runs.
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    f(); // warm-up also sizes workspaces
    let mut times: Vec<f64> = (0..samples.max(3))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

/// The retired seed path: per-image, per-pixel scalar-FFT convolution.
#[allow(clippy::too_many_arguments)]
fn per_image_forward(
    engines: &[BlockCirculantMatrix],
    bias: &[f32],
    c: usize,
    r: usize,
    img: &[f32],
    hw: usize,
    out: &mut [f32],
) {
    let (h, w) = (hw, hw);
    let pad = r / 2;
    let oh = h + 2 * pad - r + 1;
    let ow = w + 2 * pad - r + 1;
    let e0 = &engines[0];
    let mut pixel_spectra = Vec::with_capacity(h * w);
    let mut chans = vec![0.0f32; c];
    for iy in 0..h {
        for ix in 0..w {
            for (ci, slot) in chans.iter_mut().enumerate() {
                *slot = img[(ci * h + iy) * w + ix];
            }
            pixel_spectra.push(e0.col_spectra(&chans).expect("sized channel vector"));
        }
    }
    let mut acc = vec![circnn_fft::Complex::zero(); e0.block_rows() * e0.bins()];
    for oy in 0..oh {
        for ox in 0..ow {
            acc.fill(circnn_fft::Complex::zero());
            for kh in 0..r {
                let iy = (oy + kh) as isize - pad as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                for kw in 0..r {
                    let ix = (ox + kw) as isize - pad as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    let spec = &pixel_spectra[iy as usize * w + ix as usize];
                    engines[kh * r + kw].accumulate_forward(spec, &mut acc);
                }
            }
            let y = e0.finish_forward(&acc).expect("sized accumulator");
            for (pch, &v) in y.iter().enumerate() {
                out[(pch * oh + oy) * ow + ox] = v + bias[pch];
            }
        }
    }
}

/// Measures one conv configuration (`r×r` "same" conv, stride 1).
pub fn measure(
    c: usize,
    p: usize,
    hw: usize,
    r: usize,
    k: usize,
    batch: usize,
    samples: usize,
) -> ConvPoint {
    let mut rng = seeded_rng((c * 31 + p * 7 + hw * 3 + k + batch) as u64);
    let mut conv = CirculantConv2d::new(&mut rng, c, p, r, 1, r / 2, k).expect("valid conv shape");
    // Mirror the exact weights into standalone operators for the
    // per-image baseline, so both paths compute the same function.
    let mut groups: Vec<Vec<f32>> = Vec::new();
    conv.visit_params(&mut |param, _| groups.push(param.to_vec()));
    let per = (p.div_ceil(k)) * (c.div_ceil(k)) * k;
    let engines: Vec<BlockCirculantMatrix> = (0..r * r)
        .map(|o| {
            BlockCirculantMatrix::from_weights(p, c, k, &groups[0][o * per..(o + 1) * per])
                .expect("valid operator shape")
        })
        .collect();
    conv.set_training(false);
    let x = circnn_tensor::init::uniform(&mut rng, &[batch, c, hw, hw], -1.0, 1.0);
    let per_out = p * hw * hw;
    let mut out = vec![0.0f32; batch * per_out];
    let threads = default_batch_threads();

    let per_image_ns = median_ns(samples, || {
        for b in 0..batch {
            let img = x.data()[b * c * hw * hw..(b + 1) * c * hw * hw].to_vec();
            per_image_forward(
                &engines,
                &groups[1],
                c,
                r,
                &img,
                hw,
                &mut out[b * per_out..(b + 1) * per_out],
            );
        }
        std::hint::black_box(&out);
    }) / batch as f64;

    let mut ws = ConvWorkspace::new();
    let batched_ns = median_ns(samples, || {
        conv.infer_batch_into(&x, &mut ws, &mut out, 1)
            .expect("sized slab");
        std::hint::black_box(&out);
    }) / batch as f64;

    let mut ws_p = ConvWorkspace::new();
    let parallel_ns = median_ns(samples, || {
        conv.infer_batch_into(&x, &mut ws_p, &mut out, threads)
            .expect("sized slab");
        std::hint::black_box(&out);
    }) / batch as f64;

    // Sanity: the two paths must agree (they share the spectral math).
    {
        let mut reference = vec![0.0f32; per_out];
        let img = x.data()[..c * hw * hw].to_vec();
        per_image_forward(&engines, &groups[1], c, r, &img, hw, &mut reference);
        let scale = reference.iter().fold(1.0f32, |a, &v| a.max(v.abs()));
        for (i, (&a, &e)) in out[..per_out].iter().zip(&reference).enumerate() {
            assert!(
                (a - e).abs() < 5e-4 * scale,
                "plane path diverged from per-image baseline at {i}: {a} vs {e}"
            );
        }
    }

    let qconv = conv
        .quantize(circnn_core::QuantConfig::default())
        .expect("narrow formats");
    let mut qws = circnn_core::QuantWorkspace::new();
    let quantized_ns = median_ns(samples, || {
        qconv
            .infer_batch_into(&x, &mut qws, &mut out, 1)
            .expect("sized slab");
        std::hint::black_box(&out);
    }) / batch as f64;

    ConvPoint {
        c,
        p,
        hw,
        kernel: r,
        k,
        batch,
        threads,
        per_image_ns,
        batched_ns,
        parallel_ns,
        quantized_ns,
    }
}

/// Measures one real-vs-complex forward plane FFT point.
pub fn measure_plane_fft(n: usize, lanes: usize, samples: usize) -> PlaneFftPoint {
    let plan = BatchFftPlan::<f32>::new(n).expect("power-of-two length");
    let mut rng = seeded_rng((n * 31 + lanes) as u64);
    let data: Vec<f32> = circnn_tensor::init::uniform(&mut rng, &[n * lanes], -1.0, 1.0)
        .data()
        .to_vec();
    let mut re = vec![0.0f32; n * lanes];
    let mut im = vec![0.0f32; n * lanes];
    let complex_ns = median_ns(samples, || {
        re.copy_from_slice(&data);
        im.fill(0.0);
        plan.forward_planes(&mut re, &mut im, lanes)
            .expect("sized planes");
        std::hint::black_box((&re, &im));
    });
    let real_ns = median_ns(samples, || {
        re.copy_from_slice(&data);
        plan.forward_planes_real(&mut re, &mut im, lanes)
            .expect("sized planes");
        std::hint::black_box((&re, &im));
    });
    PlaneFftPoint {
        n,
        lanes,
        complex_ns,
        real_ns,
    }
}

/// The trajectory's conv grid. The `(16→32, 8×8, r=3, k=16, B=32)` point
/// is the acceptance-criteria headline.
pub fn grid(quick: bool) -> Vec<(usize, usize, usize, usize, usize, usize)> {
    if quick {
        vec![(16, 32, 8, 3, 16, 1), (16, 32, 8, 3, 16, 32)]
    } else {
        vec![
            (16, 32, 8, 3, 16, 1),
            (16, 32, 8, 3, 16, 8),
            (16, 32, 8, 3, 16, 32),
            (8, 16, 14, 3, 8, 32),
            (32, 32, 8, 3, 32, 32),
        ]
    }
}

/// The real-vs-complex plane FFT grid.
pub fn fft_grid(quick: bool) -> Vec<(usize, usize)> {
    if quick {
        vec![(16, 2048)]
    } else {
        vec![(16, 2048), (64, 1024), (512, 256)]
    }
}

/// Runs the whole trajectory.
pub fn run(quick: bool) -> (Vec<ConvPoint>, Vec<PlaneFftPoint>) {
    let samples = if quick { 5 } else { 15 };
    let conv = grid(quick)
        .into_iter()
        .map(|(c, p, hw, r, k, b)| measure(c, p, hw, r, k, b, samples))
        .collect();
    let fft = fft_grid(quick)
        .into_iter()
        .map(|(n, lanes)| measure_plane_fft(n, lanes, samples * 3))
        .collect();
    (conv, fft)
}

/// Renders the points as the `BENCH_conv.json` trajectory document.
pub fn to_json(conv: &[ConvPoint], fft: &[PlaneFftPoint]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"batched_conv\",\n  \"unit\": \"ns_per_sample\",\n  \"points\": [\n",
    );
    for (i, p) in conv.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"c\": {}, \"p\": {}, \"hw\": {}, \"kernel\": {}, \"k\": {}, \
             \"batch\": {}, \"threads\": {}, \"per_image_ns\": {:.1}, \"batched_ns\": {:.1}, \
             \"parallel_ns\": {:.1}, \"quantized_ns\": {:.1}, \"batched_speedup\": {:.2}, \
             \"parallel_speedup\": {:.2}, \"quantized_speedup\": {:.2}}}{}\n",
            p.c,
            p.p,
            p.hw,
            p.kernel,
            p.k,
            p.batch,
            p.threads,
            p.per_image_ns,
            p.batched_ns,
            p.parallel_ns,
            p.quantized_ns,
            p.batched_speedup(),
            p.parallel_speedup(),
            p.quantized_speedup(),
            if i + 1 == conv.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"plane_fft\": [\n");
    for (i, p) in fft.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"lanes\": {}, \"complex_ns\": {:.1}, \"real_ns\": {:.1}, \
             \"real_speedup\": {:.2}}}{}\n",
            p.n,
            p.lanes,
            p.complex_ns,
            p.real_ns,
            p.speedup(),
            if i + 1 == fft.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints a human-readable table.
pub fn print(conv: &[ConvPoint], fft: &[PlaneFftPoint]) {
    println!(
        "{:>4} {:>4} {:>4} {:>3} {:>4} {:>4} | {:>12} {:>12} {:>12} {:>12} | {:>8} {:>8} {:>8}",
        "C",
        "P",
        "HW",
        "r",
        "k",
        "B",
        "per-image",
        "batched",
        "parallel",
        "i16",
        "B-spdup",
        "P-spdup",
        "Q-spdup"
    );
    for p in conv {
        println!(
            "{:>4} {:>4} {:>4} {:>3} {:>4} {:>4} | {:>9.0} ns {:>9.0} ns {:>9.0} ns {:>9.0} ns | \
             {:>7.2}x {:>7.2}x {:>7.2}x",
            p.c,
            p.p,
            p.hw,
            p.kernel,
            p.k,
            p.batch,
            p.per_image_ns,
            p.batched_ns,
            p.parallel_ns,
            p.quantized_ns,
            p.batched_speedup(),
            p.parallel_speedup(),
            p.quantized_speedup()
        );
    }
    println!("\nplane FFT (forward, real vs complex):");
    for p in fft {
        println!(
            "  n={:>4} lanes={:>5} | complex {:>9.0} ns  real {:>9.0} ns | {:>5.2}x",
            p.n,
            p.lanes,
            p.complex_ns,
            p.real_ns,
            p.speedup()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes_a_small_point() {
        let p = measure(4, 8, 5, 3, 4, 2, 3);
        assert!(p.per_image_ns > 0.0 && p.batched_ns > 0.0 && p.parallel_ns > 0.0);
        assert!(p.quantized_ns > 0.0);
        let f = measure_plane_fft(8, 64, 3);
        assert!(f.complex_ns > 0.0 && f.real_ns > 0.0);
        let json = to_json(std::slice::from_ref(&p), std::slice::from_ref(&f));
        assert!(json.contains("\"batch\": 2"));
        assert!(json.contains("batched_speedup"));
        assert!(json.contains("quantized_speedup"));
        assert!(json.contains("plane_fft"));
    }
}
