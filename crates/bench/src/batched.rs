//! Batched-inference trajectory: single-sample vs batched vs
//! parallel-batched block-circulant forward throughput.
//!
//! This is the software analogue of the paper's premise that throughput
//! comes from keeping the weight spectra resident and streaming many
//! activations through them (cf. the batched FPGA RNN implementations that
//! followed CirCNN). Three engines are compared at each `(m, n, k, B)`
//! point:
//!
//! * **single** — `B` independent [`BlockCirculantMatrix::matvec`] calls,
//!   the pre-batching hot path (allocates per call);
//! * **batched** — one [`BlockCirculantMatrix::forward_batch_into`] on one
//!   worker thread: allocation-free, batch-innermost SIMD layout, one
//!   weight-spectrum sweep per batch;
//! * **parallel** — the same batched kernel on
//!   [`circnn_core::default_batch_threads`] threads.
//!
//! The `batched` binary wraps [`run`] and writes the points to
//! `BENCH_batched.json` so the trajectory can be tracked across commits.

use std::time::Instant;

use circnn_core::{
    default_batch_threads, BlockCirculantMatrix, QuantConfig, QuantWorkspace, QuantizedOperator,
    Workspace,
};
use circnn_tensor::init::seeded_rng;

/// One measured `(shape, batch)` point of the trajectory.
#[derive(Debug, Clone)]
pub struct BatchedPoint {
    /// Output dimension.
    pub m: usize,
    /// Input dimension.
    pub n: usize,
    /// Circulant block size.
    pub k: usize,
    /// Batch size.
    pub batch: usize,
    /// Worker threads used by the parallel engine.
    pub threads: usize,
    /// Nanoseconds per *sample* for `batch` single-sample matvecs.
    pub single_ns: f64,
    /// Nanoseconds per sample for the one-thread batched kernel.
    pub batched_ns: f64,
    /// Nanoseconds per sample for the multi-thread batched kernel.
    pub parallel_ns: f64,
    /// Nanoseconds per sample for the one-thread 16-bit fixed-point
    /// kernel (i16 resident spectra, integer MAC, dequant in epilogue).
    pub quantized_ns: f64,
}

impl BatchedPoint {
    /// Throughput gain of the serial batched kernel over single-sample.
    pub fn batched_speedup(&self) -> f64 {
        self.single_ns / self.batched_ns
    }

    /// Throughput gain of the parallel batched kernel over single-sample.
    pub fn parallel_speedup(&self) -> f64 {
        self.single_ns / self.parallel_ns
    }

    /// Throughput gain of the one-thread quantized kernel over the
    /// one-thread f32 batched kernel (like for like: same threading).
    pub fn quantized_speedup(&self) -> f64 {
        self.batched_ns / self.quantized_ns
    }
}

/// Times `f` and returns median nanoseconds per call over `samples` runs.
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    // Warm-up also sizes workspaces, so the timed region is allocation-free.
    f();
    let mut times: Vec<f64> = (0..samples.max(3))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

/// Measures one `(m, n, k, batch)` point.
pub fn measure(m: usize, n: usize, k: usize, batch: usize, samples: usize) -> BatchedPoint {
    let mut rng = seeded_rng((m * 31 + n * 7 + k * 3 + batch) as u64);
    let w = BlockCirculantMatrix::random(&mut rng, m, n, k).expect("valid shape");
    let x = circnn_tensor::init::uniform(&mut rng, &[batch * n], -1.0, 1.0);
    let x = x.data();
    let mut out = vec![0.0f32; batch * m];
    let threads = default_batch_threads();

    let single_ns = median_ns(samples, || {
        for b in 0..batch {
            let y = w.matvec(&x[b * n..(b + 1) * n]).expect("sized input");
            std::hint::black_box(&y);
        }
    }) / batch as f64;

    let mut ws = Workspace::new();
    let batched_ns = median_ns(samples, || {
        w.forward_batch_into_with_threads(x, batch, &mut ws, &mut out, 1)
            .expect("sized input");
        std::hint::black_box(&out);
    }) / batch as f64;

    let mut ws_p = Workspace::new();
    let parallel_ns = median_ns(samples, || {
        w.forward_batch_into_with_threads(x, batch, &mut ws_p, &mut out, threads)
            .expect("sized input");
        std::hint::black_box(&out);
    }) / batch as f64;

    let qop = QuantizedOperator::from_operator(&w, QuantConfig::default()).expect("narrow formats");
    let mut qws = QuantWorkspace::new();
    let quantized_ns = median_ns(samples, || {
        qop.infer_batch_into(x, batch, &mut qws, &mut out, 1)
            .expect("sized input");
        std::hint::black_box(&out);
    }) / batch as f64;

    BatchedPoint {
        m,
        n,
        k,
        batch,
        threads,
        single_ns,
        batched_ns,
        parallel_ns,
        quantized_ns,
    }
}

/// The trajectory's `(m, n, k, B)` grid. The `(512, 512, 16, 32)` point is
/// the acceptance-criteria headline.
pub fn grid(quick: bool) -> Vec<(usize, usize, usize, usize)> {
    if quick {
        vec![(256, 256, 16, 16), (512, 512, 16, 32)]
    } else {
        vec![
            (256, 256, 8, 32),
            (256, 256, 16, 16),
            (512, 512, 16, 1),
            (512, 512, 16, 8),
            (512, 512, 16, 32),
            (512, 512, 16, 128),
            (1024, 1024, 64, 32),
            (2048, 1024, 128, 32),
        ]
    }
}

/// Runs the whole trajectory.
pub fn run(quick: bool) -> Vec<BatchedPoint> {
    let samples = if quick { 5 } else { 15 };
    grid(quick)
        .into_iter()
        .map(|(m, n, k, b)| measure(m, n, k, b, samples))
        .collect()
}

/// Renders the points as the `BENCH_batched.json` trajectory document.
pub fn to_json(points: &[BatchedPoint]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"batched_inference\",\n  \"unit\": \"ns_per_sample\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"m\": {}, \"n\": {}, \"k\": {}, \"batch\": {}, \"threads\": {}, \
             \"single_ns\": {:.1}, \"batched_ns\": {:.1}, \"parallel_ns\": {:.1}, \
             \"quantized_ns\": {:.1}, \"batched_speedup\": {:.2}, \
             \"parallel_speedup\": {:.2}, \"quantized_speedup\": {:.2}}}{}\n",
            p.m,
            p.n,
            p.k,
            p.batch,
            p.threads,
            p.single_ns,
            p.batched_ns,
            p.parallel_ns,
            p.quantized_ns,
            p.batched_speedup(),
            p.parallel_speedup(),
            p.quantized_speedup(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints a human-readable table.
pub fn print(points: &[BatchedPoint]) {
    println!(
        "{:>5} {:>5} {:>4} {:>5} | {:>12} {:>12} {:>12} {:>12} | {:>8} {:>8} {:>8}",
        "m", "n", "k", "B", "single", "batched", "parallel", "i16", "B-spdup", "P-spdup", "Q-spdup"
    );
    for p in points {
        println!(
            "{:>5} {:>5} {:>4} {:>5} | {:>9.0} ns {:>9.0} ns {:>9.0} ns {:>9.0} ns | \
             {:>7.2}x {:>7.2}x {:>7.2}x",
            p.m,
            p.n,
            p.k,
            p.batch,
            p.single_ns,
            p.batched_ns,
            p.parallel_ns,
            p.quantized_ns,
            p.batched_speedup(),
            p.parallel_speedup(),
            p.quantized_speedup()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes_a_small_point() {
        let p = measure(64, 64, 8, 4, 3);
        assert!(p.single_ns > 0.0 && p.batched_ns > 0.0 && p.parallel_ns > 0.0);
        assert!(p.quantized_ns > 0.0);
        let json = to_json(std::slice::from_ref(&p));
        assert!(json.contains("\"batch\": 4"));
        assert!(json.contains("batched_speedup"));
        assert!(json.contains("quantized_ns"));
        assert!(json.contains("quantized_speedup"));
    }
}
