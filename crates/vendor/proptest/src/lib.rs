//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the subset of proptest's API the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`any`], `prop::collection::vec`,
//! [`ProptestConfig::with_cases`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate (deliberate, to stay tiny):
//!
//! * no shrinking — a failing case reports the case number and the fixed
//!   per-test seed, which reproduces it exactly;
//! * generation is driven by a deterministic per-test RNG (seeded from the
//!   test name), so failures are stable across runs.

#![forbid(unsafe_code)]

/// Deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is fixed by `name` (the test function name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h | 1 }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: usize,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: usize) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Outcome of one generated case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!` failure with its message.
    Fail(String),
    /// `prop_assume!` rejection — the case is skipped, not failed.
    Reject,
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+ $(,)?);)+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A,);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

/// Types with a canonical whole-domain strategy (the real crate's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::…` namespace mirrored from the real crate.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Length specifications accepted by [`vec()`](vec()).
        pub trait IntoSizeRange {
            /// Inclusive `(min, max)` lengths.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        /// Strategy for `Vec<T>` with element strategy `element` and a
        /// length drawn from `size`.
        pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }

        /// See [`vec()`](vec()).
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.max - self.min + 1;
                let len = self.min + (rng.next_u64() as usize) % span;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts inside a `proptest!` body, reporting the case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Skips the current case (not a failure) when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Defines property tests. Mirrors the real macro's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(-1.0f32..1.0, 1..8)) {
///         prop_assert!(v.len() < 8);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            let mut accepted = 0usize;
            let mut attempts = 0usize;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(200).max(1000),
                    "prop_assume rejected too many cases in {}",
                    stringify!($name)
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { { $body } Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "property {} failed on case {} (deterministic seed — rerun reproduces): {}",
                        stringify!($name),
                        accepted,
                        msg
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn shapes() -> impl Strategy<Value = (usize, usize)> {
        (1usize..8, 1usize..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, f in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in shapes().prop_map(|(m, n)| (m * 2, n))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 8, "b = {}", b);
        }

        #[test]
        fn flat_map_sizes_vectors(v in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(-1.0f64..1.0, n..=n)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn assume_rejects_without_failing((a, b) in (0usize..6, 0usize..6)) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn any_u64_and_eq(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }
}
