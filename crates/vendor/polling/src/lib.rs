//! Offline stand-in for a readiness-notification crate (`mio` / `polling`).
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the small subset the event-driven wire front end needs:
//! level-triggered readiness for nonblocking sockets — [`Poller::register`],
//! [`Poller::reregister`], [`Poller::deregister`], [`Poller::wait`] — plus a
//! self-pipe [`Waker`] for cross-thread wakeups. On Linux the backend is
//! epoll; on other Unix it falls back to `poll(2)` with a user-space
//! registration table. Semantics are identical either way: level-triggered,
//! one `usize` token per registered descriptor, hangup/error always
//! reported regardless of requested interest.
//!
//! This is the only crate in the workspace containing `unsafe` code: the
//! raw syscall declarations against the libc the standard library already
//! links. Everything above the syscall boundary is safe Rust, and the
//! public API is entirely safe.

#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Which readiness events a registration asks for. Hangup and error are
/// always reported, even for an empty interest set — a parked connection
/// with no interest still learns promptly that the peer went away.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or EOF).
    pub readable: bool,
    /// Wake when the descriptor can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Self = Self {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Self = Self {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Self = Self {
        readable: true,
        writable: true,
    };
    /// Neither — hangup/error notification only.
    pub const NONE: Self = Self {
        readable: false,
        writable: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: usize,
    /// Reading will make progress (data, EOF, or a pending error).
    pub readable: bool,
    /// Writing will make progress (or fail fast with the pending error).
    pub writable: bool,
    /// The peer closed or the descriptor errored.
    pub hangup: bool,
}

pub use backend::Poller;

/// Builds a connected [`Waker`]/[`WakeReader`] pair (a nonblocking
/// socketpair self-pipe). Register the reader's descriptor with the
/// poller; [`Waker::wake`] from any thread makes the next (or current)
/// [`Poller::wait`] return with the reader's token readable.
///
/// # Errors
///
/// Propagates socketpair creation failure.
pub fn waker() -> io::Result<(Waker, WakeReader)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReader { rx }))
}

/// The writing half of a self-pipe: cheap, thread-safe wakeups.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Wakes the poller the paired [`WakeReader`] is registered with.
    /// A full pipe means a wakeup is already pending — that is success.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The reading half of a self-pipe: register its descriptor, drain it on
/// wake.
#[derive(Debug)]
pub struct WakeReader {
    rx: UnixStream,
}

impl WakeReader {
    /// The descriptor to register with the poller.
    pub fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every pending wakeup byte (level-triggered pollers would
    /// otherwise report the pipe readable forever).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// Rounds a timeout up to whole milliseconds for the syscall (rounding
/// down could turn a short timeout into a hot spin), clamped to `c_int`.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod backend {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`; packed on x86-64 (the kernel ABI quirk),
    /// naturally aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP; // hangup is always interesting
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// Level-triggered epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: c_int,
    }

    // The epoll fd is just an integer handle; every syscall on it is
    // thread-safe.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        /// Creates a new poller.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1` failure.
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall, no pointers involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token as u64,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Starts watching `fd` under `token`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure (e.g. the fd is already
        /// registered).
        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest set (and token) of a registered `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels demanded a non-null event for DEL;
            // passing one is always valid.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Blocks until readiness or timeout; fills `events` (cleared
        /// first) and returns the count. A signal interruption returns
        /// `Ok(0)` — indistinguishable from a timeout, which a readiness
        /// loop handles anyway.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failure.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            // SAFETY: `raw` is a valid buffer of 256 entries for the
            // duration of the call.
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    raw.as_mut_ptr(),
                    raw.len() as c_int,
                    timeout_ms(timeout),
                )
            };
            if rc < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for r in raw.iter().take(rc as usize) {
                let bits = r.events;
                let hup = bits & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0;
                events.push(Event {
                    token: r.data as usize,
                    // Error/hangup count as readable *and* writable so the
                    // state machine's next read/write observes the failure
                    // instead of sleeping on it.
                    readable: bits & EPOLLIN != 0 || hup,
                    writable: bits & EPOLLOUT != 0 || bits & (EPOLLHUP | EPOLLERR) != 0,
                    hangup: hup,
                });
            }
            Ok(rc as usize)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing an owned fd exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::{timeout_ms, Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_uint};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    /// `poll(2)`-backed poller: the registration table lives in user
    /// space and is rebuilt into a `pollfd` array per wait.
    #[derive(Debug)]
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, (usize, Interest)>>,
    }

    impl Poller {
        /// Creates a new poller.
        ///
        /// # Errors
        ///
        /// Infallible on this backend (signature matches epoll).
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registered: Mutex::new(HashMap::new()),
            })
        }

        /// Starts watching `fd` under `token`.
        ///
        /// # Errors
        ///
        /// `AlreadyExists` if the fd is registered.
        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut map = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            if map.contains_key(&fd) {
                return Err(io::Error::from(io::ErrorKind::AlreadyExists));
            }
            map.insert(fd, (token, interest));
            Ok(())
        }

        /// Changes the interest set (and token) of a registered `fd`.
        ///
        /// # Errors
        ///
        /// `NotFound` if the fd is not registered.
        pub fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut map = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            match map.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::from(io::ErrorKind::NotFound)),
            }
        }

        /// Stops watching `fd`.
        ///
        /// # Errors
        ///
        /// `NotFound` if the fd is not registered.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut map = self.registered.lock().unwrap_or_else(|e| e.into_inner());
            match map.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::from(io::ErrorKind::NotFound)),
            }
        }

        /// Blocks until readiness or timeout; fills `events` (cleared
        /// first) and returns the count.
        ///
        /// # Errors
        ///
        /// Propagates `poll(2)` failure.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let (mut fds, tokens): (Vec<PollFd>, Vec<usize>) = {
                let map = self.registered.lock().unwrap_or_else(|e| e.into_inner());
                map.iter()
                    .map(|(&fd, &(token, interest))| {
                        let mut ev = 0;
                        if interest.readable {
                            ev |= POLLIN;
                        }
                        if interest.writable {
                            ev |= POLLOUT;
                        }
                        (
                            PollFd {
                                fd,
                                events: ev,
                                revents: 0,
                            },
                            token,
                        )
                    })
                    .unzip()
            };
            // SAFETY: `fds` is a valid array of `fds.len()` entries for
            // the duration of the call.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms(timeout)) };
            if rc < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for (pfd, &token) in fds.iter().zip(&tokens) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                let hup = bits & (POLLHUP | POLLERR) != 0;
                events.push(Event {
                    token,
                    readable: bits & POLLIN != 0 || hup,
                    writable: bits & POLLOUT != 0 || hup,
                    hangup: hup,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(not(unix))]
compile_error!("the vendored polling shim supports Unix platforms only");

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::time::Instant;

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let (waker, reader) = waker().unwrap();
        poller
            .register(reader.raw_fd(), 7, Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        // Nothing pending: times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        waker.wake();
        waker.wake(); // coalesces
        let n = poller.wait(&mut events, None).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        reader.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained pipe must not stay readable");
    }

    #[test]
    fn socketpair_readiness_is_level_triggered() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        poller
            .register(b.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        (&a).write_all(&[1, 2, 3]).unwrap();
        let mut events = Vec::new();
        // Level-triggered: unread bytes keep reporting readable.
        for _ in 0..2 {
            poller.wait(&mut events, None).unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.readable));
        }
        // Interest off: no more events despite pending bytes.
        poller.reregister(b.as_raw_fd(), 1, Interest::NONE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events
            .iter()
            .any(|e| e.token == 1 && e.readable && !e.hangup));
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn hangup_is_reported_without_read_interest() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 3, Interest::NONE).unwrap();
        drop(a);
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.hangup));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn sub_millisecond_timeouts_do_not_spin_hot() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_micros(200)))
            .unwrap();
        // Rounded up to 1ms, not truncated to a 0ms busy-return.
        assert!(start.elapsed() >= Duration::from_micros(200));
    }
}
