//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of criterion's API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model (simple but honest): each benchmark is warmed up for a
//! fixed wall-clock budget, then timed over `sample_size` samples of
//! auto-scaled iteration counts; the per-iteration **median** of samples is
//! reported. No statistics files, no plots — one line per benchmark on
//! stdout, machine-grepable as `name ... time: <ns> ns/iter`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up: Duration::from_millis(60),
            measurement: Duration::from_millis(240),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) harness CLI arguments, mirroring criterion's
    /// builder so the generated `main` keeps its shape.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Number of measurement samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            name,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(
            &full,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.label);
        run_one(
            &full,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark: `name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Measures `f`, consuming its output via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and calibration of iterations per sample.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warm_up || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let budget = self.measurement.as_nanos() / self.sample_size.max(1) as u128;
        self.iters_per_sample = ((budget / per_iter.max(1)) as u64).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        ns[ns.len() / 2]
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_size,
        warm_up,
        measurement,
    };
    f(&mut bencher);
    let ns = bencher.median_ns_per_iter();
    if ns.is_nan() {
        println!("{name:<48} (no measurement — closure never called iter)");
    } else {
        println!("{name:<48} time: {ns:>14.1} ns/iter");
    }
}

/// Bundles benchmark functions into one group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = false;
        c.bench_function("trivial", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("param", 42), &42usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.bench_function("plain", |b| b.iter(|| black_box(0)));
        group.finish();
    }
}
