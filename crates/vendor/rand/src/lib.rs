//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the (small) subset of the `rand` 0.8 API the
//! workspace actually uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256** seeded via SplitMix64
//! — deterministic, high-quality, and `Clone`/`Debug` like the original.
//!
//! It is a clean-room implementation: only the API shape is shared with the
//! real crate, none of its code. Determinism guarantees hold *within* this
//! workspace (same seed ⇒ same stream), not across `rand` versions.

#![forbid(unsafe_code)]

/// Low-level generator contract: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.25f32..0.75);
            assert!((-0.25..0.75).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
            let w = rng.gen_range(0..=2usize);
            assert!(w <= 2);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
