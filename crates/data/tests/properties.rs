//! Property tests for the synthetic data substrate.

use circnn_data::synth::{class_prototype, generate, SyntheticSpec};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (
        2usize..6,
        1usize..4,
        6usize..20,
        6usize..20,
        0usize..3,
        0.0f32..0.8,
    )
        .prop_map(|(classes, channels, h, w, jitter, noise)| SyntheticSpec {
            classes,
            channels,
            height: h,
            width: w,
            components: 3,
            jitter,
            noise_std: noise,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generation_is_deterministic(spec in spec_strategy(), n in 1usize..24, seed in any::<u64>()) {
        let a = generate("p", &spec, n, seed);
        let b = generate("p", &spec, n, seed);
        prop_assert_eq!(a.images.data(), b.images.data());
        prop_assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn shapes_and_labels_are_valid(spec in spec_strategy(), n in 1usize..24, seed in any::<u64>()) {
        let ds = generate("p", &spec, n, seed);
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(
            ds.images.dims(),
            &[n, spec.channels, spec.height, spec.width]
        );
        prop_assert!(ds.labels.iter().all(|&l| l < spec.classes));
        prop_assert!(ds.images.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn class_balance_is_within_one(spec in spec_strategy(), mult in 1usize..5, seed in any::<u64>()) {
        let n = spec.classes * mult;
        let ds = generate("p", &spec, n, seed);
        let counts = ds.class_counts();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced: {counts:?}");
    }

    #[test]
    fn prototypes_are_seed_stable_and_class_distinct(spec in spec_strategy(), seed in any::<u64>()) {
        let p0a = class_prototype(&spec, 0, seed);
        let p0b = class_prototype(&spec, 0, seed);
        prop_assert_eq!(p0a.data(), p0b.data());
        if spec.classes > 1 {
            let p1 = class_prototype(&spec, 1, seed);
            let dist: f32 = p0a
                .data()
                .iter()
                .zip(p1.data())
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            prop_assert!(dist > 1e-6, "distinct classes must have distinct prototypes");
        }
    }

    #[test]
    fn zero_noise_zero_jitter_samples_equal_prototype(
        classes in 2usize..5, seed in any::<u64>()
    ) {
        let spec = SyntheticSpec {
            classes,
            channels: 1,
            height: 8,
            width: 8,
            components: 3,
            jitter: 0,
            noise_std: 0.0,
        };
        let ds = generate("p", &spec, classes, seed);
        for i in 0..ds.len() {
            let proto = class_prototype(&spec, ds.labels[i], seed);
            let img = ds.image(i);
            for (a, b) in img.data().iter().zip(proto.data()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
