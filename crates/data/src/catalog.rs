//! Dataset presets matching the geometries of the paper's benchmarks.
//!
//! | Preset | Stands in for | Geometry | Classes |
//! |---|---|---|---|
//! | [`mnist_like`] | MNIST | 1×28×28 | 10 |
//! | [`cifar10_like`] | CIFAR-10 | 3×32×32 | 10 |
//! | [`svhn_like`] | SVHN | 3×32×32 | 10 |
//! | [`stl10_like`] | STL-10 | 3×96×96 | 10 |
//! | [`imagenet_surrogate`] | ImageNet (reduced) | 3×64×64 | 20 |
//!
//! Difficulty is staged to mirror the real benchmarks' relative hardness:
//! the MNIST stand-in is nearly clean (models reach high 90s%), the
//! CIFAR-10 stand-in is the noisiest (accuracy well below the MNIST one),
//! SVHN sits between. The ImageNet surrogate reduces resolution and class
//! count so CPU training stays tractable; layer-shape accounting for the
//! real AlexNet lives in `circnn-models`, independent of this data.

use crate::dataset::Dataset;
use crate::synth::{generate, SyntheticSpec};

/// MNIST stand-in: 1×28×28, 10 classes, low noise.
pub fn mnist_like(n: usize, seed: u64) -> Dataset {
    let spec = SyntheticSpec::new(10, 1, 28, 28)
        .with_noise(0.2)
        .with_jitter(2);
    generate("mnist-like", &spec, n, seed.wrapping_add(0xA1))
}

/// CIFAR-10 stand-in: 3×32×32, 10 classes, high noise + jitter (the hard one).
pub fn cifar10_like(n: usize, seed: u64) -> Dataset {
    let spec = SyntheticSpec::new(10, 3, 32, 32)
        .with_noise(0.7)
        .with_jitter(3);
    generate("cifar10-like", &spec, n, seed.wrapping_add(0xB2))
}

/// SVHN stand-in: 3×32×32, 10 classes, moderate noise.
pub fn svhn_like(n: usize, seed: u64) -> Dataset {
    let spec = SyntheticSpec::new(10, 3, 32, 32)
        .with_noise(0.45)
        .with_jitter(3);
    generate("svhn-like", &spec, n, seed.wrapping_add(0xC3))
}

/// STL-10 stand-in: 3×96×96, 10 classes.
pub fn stl10_like(n: usize, seed: u64) -> Dataset {
    let spec = SyntheticSpec::new(10, 3, 96, 96)
        .with_noise(0.5)
        .with_jitter(5);
    generate("stl10-like", &spec, n, seed.wrapping_add(0xD4))
}

/// Reduced ImageNet surrogate: 3×64×64, 20 classes.
///
/// The real AlexNet/ImageNet numbers in the paper concern *layer shapes*
/// (storage) and *hardware throughput*; those are computed from the true
/// 224×224/1000-class AlexNet descriptor in `circnn-models`. This dataset
/// exists so the AlexNet-surrogate network can actually be trained end to
/// end on a CPU.
pub fn imagenet_surrogate(n: usize, seed: u64) -> Dataset {
    let spec = SyntheticSpec::new(20, 3, 64, 64)
        .with_noise(0.6)
        .with_jitter(4);
    generate("imagenet-surrogate", &spec, n, seed.wrapping_add(0xE5))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometries_match_the_paper_benchmarks() {
        assert_eq!(mnist_like(4, 0).images.dims(), &[4, 1, 28, 28]);
        assert_eq!(cifar10_like(4, 0).images.dims(), &[4, 3, 32, 32]);
        assert_eq!(svhn_like(4, 0).images.dims(), &[4, 3, 32, 32]);
        assert_eq!(stl10_like(2, 0).images.dims(), &[2, 3, 96, 96]);
        assert_eq!(imagenet_surrogate(2, 0).images.dims(), &[2, 3, 64, 64]);
    }

    #[test]
    fn class_counts() {
        assert_eq!(mnist_like(4, 0).num_classes, 10);
        assert_eq!(imagenet_surrogate(2, 0).num_classes, 20);
    }

    #[test]
    fn presets_use_distinct_seeds() {
        // Same n and seed must still give different data across presets
        // (they perturb the seed differently) — prevents accidental reuse.
        let a = cifar10_like(4, 1);
        let b = svhn_like(4, 1);
        assert_ne!(a.images.data(), b.images.data());
    }

    #[test]
    fn all_presets_are_learnable_well_above_chance() {
        // Nearest-prototype is a crude lower bound on learnability (CNNs do
        // far better — see the Fig.-7b harness); every preset must clear
        // chance (10%) by a wide margin, or the accuracy experiments would
        // be measuring noise. The MNIST-vs-CIFAR *trained* difficulty
        // ordering is asserted where it belongs, on trained models, in the
        // integration tests.
        use crate::synth::class_prototype;
        let nearest_acc = |ds: &Dataset, spec: &SyntheticSpec, seed: u64| -> f32 {
            let protos: Vec<_> = (0..ds.num_classes)
                .map(|c| class_prototype(spec, c, seed))
                .collect();
            let mut correct = 0;
            for i in 0..ds.len() {
                let img = ds.image(i);
                let mut best = (0usize, f32::INFINITY);
                for (c, p) in protos.iter().enumerate() {
                    let d: f32 = img
                        .data()
                        .iter()
                        .zip(p.data())
                        .map(|(a, b)| (a - b).powi(2))
                        .sum();
                    if d < best.1 {
                        best = (c, d);
                    }
                }
                if best.0 == ds.labels[i] {
                    correct += 1;
                }
            }
            correct as f32 / ds.len() as f32
        };
        let mnist_spec = SyntheticSpec::new(10, 1, 28, 28)
            .with_noise(0.2)
            .with_jitter(2);
        let cifar_spec = SyntheticSpec::new(10, 3, 32, 32)
            .with_noise(0.7)
            .with_jitter(3);
        let m = mnist_like(50, 3);
        let c = cifar10_like(50, 3);
        let am = nearest_acc(&m, &mnist_spec, 3u64.wrapping_add(0xA1));
        let ac = nearest_acc(&c, &cifar_spec, 3u64.wrapping_add(0xB2));
        assert!(
            am > 0.4,
            "mnist-like nearest-prototype accuracy {am} too close to chance"
        );
        assert!(
            ac > 0.4,
            "cifar-like nearest-prototype accuracy {ac} too close to chance"
        );
    }
}
