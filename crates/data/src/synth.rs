//! Class-prototype synthetic image generation.
//!
//! Each class is a deterministic *prototype*: a superposition of a few
//! low-frequency 2-D cosine gratings whose frequencies, phases and channel
//! mixes are drawn from the class's seed. A sample is its class prototype,
//! cyclically shifted by a small random jitter, plus white noise. The
//! resulting task has the two properties the Fig.-7 accuracy experiments
//! need: it is genuinely learnable (prototypes are distinct), and it is not
//! trivially linearly separable at higher noise/jitter (convolution and
//! pooling actually help, as they do on the real benchmarks).

use circnn_tensor::init::seeded_rng;
use circnn_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;

/// Generation parameters for a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Cosine components per prototype channel.
    pub components: usize,
    /// Maximum cyclic shift (pixels) applied per sample.
    pub jitter: usize,
    /// Standard deviation of the additive white noise.
    pub noise_std: f32,
}

impl SyntheticSpec {
    /// A spec with sensible defaults for the given geometry.
    pub fn new(classes: usize, channels: usize, height: usize, width: usize) -> Self {
        Self {
            classes,
            channels,
            height,
            width,
            components: 3,
            jitter: 2,
            noise_std: 0.25,
        }
    }

    /// Sets the noise level (builder style).
    #[must_use]
    pub fn with_noise(mut self, noise_std: f32) -> Self {
        self.noise_std = noise_std;
        self
    }

    /// Sets the jitter radius (builder style).
    #[must_use]
    pub fn with_jitter(mut self, jitter: usize) -> Self {
        self.jitter = jitter;
        self
    }
}

/// The deterministic prototype of one class: `[C, H, W]` values in ≈[−1, 1].
pub fn class_prototype(spec: &SyntheticSpec, class: usize, seed: u64) -> Tensor {
    let mut rng = seeded_rng(seed ^ (class as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let (c, h, w) = (spec.channels, spec.height, spec.width);
    let mut data = vec![0.0f32; c * h * w];
    for ch in 0..c {
        // Random low-frequency gratings; distinct per (class, channel).
        let comps: Vec<(f32, f32, f32, f32)> = (0..spec.components)
            .map(|_| {
                (
                    rng.gen_range(1..=4) as f32,                   // fy
                    rng.gen_range(1..=4) as f32,                   // fx
                    rng.gen_range(0.0f32..core::f32::consts::TAU), // phase
                    rng.gen_range(0.5f32..1.0),                    // amplitude
                )
            })
            .collect();
        let norm = 1.0 / spec.components as f32;
        for y in 0..h {
            for x in 0..w {
                let mut v = 0.0f32;
                for &(fy, fx, phase, amp) in &comps {
                    let t = core::f32::consts::TAU
                        * (fy * y as f32 / h as f32 + fx * x as f32 / w as f32)
                        + phase;
                    v += amp * t.cos();
                }
                data[(ch * h + y) * w + x] = v * norm;
            }
        }
    }
    Tensor::from_vec(data, &[c, h, w])
}

/// Generates `n` labeled samples (shuffled, classes balanced up to
/// remainder) from the spec. The same `(spec, n, seed)` always produces the
/// same dataset.
///
/// # Panics
///
/// Panics if `n == 0` or `spec.classes == 0`.
pub fn generate(name: &str, spec: &SyntheticSpec, n: usize, seed: u64) -> Dataset {
    assert!(n > 0, "empty dataset requested");
    assert!(spec.classes > 0, "dataset needs at least one class");
    let mut rng = seeded_rng(seed);
    let prototypes: Vec<Tensor> = (0..spec.classes)
        .map(|c| class_prototype(spec, c, seed))
        .collect();
    let (c, h, w) = (spec.channels, spec.height, spec.width);
    let per = c * h * w;
    // Balanced, shuffled label sequence.
    let mut labels: Vec<usize> = (0..n).map(|i| i % spec.classes).collect();
    labels.shuffle(&mut rng);
    let mut data = vec![0.0f32; n * per];
    for (i, &label) in labels.iter().enumerate() {
        let proto = prototypes[label].data();
        let dy = if spec.jitter == 0 {
            0
        } else {
            rng.gen_range(0..=2 * spec.jitter) as isize - spec.jitter as isize
        };
        let dx = if spec.jitter == 0 {
            0
        } else {
            rng.gen_range(0..=2 * spec.jitter) as isize - spec.jitter as isize
        };
        let out = &mut data[i * per..(i + 1) * per];
        for ch in 0..c {
            for y in 0..h {
                let sy = (y as isize + dy).rem_euclid(h as isize) as usize;
                for x in 0..w {
                    let sx = (x as isize + dx).rem_euclid(w as isize) as usize;
                    let noise = spec.noise_std * sample_normal(&mut rng);
                    out[(ch * h + y) * w + x] = proto[(ch * h + sy) * w + sx] + noise;
                }
            }
        }
    }
    Dataset::new(
        name,
        Tensor::from_vec(data, &[n, c, h, w]),
        labels,
        spec.classes,
    )
}

/// One standard-normal sample (Box–Muller, avoids a `rand_distr` dep).
fn sample_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SyntheticSpec {
        SyntheticSpec::new(4, 1, 12, 12)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate("a", &spec(), 20, 7);
        let b = generate("a", &spec(), 20, 7);
        assert_eq!(a.images.data(), b.images.data());
        assert_eq!(a.labels, b.labels);
        let c = generate("a", &spec(), 20, 8);
        assert_ne!(a.images.data(), c.images.data());
    }

    #[test]
    fn classes_are_balanced() {
        let ds = generate("b", &spec(), 40, 1);
        assert_eq!(ds.class_counts(), vec![10, 10, 10, 10]);
    }

    #[test]
    fn prototypes_are_distinct() {
        let s = spec();
        let p0 = class_prototype(&s, 0, 3);
        let p1 = class_prototype(&s, 1, 3);
        let dist: f32 = p0
            .data()
            .iter()
            .zip(p1.data())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            / p0.len() as f32;
        assert!(dist > 0.05, "prototype distance too small: {dist}");
    }

    #[test]
    fn samples_cluster_around_their_prototype() {
        // With modest noise, a sample is closer to its own prototype than
        // to other classes' — nearest-prototype is already a decent
        // classifier, so a CNN certainly has signal to learn.
        let s = SyntheticSpec {
            noise_std: 0.15,
            jitter: 0,
            ..spec()
        };
        let ds = generate("c", &s, 40, 11);
        let protos: Vec<Tensor> = (0..4).map(|c| class_prototype(&s, c, 11)).collect();
        let mut correct = 0;
        for i in 0..ds.len() {
            let img = ds.image(i);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (c, p) in protos.iter().enumerate() {
                let d: f32 = img
                    .data()
                    .iter()
                    .zip(p.data())
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == ds.labels[i] {
                correct += 1;
            }
        }
        assert!(correct >= 36, "nearest-prototype got {correct}/40");
    }

    #[test]
    fn noise_increases_sample_spread() {
        let quiet = SyntheticSpec {
            noise_std: 0.01,
            jitter: 0,
            ..spec()
        };
        let loud = SyntheticSpec {
            noise_std: 0.5,
            jitter: 0,
            ..spec()
        };
        let spread = |s: &SyntheticSpec| {
            let ds = generate("d", s, 8, 2);
            let proto = class_prototype(s, ds.labels[0], 2);
            ds.image(0)
                .data()
                .iter()
                .zip(proto.data())
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f32>()
        };
        assert!(spread(&loud) > 10.0 * spread(&quiet));
    }

    #[test]
    fn values_are_reasonably_bounded() {
        let ds = generate("e", &spec(), 10, 3);
        assert!(ds.images.data().iter().all(|v| v.abs() < 4.0));
        assert!(ds.images.data().iter().any(|v| v.abs() > 0.05));
    }

    #[test]
    fn multi_channel_generation() {
        let s = SyntheticSpec::new(3, 3, 8, 8);
        let ds = generate("rgb", &s, 9, 4);
        assert_eq!(ds.images.dims(), &[9, 3, 8, 8]);
    }
}
