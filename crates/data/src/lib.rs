//! # circnn-data
//!
//! Synthetic datasets standing in for the paper's benchmarks.
//!
//! The original evaluation uses MNIST, CIFAR-10, SVHN, STL-10 and ImageNet.
//! Those corpora are not available offline here, and — per the reproduction's
//! substitution rule (DESIGN.md §2) — the experiments only need *learnable
//! classification tasks of the same tensor geometry*: the storage ratios are
//! pure functions of layer shapes, and the accuracy comparisons (dense vs.
//! block-circulant, Fig. 7b/c) need a task where both can be trained to a
//! meaningful accuracy on a CPU in seconds.
//!
//! [`synth`] generates class-prototype image datasets: each class is a
//! deterministic superposition of low-frequency 2-D cosines; samples are
//! spatially jittered, noisy copies. Difficulty is tunable via noise and
//! jitter. [`catalog`] provides presets with the exact shapes of the
//! paper's benchmarks (28×28×1, 32×32×3, 96×96×3, and a reduced ImageNet
//! surrogate). [`toy`] has XOR/blobs for unit-scale tests.
//!
//! ## Example
//!
//! ```
//! use circnn_data::catalog;
//!
//! let ds = catalog::mnist_like(64, 0);
//! assert_eq!(ds.images.dims(), &[64, 1, 28, 28]);
//! assert_eq!(ds.num_classes, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;

pub mod catalog;
pub mod synth;
pub mod toy;

pub use dataset::Dataset;
