//! The labeled image dataset container.

use circnn_tensor::Tensor;

/// A labeled image classification dataset.
///
/// Images are stored `[N, C, H, W]`; `labels[i]` is the class index of
/// sample `i`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (for report tables).
    pub name: String,
    /// Image batch `[N, C, H, W]`.
    pub images: Tensor,
    /// Class index per sample.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shapes.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank-4, the leading dimension disagrees
    /// with `labels.len()`, or any label is out of range.
    pub fn new(
        name: impl Into<String>,
        images: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        assert_eq!(images.shape().rank(), 4, "images must be [N, C, H, W]");
        assert_eq!(
            images.dims()[0],
            labels.len(),
            "images/labels length mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Self {
            name: name.into(),
            images,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-image `[C, H, W]` shape.
    pub fn image_dims(&self) -> (usize, usize, usize) {
        let d = self.images.dims();
        (d[1], d[2], d[3])
    }

    /// Flattened input length `C·H·W`.
    pub fn input_len(&self) -> usize {
        let (c, h, w) = self.image_dims();
        c * h * w
    }

    /// One image as a `[C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn image(&self, i: usize) -> Tensor {
        self.images.index_axis0(i)
    }

    /// Splits off the first `n` samples as one dataset and the rest as
    /// another (generation is already shuffled, so this is a random split).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `n >= self.len()`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n > 0 && n < self.len(), "split point {n} out of range");
        let dims = self.images.dims();
        let per = self.input_len();
        let head = Tensor::from_vec(
            self.images.data()[..n * per].to_vec(),
            &[n, dims[1], dims[2], dims[3]],
        );
        let tail = Tensor::from_vec(
            self.images.data()[n * per..].to_vec(),
            &[self.len() - n, dims[1], dims[2], dims[3]],
        );
        (
            Dataset::new(
                format!("{}-train", self.name),
                head,
                self.labels[..n].to_vec(),
                self.num_classes,
            ),
            Dataset::new(
                format!("{}-test", self.name),
                tail,
                self.labels[n..].to_vec(),
                self.num_classes,
            ),
        )
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images = Tensor::from_vec(
            (0..2 * 1 * 2 * 2).map(|i| i as f32).collect(),
            &[2, 1, 2, 2],
        );
        Dataset::new("tiny", images, vec![0, 1], 2)
    }

    #[test]
    fn accessors() {
        let ds = tiny();
        assert_eq!(ds.len(), 2);
        assert!(!ds.is_empty());
        assert_eq!(ds.image_dims(), (1, 2, 2));
        assert_eq!(ds.input_len(), 4);
        assert_eq!(ds.image(1).data(), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(ds.class_counts(), vec![1, 1]);
    }

    #[test]
    fn split_partitions_samples() {
        let images = Tensor::zeros(&[10, 1, 2, 2]);
        let ds = Dataset::new("x", images, (0..10).map(|i| i % 2).collect(), 2);
        let (a, b) = ds.split_at(7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        assert_eq!(a.name, "x-train");
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn validates_labels() {
        let _ = Dataset::new("bad", Tensor::zeros(&[1, 1, 2, 2]), vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn validates_lengths() {
        let _ = Dataset::new("bad", Tensor::zeros(&[2, 1, 2, 2]), vec![0], 2);
    }
}
