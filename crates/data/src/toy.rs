//! Toy tasks for unit-scale training tests.

use circnn_tensor::init::seeded_rng;
use circnn_tensor::Tensor;
use rand::Rng;

/// The XOR problem: 4 points, 2 classes — the canonical "needs a hidden
/// layer" sanity check.
pub fn xor() -> (Tensor, Vec<usize>) {
    let inputs = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
    (inputs, vec![0, 1, 1, 0])
}

/// Gaussian blobs: `classes` clusters in `dim`-dimensional space with unit
/// center spacing and the given spread. Linearly separable for small
/// `spread`, overlapping for large.
///
/// # Panics
///
/// Panics if any of `n`, `classes`, `dim` is zero.
pub fn blobs(n: usize, classes: usize, dim: usize, spread: f32, seed: u64) -> (Tensor, Vec<usize>) {
    assert!(n > 0 && classes > 0 && dim > 0, "degenerate blob spec");
    let mut rng = seeded_rng(seed);
    // Fixed, well-separated centers on coordinate axes (scaled).
    let centers: Vec<Vec<f32>> = (0..classes)
        .map(|c| {
            (0..dim)
                .map(|d| if d % classes == c { 2.0 } else { 0.0 })
                .collect()
        })
        .collect();
    let mut data = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        labels.push(c);
        for d in 0..dim {
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let z = ((-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()) as f32;
            data.push(centers[c][d] + spread * z);
        }
    }
    (Tensor::from_vec(data, &[n, dim]), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_is_the_classic_four_points() {
        let (x, y) = xor();
        assert_eq!(x.dims(), &[4, 2]);
        assert_eq!(y, vec![0, 1, 1, 0]);
    }

    #[test]
    fn blobs_cluster_near_centers() {
        let (x, y) = blobs(60, 3, 6, 0.1, 5);
        assert_eq!(x.dims(), &[60, 6]);
        // Class 0 samples should have coordinate 0 near 2.0.
        for i in 0..60 {
            if y[i] == 0 {
                assert!((x.at(&[i, 0]) - 2.0).abs() < 0.6);
            }
        }
    }

    #[test]
    fn blobs_are_deterministic() {
        let (a, _) = blobs(10, 2, 3, 0.5, 9);
        let (b, _) = blobs(10, 2, 3, 0.5, 9);
        assert_eq!(a.data(), b.data());
    }
}
