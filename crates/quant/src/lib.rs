//! # circnn-quant
//!
//! Fixed-point quantization substrate.
//!
//! The paper's pipeline quantizes weights to **16-bit fixed point** (§3.4:
//! "16-bit weight quantization is adopted for model size reduction",
//! contributing a 2× storage factor on top of the circulant compression)
//! and the hardware datapath runs in 16-bit fixed point (§4.2). §5.2 also
//! evaluates an aggressive 4-bit mode whose accuracy collapses (<20 % for
//! AlexNet) — 4 bits exists only to compare energy against equally-crippled
//! baselines.
//!
//! This crate provides both halves of that story:
//!
//! * [`fake_quantize`] / [`fake_quantize_layer`] — round weights through a
//!   `b`-bit symmetric grid in place, so any trained network (dense or
//!   block-circulant, they share the `Layer` trait) can be evaluated at a
//!   given precision. The Fig.-7 accuracy-vs-bits sweep uses this.
//! * [`QuantizedVector`] — actual integer storage with scale, for byte
//!   accounting.
//! * [`fixed_circulant_correlate`] — a circulant matvec executed on the
//!   bit-accurate fixed-point FFT from `circnn-fft::fixed`, modelling the
//!   hardware datapath end to end.
//!
//! ## Calibration vs. fake-quantize vs. the serving path
//!
//! [`fake_quantize`] *measures* a precision (round through the grid, keep
//! f32, report [`QuantStats`]) — it answers "what would b bits cost in
//! accuracy". The serving path in `circnn-core` (`QuantizedOperator` and
//! friends) *commits* to one: it calls this crate's symmetric-grid
//! rounding once at build time to calibrate per-block-row scales, then
//! stores the weight **spectra** as resident i16 codes and runs the
//! frequency-domain MAC in i16×i16→i32 with the dequant multiply fused
//! into the inverse-FFT epilogue. Registration rejects (typed
//! `QuantOverflow`) any format whose worst-case accumulation could wrap
//! i32, so the sweep-side verdict ("12–16 bits is safe") and the
//! serving-side guarantee stay consistent.
//!
//! ## Example
//!
//! ```
//! use circnn_quant::fake_quantize;
//!
//! let mut w = vec![0.801, -0.299, 0.5004, 0.0];
//! let stats = fake_quantize(&mut w, 16);
//! assert!(stats.snr_db > 60.0);       // 16-bit is essentially lossless
//! let mut w4 = vec![0.801, -0.299, 0.5004, 0.0];
//! let stats4 = fake_quantize(&mut w4, 4);
//! assert!(stats4.snr_db < stats.snr_db); // 4-bit is badly degraded
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use circnn_fft::fixed::{FixedFftPlan, QFormat};
use circnn_fft::Complex;
use circnn_nn::Layer;

/// Statistics of one quantization pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantStats {
    /// The symmetric scale used: `code = round(x / scale)`.
    pub scale: f32,
    /// Signal-to-noise ratio in dB (∞ for exact).
    pub snr_db: f64,
    /// Largest absolute rounding error.
    pub max_err: f32,
    /// Bit width applied.
    pub bits: u32,
}

/// Rounds `data` in place through a symmetric `bits`-wide integer grid
/// scaled to the tensor's max magnitude, returning error statistics.
///
/// # Panics
///
/// Panics if `bits` is 0 or exceeds 24, or `data` is empty.
pub fn fake_quantize(data: &mut [f32], bits: u32) -> QuantStats {
    assert!(bits > 0 && bits <= 24, "bits must be in 1..=24");
    assert!(!data.is_empty(), "cannot quantize an empty tensor");
    let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let levels = (1i64 << (bits - 1)) - 1;
    if max_abs == 0.0 {
        return QuantStats {
            scale: 1.0,
            snr_db: f64::INFINITY,
            max_err: 0.0,
            bits,
        };
    }
    let scale = max_abs / levels as f32;
    let mut sig = 0.0f64;
    let mut err = 0.0f64;
    let mut max_err = 0.0f32;
    for v in data.iter_mut() {
        let q = (*v / scale)
            .round()
            .clamp(-(levels as f32) - 1.0, levels as f32)
            * scale;
        let e = (q - *v).abs();
        sig += f64::from(*v) * f64::from(*v);
        err += f64::from(e) * f64::from(e);
        max_err = max_err.max(e);
        *v = q;
    }
    let snr_db = if err == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / err).log10()
    };
    QuantStats {
        scale,
        snr_db,
        max_err,
        bits,
    }
}

/// Quantizes every parameter group of a layer (or whole network — anything
/// implementing `Layer`) in place. Returns per-group statistics.
pub fn fake_quantize_layer(layer: &mut dyn Layer, bits: u32) -> Vec<QuantStats> {
    let mut stats = Vec::new();
    layer.visit_params(&mut |param, _| {
        if !param.is_empty() {
            stats.push(fake_quantize(param, bits));
        }
    });
    stats
}

/// An actually-stored integer vector with its scale — what the weight RAM
/// holds.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedVector {
    codes: Vec<i32>,
    scale: f32,
    bits: u32,
}

impl QuantizedVector {
    /// Quantizes a float vector at `bits` wide.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 24, or `data` is empty.
    pub fn quantize(data: &[f32], bits: u32) -> Self {
        assert!(bits > 0 && bits <= 24, "bits must be in 1..=24");
        assert!(!data.is_empty(), "cannot quantize an empty tensor");
        let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let levels = (1i64 << (bits - 1)) - 1;
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / levels as f32
        };
        let codes = data
            .iter()
            .map(|&v| {
                (v / scale)
                    .round()
                    .clamp(-(levels as f32) - 1.0, levels as f32) as i32
            })
            .collect();
        Self { codes, scale, bits }
    }

    /// Reconstructs the float values.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes.iter().map(|&c| c as f32 * self.scale).collect()
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` if no values are stored (not constructible).
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Storage size in bytes (packed at `bits` per value, plus the scale).
    pub fn storage_bytes(&self) -> u64 {
        (self.codes.len() as u64 * u64::from(self.bits)).div_ceil(8) + 4
    }

    /// Bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

/// Serialized size, in bytes, of a network's parameters packed at `bits`
/// per value plus one f32 scale per parameter group — the deployed model
/// size the Fig.-7 storage table abstracts.
///
/// # Examples
///
/// ```
/// use circnn_nn::{Linear, Layer};
/// use circnn_quant::packed_model_bytes;
/// use circnn_tensor::init::seeded_rng;
///
/// let mut layer = Linear::new(&mut seeded_rng(0), 100, 10);
/// let full = packed_model_bytes(&mut layer, 32);
/// let half = packed_model_bytes(&mut layer, 16);
/// assert!(half < full);
/// ```
pub fn packed_model_bytes(layer: &mut dyn Layer, bits: u32) -> u64 {
    let mut total = 0u64;
    layer.visit_params(&mut |param, _| {
        total += (param.len() as u64 * u64::from(bits)).div_ceil(8) + 4;
    });
    total
}

/// Circulant matvec (`y = corr(w, x)`, the first-row convention used across
/// this workspace) executed entirely on the bit-accurate fixed-point FFT —
/// the software model of the paper's 16-bit datapath.
///
/// Returns the result and the SNR versus a double-precision reference.
///
/// # Errors
///
/// Returns [`circnn_fft::FftError`] if `w`/`x` lengths differ or are not a
/// power of two.
pub fn fixed_circulant_correlate(
    w: &[f32],
    x: &[f32],
    format: QFormat,
) -> Result<(Vec<f32>, f64), circnn_fft::FftError> {
    if w.len() != x.len() {
        return Err(circnn_fft::FftError::LengthMismatch {
            expected: w.len(),
            got: x.len(),
        });
    }
    let k = w.len();
    let plan = FixedFftPlan::new(k, format)?;
    let wf: Vec<f64> = w.iter().map(|&v| f64::from(v)).collect();
    let xf: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
    let ws = plan.forward_real(&wf)?;
    let xs = plan.forward_real(&xf)?;
    // conj(W) ∘ X, then inverse via the forward transform of the conjugate
    // (IFFT(z) = conj(FFT(conj(z)))/n; we fold the 1/n into the fixed plan's
    // own scaling by reusing the float inverse on the dequantized spectrum —
    // the datapath under test is the forward FFT pair and the multiply).
    let prod: Vec<Complex<f64>> = ws.iter().zip(&xs).map(|(&a, &b)| a.conj() * b).collect();
    let fplan = circnn_fft::FftPlan::<f64>::new(k)?;
    let mut buf = prod.clone();
    fplan.inverse(&mut buf)?;
    let approx: Vec<f32> = buf.iter().map(|c| c.re as f32).collect();
    // Reference in f64.
    let reference = circnn_fft::convolve::circular_correlate_direct(&wf, &xf);
    let mut sig = 0.0f64;
    let mut err = 0.0f64;
    for (a, r) in approx.iter().zip(&reference) {
        sig += r * r;
        err += (f64::from(*a) - r).powi(2);
    }
    let snr = if err == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / err).log10()
    };
    Ok((approx, snr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use circnn_nn::Linear;
    use circnn_tensor::init::seeded_rng;

    fn seeded(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0) * 0.9
            })
            .collect()
    }

    #[test]
    fn sixteen_bit_is_nearly_lossless() {
        let mut v = seeded(1000, 1);
        let stats = fake_quantize(&mut v, 16);
        assert!(stats.snr_db > 80.0, "snr {}", stats.snr_db);
        assert!(stats.max_err < 1e-4);
    }

    #[test]
    fn four_bit_is_coarse() {
        let mut v = seeded(1000, 2);
        let stats = fake_quantize(&mut v, 4);
        assert!(stats.snr_db < 25.0, "snr {}", stats.snr_db);
        assert!(stats.max_err > 0.01);
    }

    #[test]
    fn snr_is_monotone_in_bits() {
        let mut last = -1.0;
        for bits in [2u32, 4, 6, 8, 12, 16] {
            let mut v = seeded(500, 3);
            let s = fake_quantize(&mut v, bits);
            assert!(s.snr_db > last, "bits {bits}");
            last = s.snr_db;
        }
    }

    #[test]
    fn quantizing_zeroes_is_exact() {
        let mut v = vec![0.0f32; 8];
        let s = fake_quantize(&mut v, 8);
        assert_eq!(s.snr_db, f64::INFINITY);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn layer_quantization_touches_all_groups() {
        let mut rng = seeded_rng(4);
        let mut layer = Linear::new(&mut rng, 8, 4);
        let before = layer.weight().data().to_vec();
        let stats = fake_quantize_layer(&mut layer, 8);
        // Weights and bias = 2 groups, but all-zero bias yields ∞ SNR entry.
        assert_eq!(stats.len(), 2);
        assert_ne!(layer.weight().data(), &before[..]);
    }

    #[test]
    fn quantized_vector_round_trip_and_bytes() {
        let v = seeded(100, 5);
        let q = QuantizedVector::quantize(&v, 16);
        assert_eq!(q.len(), 100);
        assert_eq!(q.storage_bytes(), 200 + 4);
        let back = q.dequantize();
        for (a, b) in back.iter().zip(&v) {
            assert!((a - b).abs() < 2e-4);
        }
        let q4 = QuantizedVector::quantize(&v, 4);
        assert_eq!(q4.storage_bytes(), 50 + 4);
    }

    #[test]
    fn fixed_datapath_correlate_is_accurate_at_16_bits() {
        let k = 64;
        let w = seeded(k, 6);
        let x = seeded(k, 7);
        let (_, snr16) = fixed_circulant_correlate(&w, &x, QFormat::q16()).unwrap();
        let (_, snr4) = fixed_circulant_correlate(&w, &x, QFormat::q4()).unwrap();
        assert!(snr16 > 30.0, "16-bit datapath snr {snr16}");
        assert!(snr4 < 15.0, "4-bit datapath snr {snr4}");
    }

    #[test]
    fn fixed_correlate_validates_lengths() {
        assert!(fixed_circulant_correlate(&[0.0; 4], &[0.0; 8], QFormat::q16()).is_err());
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn rejects_zero_bits() {
        let mut v = vec![1.0f32];
        let _ = fake_quantize(&mut v, 0);
    }
}
