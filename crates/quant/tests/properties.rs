//! Property tests for the quantization substrate.

use circnn_quant::{fake_quantize, QuantizedVector};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fake_quantize_error_is_bounded_by_half_step(
        data in prop::collection::vec(-100.0f32..100.0, 1..64),
        bits in 2u32..17,
    ) {
        let original = data.clone();
        let mut q = data;
        let stats = fake_quantize(&mut q, bits);
        for (a, b) in q.iter().zip(&original) {
            // Error ≤ one step (half-step rounding + clamp edge cases).
            prop_assert!((a - b).abs() <= stats.scale * 1.001 + 1e-6);
        }
        prop_assert!(stats.max_err <= stats.scale * 1.001 + 1e-6);
    }

    #[test]
    fn fake_quantize_is_idempotent(
        data in prop::collection::vec(-10.0f32..10.0, 1..64),
        bits in 2u32..17,
    ) {
        let mut once = data;
        fake_quantize(&mut once, bits);
        let mut twice = once.clone();
        let stats = fake_quantize(&mut twice, bits);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < stats.scale * 1e-3 + 1e-7);
        }
    }

    #[test]
    fn quantized_vector_round_trip_bounded(
        data in prop::collection::vec(-50.0f32..50.0, 1..64),
        bits in 2u32..17,
    ) {
        let q = QuantizedVector::quantize(&data, bits);
        let back = q.dequantize();
        let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let step = if max_abs == 0.0 { 0.0 } else {
            max_abs / ((1i64 << (bits - 1)) - 1) as f32
        };
        for (a, b) in back.iter().zip(&data) {
            prop_assert!((a - b).abs() <= step * 1.001 + 1e-6);
        }
    }

    #[test]
    fn storage_shrinks_with_bits(
        data in prop::collection::vec(-1.0f32..1.0, 8..64),
    ) {
        let b16 = QuantizedVector::quantize(&data, 16).storage_bytes();
        let b8 = QuantizedVector::quantize(&data, 8).storage_bytes();
        let b4 = QuantizedVector::quantize(&data, 4).storage_bytes();
        prop_assert!(b16 > b8 && b8 > b4);
    }

    #[test]
    fn more_bits_never_increase_error(
        data in prop::collection::vec(-10.0f32..10.0, 4..64),
    ) {
        let err_at = |bits: u32| -> f64 {
            let mut v = data.clone();
            let s = fake_quantize(&mut v, bits);
            if s.snr_db.is_infinite() { 1e9 } else { s.snr_db }
        };
        prop_assert!(err_at(16) >= err_at(8) - 1e-6);
        prop_assert!(err_at(8) >= err_at(4) - 1e-6);
    }
}
