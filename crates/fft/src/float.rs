//! Floating-point abstraction so the FFT kernels work in both `f32`
//! (the precision the DNN stack trains in) and `f64` (used by tests to pin
//! tight tolerances).

use core::fmt::{Debug, Display};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod private {
    /// Prevents downstream crates from implementing [`super::Float`], so new
    /// methods can be added without a breaking change (C-SEALED).
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Scalar floating-point type usable inside the FFT kernels.
///
/// This trait is sealed: it is implemented for `f32` and `f64` only.
///
/// # Examples
///
/// ```
/// use circnn_fft::Float;
///
/// fn norm<T: Float>(xs: &[T]) -> T {
///     xs.iter().fold(T::ZERO, |acc, &x| acc + x * x).sqrt()
/// }
///
/// assert!((norm(&[3.0_f64, 4.0]) - 5.0).abs() < 1e-12);
/// ```
pub trait Float:
    Copy
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
    + private::Sealed
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// The constant 2.
    const TWO: Self;
    /// One half.
    const HALF: Self;
    /// Archimedes' constant π.
    const PI: Self;
    /// Machine epsilon.
    const EPSILON: Self;

    /// Converts from `f64`, rounding to the nearest representable value.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` exactly (`f32` widens losslessly).
    fn to_f64(self) -> f64;
    /// Converts from `usize` (may round for very large values).
    fn from_usize(v: usize) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// IEEE-754 maximum of two values.
    fn maximum(self, other: Self) -> Self;
    /// IEEE-754 minimum of two values.
    fn minimum(self, other: Self) -> Self;
    /// Returns `true` if the value is finite (not NaN or ±∞).
    fn is_finite_val(self) -> bool;
}

macro_rules! impl_float {
    ($t:ty) => {
        impl Float for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;
            const PI: Self = core::f64::consts::PI as $t;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline]
            fn maximum(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline]
            fn minimum(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline]
            fn is_finite_val(self) -> bool {
                self.is_finite()
            }
        }
    };
}

impl_float!(f32);
impl_float!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_std() {
        assert_eq!(f64::PI, core::f64::consts::PI);
        assert!((f32::PI - core::f32::consts::PI).abs() < 1e-6);
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert_eq!(f64::TWO * f64::HALF, 1.0);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f64::from_f64(1.5), 1.5);
        assert_eq!(f32::from_f64(1.5), 1.5_f32);
        assert_eq!(f32::from_usize(7), 7.0);
        assert_eq!(2.5_f32.to_f64(), 2.5);
    }

    #[test]
    fn math_functions_delegate() {
        assert!((f64::sqrt(2.0) - core::f64::consts::SQRT_2).abs() < 1e-15);
        assert_eq!((-3.5_f64).abs(), 3.5);
        assert_eq!(Float::maximum(1.0_f64, 2.0), 2.0);
        assert_eq!(Float::minimum(1.0_f64, 2.0), 1.0);
        assert!(1.0_f64.is_finite_val());
        assert!(!(f64::INFINITY).is_finite_val());
        assert!(!(f64::NAN).is_finite_val());
    }

    #[test]
    fn generic_usage_compiles_for_both_widths() {
        fn sum<T: Float>(xs: &[T]) -> T {
            xs.iter().fold(T::ZERO, |a, &b| a + b)
        }
        assert_eq!(sum(&[1.0_f32, 2.0]), 3.0);
        assert_eq!(sum(&[1.0_f64, 2.0]), 3.0);
    }
}
