//! Error type shared by the FFT entry points.

use core::fmt;

/// Errors returned by FFT planning and execution.
///
/// # Examples
///
/// ```
/// use circnn_fft::{FftPlan, FftError};
///
/// let err = FftPlan::<f64>::new(12).unwrap_err();
/// assert!(matches!(err, FftError::NotPowerOfTwo(12)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FftError {
    /// The requested transform length is not a power of two (radix-2 plans
    /// only accept powers of two; CirCNN block sizes are powers of two by
    /// construction).
    NotPowerOfTwo(usize),
    /// A buffer passed to an executor does not match the planned length.
    LengthMismatch {
        /// Length the plan was built for.
        expected: usize,
        /// Length of the buffer actually supplied.
        got: usize,
    },
    /// The requested transform length is zero.
    ZeroLength,
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NotPowerOfTwo(n) => {
                write!(f, "transform length {n} is not a power of two")
            }
            FftError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "buffer length {got} does not match planned length {expected}"
                )
            }
            FftError::ZeroLength => write!(f, "transform length must be nonzero"),
        }
    }
}

impl std::error::Error for FftError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            FftError::NotPowerOfTwo(12).to_string(),
            FftError::LengthMismatch {
                expected: 8,
                got: 4,
            }
            .to_string(),
            FftError::ZeroLength.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<FftError>();
    }
}
