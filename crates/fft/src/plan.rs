//! Planned iterative radix-2 FFT.
//!
//! A [`FftPlan`] precomputes the twiddle-factor table and the bit-reversal
//! permutation for one transform length, then executes decimation-in-time
//! butterflies in place. Planning once and executing many times mirrors how
//! the CirCNN hardware stores twiddles in ROM (paper §4.2: "The memory
//! subsystem is composed of ROM, which is utilized to store the coefficients
//! in FFT/IFFT calculations").

use crate::complex::Complex;
use crate::error::FftError;
use crate::float::Float;

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FftDirection {
    /// Forward DFT: `X[k] = Σ x[j]·e^{-2πijk/n}`.
    Forward,
    /// Inverse DFT, normalized by `1/n`.
    Inverse,
}

/// A reusable radix-2 FFT plan for one power-of-two length.
///
/// # Examples
///
/// Convolving by pointwise spectral multiplication:
///
/// ```
/// use circnn_fft::{FftPlan, Complex};
///
/// # fn main() -> Result<(), circnn_fft::FftError> {
/// let plan = FftPlan::<f64>::new(4)?;
/// let mut x = vec![Complex::from_real(1.0); 4];
/// plan.forward(&mut x)?;
/// // The DFT of an all-ones vector is an impulse of height n at bin 0.
/// assert!((x[0].re - 4.0).abs() < 1e-12);
/// assert!(x[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan<T> {
    n: usize,
    log2n: u32,
    /// Forward twiddles `e^{-2πik/n}` for `k in 0..n/2`.
    twiddles: Vec<Complex<T>>,
    /// Bit-reversal permutation of `0..n`.
    bitrev: Vec<u32>,
}

impl<T: Float> FftPlan<T> {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ZeroLength`] if `n == 0` and
    /// [`FftError::NotPowerOfTwo`] if `n` is not a power of two.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n == 0 {
            return Err(FftError::ZeroLength);
        }
        if !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo(n));
        }
        let log2n = n.trailing_zeros();
        let mut twiddles = Vec::with_capacity(n / 2);
        for k in 0..n / 2 {
            let theta = -T::TWO * T::PI * T::from_usize(k) / T::from_usize(n);
            twiddles.push(Complex::from_polar(T::ONE, theta));
        }
        let mut bitrev = vec![0u32; n];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            *slot = (i as u32).reverse_bits() >> (32 - log2n.max(1)) as u32;
        }
        if n == 1 {
            bitrev[0] = 0;
        }
        Ok(Self {
            n,
            log2n,
            twiddles,
            bitrev,
        })
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate length-0 plan (never constructible,
    /// present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `log₂` of the transform length — the number of butterfly levels, i.e.
    /// the paper's pipeline depth dimension (Fig. 10).
    #[inline]
    pub fn levels(&self) -> u32 {
        self.log2n
    }

    /// Executes an in-place transform in the given direction.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != self.len()`.
    pub fn process(
        &self,
        data: &mut [Complex<T>],
        direction: FftDirection,
    ) -> Result<(), FftError> {
        if data.len() != self.n {
            return Err(FftError::LengthMismatch {
                expected: self.n,
                got: data.len(),
            });
        }
        if self.n == 1 {
            return Ok(());
        }
        // Bit-reversal permutation.
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative decimation-in-time butterflies. `half` doubles each level,
        // exactly the recursive structure of the paper's Fig. 9 unrolled.
        let mut half = 1usize;
        while half < self.n {
            let stride = self.n / (2 * half);
            for start in (0..self.n).step_by(2 * half) {
                for k in 0..half {
                    let tw = self.twiddles[k * stride];
                    let tw = match direction {
                        FftDirection::Forward => tw,
                        FftDirection::Inverse => tw.conj(),
                    };
                    let a = data[start + k];
                    let b = data[start + k + half] * tw;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            half *= 2;
        }
        if direction == FftDirection::Inverse {
            let scale = T::ONE / T::from_usize(self.n);
            for v in data.iter_mut() {
                *v = v.scale(scale);
            }
        }
        Ok(())
    }

    /// In-place forward transform.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on buffer length mismatch.
    #[inline]
    pub fn forward(&self, data: &mut [Complex<T>]) -> Result<(), FftError> {
        self.process(data, FftDirection::Forward)
    }

    /// In-place inverse transform (normalized by `1/n`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on buffer length mismatch.
    #[inline]
    pub fn inverse(&self, data: &mut [Complex<T>]) -> Result<(), FftError> {
        self.process(data, FftDirection::Inverse)
    }

    /// Convenience: forward transform of a real signal into a fresh buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != self.len()`.
    pub fn forward_real(&self, input: &[T]) -> Result<Vec<Complex<T>>, FftError> {
        if input.len() != self.n {
            return Err(FftError::LengthMismatch {
                expected: self.n,
                got: input.len(),
            });
        }
        let mut buf: Vec<Complex<T>> = input.iter().map(|&x| Complex::from_real(x)).collect();
        self.forward(&mut buf)?;
        Ok(buf)
    }
}

/// Reference `O(n²)` DFT used by the test-suite to pin the FFT output bit
/// patterns against the definition.
#[cfg(test)]
pub(crate) fn dft_naive<T: Float>(
    input: &[Complex<T>],
    direction: FftDirection,
) -> Vec<Complex<T>> {
    let n = input.len();
    let sign = match direction {
        FftDirection::Forward => -T::ONE,
        FftDirection::Inverse => T::ONE,
    };
    let mut out = vec![Complex::zero(); n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (j, &x) in input.iter().enumerate() {
            let theta = sign * T::TWO * T::PI * T::from_usize(k * j % n) / T::from_usize(n);
            acc += x * Complex::from_polar(T::ONE, theta);
        }
        if direction == FftDirection::Inverse {
            acc = acc.scale(T::ONE / T::from_usize(n));
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex<f64>], b: &[Complex<f64>]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn seeded_signal(n: usize, seed: u64) -> Vec<Complex<f64>> {
        // Small deterministic LCG; avoids pulling rand into the unit tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let re = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let im = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                Complex::new(re, im)
            })
            .collect()
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(FftPlan::<f64>::new(0).unwrap_err(), FftError::ZeroLength);
        assert_eq!(
            FftPlan::<f64>::new(12).unwrap_err(),
            FftError::NotPowerOfTwo(12)
        );
        assert_eq!(
            FftPlan::<f64>::new(7).unwrap_err(),
            FftError::NotPowerOfTwo(7)
        );
    }

    #[test]
    fn rejects_mismatched_buffers() {
        let plan = FftPlan::<f64>::new(8).unwrap();
        let mut buf = vec![Complex::zero(); 4];
        assert_eq!(
            plan.forward(&mut buf).unwrap_err(),
            FftError::LengthMismatch {
                expected: 8,
                got: 4
            }
        );
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::<f64>::new(1).unwrap();
        let mut buf = vec![Complex::new(3.0, -1.0)];
        plan.forward(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.0, -1.0));
        plan.inverse(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.0, -1.0));
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let plan = FftPlan::<f64>::new(8).unwrap();
        let mut buf = vec![Complex::zero(); 8];
        buf[0] = Complex::one();
        plan.forward(&mut buf).unwrap();
        for v in &buf {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn shifted_impulse_gives_twiddle_ramp() {
        let n = 16;
        let plan = FftPlan::<f64>::new(n).unwrap();
        let mut buf = vec![Complex::zero(); n];
        buf[1] = Complex::one();
        plan.forward(&mut buf).unwrap();
        for (k, v) in buf.iter().enumerate() {
            let theta = -2.0 * core::f64::consts::PI * k as f64 / n as f64;
            let expect = Complex::from_polar(1.0, theta);
            assert!((*v - expect).abs() < 1e-12, "bin {k}");
        }
    }

    #[test]
    fn matches_naive_dft_across_sizes() {
        for log in 0..=10 {
            let n = 1usize << log;
            let plan = FftPlan::<f64>::new(n).unwrap();
            let signal = seeded_signal(n, 42 + log as u64);
            let mut fast = signal.clone();
            plan.forward(&mut fast).unwrap();
            let slow = dft_naive(&signal, FftDirection::Forward);
            assert!(max_err(&fast, &slow) < 1e-9 * n as f64, "n = {n}");
        }
    }

    #[test]
    fn inverse_matches_naive_inverse() {
        let n = 64;
        let plan = FftPlan::<f64>::new(n).unwrap();
        let signal = seeded_signal(n, 7);
        let mut fast = signal.clone();
        plan.inverse(&mut fast).unwrap();
        let slow = dft_naive(&signal, FftDirection::Inverse);
        assert!(max_err(&fast, &slow) < 1e-11);
    }

    #[test]
    fn round_trip_is_identity() {
        for n in [2usize, 8, 128, 1024] {
            let plan = FftPlan::<f64>::new(n).unwrap();
            let signal = seeded_signal(n, n as u64);
            let mut buf = signal.clone();
            plan.forward(&mut buf).unwrap();
            plan.inverse(&mut buf).unwrap();
            assert!(max_err(&buf, &signal) < 1e-11, "n = {n}");
        }
    }

    #[test]
    fn linearity() {
        let n = 32;
        let plan = FftPlan::<f64>::new(n).unwrap();
        let a = seeded_signal(n, 1);
        let b = seeded_signal(n, 2);
        let mut sum: Vec<Complex<f64>> =
            a.iter().zip(&b).map(|(&x, &y)| x + y.scale(2.5)).collect();
        plan.forward(&mut sum).unwrap();
        let mut fa = a.clone();
        plan.forward(&mut fa).unwrap();
        let mut fb = b.clone();
        plan.forward(&mut fb).unwrap();
        let expect: Vec<Complex<f64>> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| x + y.scale(2.5))
            .collect();
        assert!(max_err(&sum, &expect) < 1e-11);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 256;
        let plan = FftPlan::<f64>::new(n).unwrap();
        let signal = seeded_signal(n, 99);
        let time_energy: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = signal.clone();
        plan.forward(&mut freq).unwrap();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn real_input_spectrum_is_hermitian() {
        // This symmetry is the basis of the paper's Fig. 10 "red circle"
        // optimization: for real inputs only half the outputs are unique.
        let n = 64;
        let plan = FftPlan::<f64>::new(n).unwrap();
        let real: Vec<f64> = seeded_signal(n, 5).iter().map(|z| z.re).collect();
        let spec = plan.forward_real(&real).unwrap();
        for k in 1..n {
            let diff = (spec[k] - spec[n - k].conj()).abs();
            assert!(diff < 1e-11, "bin {k}");
        }
        assert!(spec[0].im.abs() < 1e-12);
        assert!(spec[n / 2].im.abs() < 1e-12);
    }

    #[test]
    fn f32_plan_reaches_single_precision_accuracy() {
        let n = 512;
        let plan = FftPlan::<f32>::new(n).unwrap();
        let sig64 = seeded_signal(n, 3);
        let mut buf: Vec<Complex<f32>> = sig64
            .iter()
            .map(|z| Complex::new(z.re as f32, z.im as f32))
            .collect();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&sig64) {
            assert!((a.re as f64 - b.re).abs() < 1e-4);
            assert!((a.im as f64 - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn levels_reports_log2() {
        assert_eq!(FftPlan::<f64>::new(1024).unwrap().levels(), 10);
        assert_eq!(FftPlan::<f64>::new(2).unwrap().levels(), 1);
    }
}
