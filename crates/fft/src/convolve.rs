//! Circular convolution and correlation — the identities CirCNN rests on.
//!
//! A `k × k` circulant matrix defined by its **first row** `w`
//! (`W[i][j] = w[(j − i) mod k]`, each row the previous one rotated) acts on
//! a vector as a circular *cross-correlation*:
//!
//! ```text
//! (W x)[i] = Σ_t w[t] · x[(i + t) mod k]         (= correlate(w, x))
//! ```
//!
//! while the circulant defined by its **first column** `c`
//! (`W[i][j] = c[(i − j) mod k]`) acts as a circular *convolution*:
//!
//! ```text
//! (W x)[i] = Σ_j c[(i − j) mod k] · x[j]         (= convolve(c, x))
//! ```
//!
//! Both are `O(k log k)` via the convolution/correlation theorems:
//! `convolve = IFFT(FFT(c) ∘ FFT(x))` and
//! `correlate = IFFT(conj(FFT(w)) ∘ FFT(x))` (for real `w`).
//! The paper's Fig. 5 writes the product as `IFFT(FFT(w) ∘ FFT(x))` with `w`
//! "the first row vector"; the conjugation is the first-row/first-column
//! bookkeeping made explicit, and the tests in this module pin both forms
//! against brute force.

use crate::complex::Complex;
use crate::error::FftError;
use crate::float::Float;
use crate::rfft::RealFftPlan;

/// Direct `O(k²)` circular convolution `y[i] = Σ_j a[j]·b[(i−j) mod k]`.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
///
/// # Examples
///
/// ```
/// use circnn_fft::convolve::circular_convolve_direct;
///
/// let y = circular_convolve_direct(&[1.0, 0.0, 0.0, 0.0], &[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]); // identity impulse
/// ```
pub fn circular_convolve_direct<T: Float>(a: &[T], b: &[T]) -> Vec<T> {
    assert_eq!(
        a.len(),
        b.len(),
        "circular convolution requires equal lengths"
    );
    let k = a.len();
    let mut y = vec![T::ZERO; k];
    for (i, slot) in y.iter_mut().enumerate() {
        let mut acc = T::ZERO;
        for (j, &aj) in a.iter().enumerate() {
            acc += aj * b[(i + k - j) % k];
        }
        *slot = acc;
    }
    y
}

/// Direct `O(k²)` circular cross-correlation
/// `y[i] = Σ_t w[t]·x[(i+t) mod k]` — exactly the matvec of the circulant
/// matrix whose first row is `w`.
///
/// # Panics
///
/// Panics if `w` and `x` have different lengths.
pub fn circular_correlate_direct<T: Float>(w: &[T], x: &[T]) -> Vec<T> {
    assert_eq!(
        w.len(),
        x.len(),
        "circular correlation requires equal lengths"
    );
    let k = w.len();
    let mut y = vec![T::ZERO; k];
    for (i, slot) in y.iter_mut().enumerate() {
        let mut acc = T::ZERO;
        for (t, &wt) in w.iter().enumerate() {
            acc += wt * x[(i + t) % k];
        }
        *slot = acc;
    }
    y
}

/// Builds the dense `k × k` circulant matrix with first row `w`, in
/// row-major order. Used by tests and by the dense-baseline comparisons.
pub fn circulant_from_first_row<T: Float>(w: &[T]) -> Vec<T> {
    let k = w.len();
    let mut m = vec![T::ZERO; k * k];
    for i in 0..k {
        for j in 0..k {
            m[i * k + j] = w[(j + k - i) % k];
        }
    }
    m
}

/// Builds the dense `k × k` circulant matrix with first column `c`.
pub fn circulant_from_first_column<T: Float>(c: &[T]) -> Vec<T> {
    let k = c.len();
    let mut m = vec![T::ZERO; k * k];
    for i in 0..k {
        for j in 0..k {
            m[i * k + j] = c[(i + k - j) % k];
        }
    }
    m
}

/// FFT-backed circular convolution/correlation engine for one length.
///
/// Planning is done once; each call is `O(k log k)` and allocation-free when
/// the `*_with_scratch` variants are used.
///
/// # Examples
///
/// ```
/// use circnn_fft::convolve::{CircularConvolver, circular_convolve_direct};
///
/// # fn main() -> Result<(), circnn_fft::FftError> {
/// let conv = CircularConvolver::<f64>::new(8)?;
/// let a: Vec<f64> = (0..8).map(|i| i as f64).collect();
/// let b: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
/// let fast = conv.convolve(&a, &b)?;
/// let slow = circular_convolve_direct(&a, &b);
/// for (f, s) in fast.iter().zip(&slow) {
///     assert!((f - s).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircularConvolver<T> {
    plan: RealFftPlan<T>,
}

impl<T: Float> CircularConvolver<T> {
    /// Builds a convolver for vectors of power-of-two length `k`.
    ///
    /// # Errors
    ///
    /// Propagates [`FftError`] from planning (zero / non-power-of-two length).
    pub fn new(k: usize) -> Result<Self, FftError> {
        Ok(Self {
            plan: RealFftPlan::new(k)?,
        })
    }

    /// Vector length this convolver handles.
    #[inline]
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Always `false`; for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Access to the underlying real-FFT plan (for spectrum caching).
    #[inline]
    pub fn plan(&self) -> &RealFftPlan<T> {
        &self.plan
    }

    /// Circular convolution via the convolution theorem.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if either input has the wrong length.
    pub fn convolve(&self, a: &[T], b: &[T]) -> Result<Vec<T>, FftError> {
        let sa = self.plan.forward(a)?;
        let sb = self.plan.forward(b)?;
        let prod: Vec<Complex<T>> = sa.iter().zip(&sb).map(|(&x, &y)| x * y).collect();
        self.plan.inverse(&prod)
    }

    /// Circular cross-correlation via `IFFT(conj(FFT(w)) ∘ FFT(x))`.
    ///
    /// This is the matvec of the circulant matrix with first row `w`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if either input has the wrong length.
    pub fn correlate(&self, w: &[T], x: &[T]) -> Result<Vec<T>, FftError> {
        let sw = self.plan.forward(w)?;
        let sx = self.plan.forward(x)?;
        let prod: Vec<Complex<T>> = sw.iter().zip(&sx).map(|(&w, &x)| w.conj() * x).collect();
        self.plan.inverse(&prod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    fn dense_matvec(m: &[f64], x: &[f64]) -> Vec<f64> {
        let k = x.len();
        (0..k)
            .map(|i| (0..k).map(|j| m[i * k + j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn impulse_is_convolution_identity() {
        let mut e = vec![0.0; 8];
        e[0] = 1.0;
        let b = seeded(8, 3);
        assert_eq!(circular_convolve_direct(&e, &b), b);
    }

    #[test]
    fn direct_convolution_commutes() {
        let a = seeded(16, 1);
        let b = seeded(16, 2);
        let ab = circular_convolve_direct(&a, &b);
        let ba = circular_convolve_direct(&b, &a);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_convolution_matches_direct() {
        for k in [1usize, 2, 4, 8, 64, 256] {
            let conv = CircularConvolver::<f64>::new(k).unwrap();
            let a = seeded(k, k as u64);
            let b = seeded(k, k as u64 + 1);
            let fast = conv.convolve(&a, &b).unwrap();
            let slow = circular_convolve_direct(&a, &b);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-9, "k = {k}");
            }
        }
    }

    #[test]
    fn fft_correlation_matches_direct() {
        for k in [2usize, 8, 32, 128] {
            let conv = CircularConvolver::<f64>::new(k).unwrap();
            let w = seeded(k, 10 + k as u64);
            let x = seeded(k, 20 + k as u64);
            let fast = conv.correlate(&w, &x).unwrap();
            let slow = circular_correlate_direct(&w, &x);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-9, "k = {k}");
            }
        }
    }

    #[test]
    fn first_row_circulant_matvec_is_correlation() {
        // THE load-bearing identity: the paper's circulant FC layer computes
        // W·x where W has first row w; that equals correlate(w, x).
        let k = 8;
        let w = seeded(k, 5);
        let x = seeded(k, 6);
        let dense = circulant_from_first_row(&w);
        let via_dense = dense_matvec(&dense, &x);
        let via_corr = circular_correlate_direct(&w, &x);
        for (a, b) in via_dense.iter().zip(&via_corr) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn first_column_circulant_matvec_is_convolution() {
        let k = 8;
        let c = seeded(k, 7);
        let x = seeded(k, 8);
        let dense = circulant_from_first_column(&c);
        let via_dense = dense_matvec(&dense, &x);
        let via_conv = circular_convolve_direct(&c, &x);
        for (a, b) in via_dense.iter().zip(&via_conv) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn circulant_matrix_rows_are_rotations() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let m = circulant_from_first_row(&w);
        // Row 0 is w itself; row 1 is w rotated: W[1][j] = w[(j-1) mod 4].
        assert_eq!(&m[0..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&m[4..8], &[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(&m[8..12], &[3.0, 4.0, 1.0, 2.0]);
        assert_eq!(&m[12..16], &[2.0, 3.0, 4.0, 1.0]);
    }

    #[test]
    fn first_row_and_first_column_are_transposes() {
        let w = seeded(8, 11);
        let row = circulant_from_first_row(&w);
        let col = circulant_from_first_column(&w);
        for i in 0..8 {
            for j in 0..8 {
                assert!((row[i * 8 + j] - col[j * 8 + i]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn correlation_transpose_identity() {
        // W^T·g for first-row circulant W equals convolve(w, g); this is the
        // identity Algorithm 2 (backward pass) relies on.
        let k = 16;
        let w = seeded(k, 31);
        let g = seeded(k, 32);
        let dense = circulant_from_first_row(&w);
        let mut transposed = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                transposed[i * k + j] = dense[j * k + i];
            }
        }
        let via_dense = dense_matvec(&transposed, &g);
        let via_conv = circular_convolve_direct(&w, &g);
        for (a, b) in via_dense.iter().zip(&via_conv) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn length_mismatch_errors() {
        let conv = CircularConvolver::<f64>::new(8).unwrap();
        assert!(conv.convolve(&[0.0; 8], &[0.0; 4]).is_err());
        assert!(conv.correlate(&[0.0; 4], &[0.0; 8]).is_err());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn direct_convolve_panics_on_mismatch() {
        let _ = circular_convolve_direct(&[1.0, 2.0], &[1.0]);
    }
}
