//! Recursive FFT decomposition mirroring the paper's Fig. 9.
//!
//! The CirCNN architecture hinges on the *recursive property* of the FFT
//! (§4.1): "the calculation of a size-n FFT can be implemented using two
//! FFTs with size n/2 plus one additional level of butterfly calculation".
//! This module implements that decomposition literally — a size-n transform
//! recursing into even/odd half-size transforms — and exposes a butterfly
//! trace that `circnn-hw` cross-validates its cycle model against.

use crate::complex::Complex;
use crate::error::FftError;
use crate::float::Float;

/// Forward DFT computed by literal Fig.-9 recursion.
///
/// This exists for architectural fidelity and cross-validation; use
/// [`crate::FftPlan`] for speed.
///
/// # Errors
///
/// Returns [`FftError`] if the length is zero or not a power of two.
///
/// # Examples
///
/// ```
/// use circnn_fft::{recursive::fft_recursive, Complex};
///
/// let x = vec![Complex::from_real(1.0_f64); 4];
/// let spec = fft_recursive(&x)?;
/// assert!((spec[0].re - 4.0).abs() < 1e-12);
/// # Ok::<(), circnn_fft::FftError>(())
/// ```
pub fn fft_recursive<T: Float>(input: &[Complex<T>]) -> Result<Vec<Complex<T>>, FftError> {
    let n = input.len();
    if n == 0 {
        return Err(FftError::ZeroLength);
    }
    if !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo(n));
    }
    Ok(recurse(input))
}

fn recurse<T: Float>(x: &[Complex<T>]) -> Vec<Complex<T>> {
    let n = x.len();
    if n == 1 {
        return vec![x[0]];
    }
    // Split into the two half-size sub-problems of Fig. 9 …
    let even: Vec<Complex<T>> = x.iter().step_by(2).copied().collect();
    let odd: Vec<Complex<T>> = x.iter().skip(1).step_by(2).copied().collect();
    let fe = recurse(&even);
    let fo = recurse(&odd);
    // … plus one additional level of butterfly calculation.
    let mut out = vec![Complex::zero(); n];
    for k in 0..n / 2 {
        let theta = -T::TWO * T::PI * T::from_usize(k) / T::from_usize(n);
        let tw = Complex::from_polar(T::ONE, theta);
        let t = tw * fo[k];
        out[k] = fe[k] + t;
        out[k + n / 2] = fe[k] - t;
    }
    out
}

/// Per-level butterfly counts of the recursive decomposition.
///
/// Level `0` is the first (size-2) combine stage and level
/// `log₂n − 1` the final full-width stage; every level performs exactly
/// `n/2` complex butterflies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ButterflyTrace {
    /// Butterfly count at each of the `log₂ n` levels.
    pub per_level: Vec<usize>,
}

impl ButterflyTrace {
    /// Total number of butterflies across all levels: `(n/2)·log₂n`.
    pub fn total(&self) -> usize {
        self.per_level.iter().sum()
    }

    /// Number of butterfly levels (`log₂ n`).
    pub fn levels(&self) -> usize {
        self.per_level.len()
    }
}

/// Computes the butterfly trace of a size-`n` complex FFT without running it.
///
/// # Errors
///
/// Returns [`FftError`] if `n` is zero or not a power of two.
pub fn trace_butterflies(n: usize) -> Result<ButterflyTrace, FftError> {
    if n == 0 {
        return Err(FftError::ZeroLength);
    }
    if !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo(n));
    }
    let levels = n.trailing_zeros() as usize;
    Ok(ButterflyTrace {
        per_level: vec![n / 2; levels],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FftPlan;

    #[test]
    fn recursive_matches_planned_fft() {
        for log in 0..=9 {
            let n = 1usize << log;
            let input: Vec<Complex<f64>> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let rec = fft_recursive(&input).unwrap();
            let plan = FftPlan::new(n).unwrap();
            let mut fast = input.clone();
            plan.forward(&mut fast).unwrap();
            for (a, b) in rec.iter().zip(&fast) {
                assert!((*a - *b).abs() < 1e-9 * n.max(1) as f64, "n = {n}");
            }
        }
    }

    #[test]
    fn trace_counts_match_closed_form() {
        for log in 1..=12 {
            let n = 1usize << log;
            let trace = trace_butterflies(n).unwrap();
            assert_eq!(trace.levels(), log);
            assert_eq!(trace.total(), n / 2 * log);
            assert!(trace.per_level.iter().all(|&c| c == n / 2));
        }
    }

    #[test]
    fn trace_rejects_bad_lengths() {
        assert!(trace_butterflies(0).is_err());
        assert!(trace_butterflies(24).is_err());
    }

    #[test]
    fn recursion_decomposes_exactly_as_figure_nine() {
        // A size-n FFT = two size-n/2 FFTs + n/2 extra butterflies.
        let n = 64;
        let full = trace_butterflies(n).unwrap();
        let half = trace_butterflies(n / 2).unwrap();
        assert_eq!(full.total(), 2 * half.total() + n / 2);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(fft_recursive::<f64>(&[]).is_err());
        let bad = vec![Complex::<f64>::zero(); 3];
        assert!(fft_recursive(&bad).is_err());
    }
}
