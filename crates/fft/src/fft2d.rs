//! 2-D FFT and FFT-based spatial convolution — the LeCun et al. baseline.
//!
//! Paper §2.3: "LeCun et al. has proposed using FFTs to accelerate the
//! computations in the CONV layers … It uses FFT to calculate the
//! traditional inner products of filters and input feature maps, and can
//! achieve speedup for large filter sizes … The underlying neural network
//! structure and parameters remain unchanged" — i.e. speedup without
//! compression, and **no** asymptotic gain. This module implements that
//! method faithfully so the comparison in the ablation bench is against a
//! real artifact rather than a strawman:
//!
//! * [`Fft2dPlan`] — row-column 2-D FFT over power-of-two grids;
//! * [`fft_conv2d_valid`] — "valid" 2-D convolution/correlation of a
//!   feature map with a filter via zero-padded spectral multiplication,
//!   exactly LeCun-style kernel evaluation.

use crate::complex::Complex;
use crate::error::FftError;
use crate::float::Float;
use crate::plan::FftPlan;

/// A planned 2-D FFT over an `h×w` power-of-two grid (row-column method).
///
/// # Examples
///
/// ```
/// use circnn_fft::fft2d::Fft2dPlan;
/// use circnn_fft::Complex;
///
/// # fn main() -> Result<(), circnn_fft::FftError> {
/// let plan = Fft2dPlan::<f64>::new(4, 8)?;
/// let mut grid = vec![Complex::from_real(1.0); 32];
/// plan.forward(&mut grid)?;
/// assert!((grid[0].re - 32.0).abs() < 1e-12); // DC bin = sum
/// assert!(grid[1].abs() < 1e-12);
/// plan.inverse(&mut grid)?;
/// assert!((grid[5].re - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fft2dPlan<T> {
    h: usize,
    w: usize,
    row_plan: FftPlan<T>,
    col_plan: FftPlan<T>,
}

impl<T: Float> Fft2dPlan<T> {
    /// Builds a plan for `h×w` grids.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] unless both extents are nonzero powers of two.
    pub fn new(h: usize, w: usize) -> Result<Self, FftError> {
        Ok(Self {
            h,
            w,
            row_plan: FftPlan::new(w)?,
            col_plan: FftPlan::new(h)?,
        })
    }

    /// Grid height.
    #[inline]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Grid width.
    #[inline]
    pub fn width(&self) -> usize {
        self.w
    }

    fn process(&self, data: &mut [Complex<T>], inverse: bool) -> Result<(), FftError> {
        if data.len() != self.h * self.w {
            return Err(FftError::LengthMismatch {
                expected: self.h * self.w,
                got: data.len(),
            });
        }
        // Rows.
        for r in 0..self.h {
            let row = &mut data[r * self.w..(r + 1) * self.w];
            if inverse {
                self.row_plan.inverse(row)?;
            } else {
                self.row_plan.forward(row)?;
            }
        }
        // Columns (gather/scatter through a scratch column).
        let mut col = vec![Complex::zero(); self.h];
        for c in 0..self.w {
            for r in 0..self.h {
                col[r] = data[r * self.w + c];
            }
            if inverse {
                self.col_plan.inverse(&mut col)?;
            } else {
                self.col_plan.forward(&mut col)?;
            }
            for r in 0..self.h {
                data[r * self.w + c] = col[r];
            }
        }
        Ok(())
    }

    /// In-place forward 2-D transform (row-major grid).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != h·w`.
    pub fn forward(&self, data: &mut [Complex<T>]) -> Result<(), FftError> {
        self.process(data, false)
    }

    /// In-place inverse 2-D transform (normalized).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != h·w`.
    pub fn inverse(&self, data: &mut [Complex<T>]) -> Result<(), FftError> {
        self.process(data, true)
    }
}

/// "Valid" 2-D cross-correlation (the CNN convention) of an `h×w` input
/// with an `r×r` filter via the FFT — the LeCun \[52\] kernel. Output is
/// `(h−r+1)×(w−r+1)`.
///
/// Both operands are zero-padded to the covering power-of-two grid,
/// transformed, multiplied with conjugated filter spectrum, and
/// inverse-transformed; the valid region is cropped out.
///
/// # Errors
///
/// Returns [`FftError`] on degenerate sizes (`r > h` or `r > w`).
pub fn fft_conv2d_valid<T: Float>(
    input: &[T],
    h: usize,
    w: usize,
    filter: &[T],
    r: usize,
) -> Result<Vec<T>, FftError> {
    if input.len() != h * w || filter.len() != r * r || r == 0 || r > h || r > w {
        return Err(FftError::LengthMismatch {
            expected: h * w,
            got: input.len(),
        });
    }
    let ph = h.next_power_of_two();
    let pw = w.next_power_of_two();
    let plan = Fft2dPlan::<T>::new(ph, pw)?;
    let mut a = vec![Complex::zero(); ph * pw];
    for y in 0..h {
        for x in 0..w {
            a[y * pw + x] = Complex::from_real(input[y * w + x]);
        }
    }
    let mut b = vec![Complex::zero(); ph * pw];
    for y in 0..r {
        for x in 0..r {
            b[y * pw + x] = Complex::from_real(filter[y * r + x]);
        }
    }
    plan.forward(&mut a)?;
    plan.forward(&mut b)?;
    // Correlation theorem: conj(F(filter)) ∘ F(input).
    for (av, bv) in a.iter_mut().zip(&b) {
        *av = bv.conj() * *av;
    }
    plan.inverse(&mut a)?;
    let (oh, ow) = (h - r + 1, w - r + 1);
    let mut out = vec![T::ZERO; oh * ow];
    for y in 0..oh {
        for x in 0..ow {
            out[y * ow + x] = a[y * pw + x].re;
        }
    }
    Ok(out)
}

/// Direct `O(h·w·r²)` valid cross-correlation, the reference for
/// [`fft_conv2d_valid`].
pub fn direct_conv2d_valid<T: Float>(
    input: &[T],
    h: usize,
    w: usize,
    filter: &[T],
    r: usize,
) -> Vec<T> {
    let (oh, ow) = (h - r + 1, w - r + 1);
    let mut out = vec![T::ZERO; oh * ow];
    for y in 0..oh {
        for x in 0..ow {
            let mut acc = T::ZERO;
            for ky in 0..r {
                for kx in 0..r {
                    acc += filter[ky * r + kx] * input[(y + ky) * w + (x + kx)];
                }
            }
            out[y * ow + x] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * 0.8
            })
            .collect()
    }

    #[test]
    fn fft2d_round_trip() {
        let plan = Fft2dPlan::<f64>::new(8, 16).unwrap();
        let original: Vec<Complex<f64>> =
            seeded(128, 1).into_iter().map(Complex::from_real).collect();
        let mut buf = original.clone();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn fft2d_separable_impulse() {
        // Impulse at origin → flat spectrum.
        let plan = Fft2dPlan::<f64>::new(4, 4).unwrap();
        let mut buf = vec![Complex::zero(); 16];
        buf[0] = Complex::one();
        plan.forward(&mut buf).unwrap();
        for v in &buf {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_conv_matches_direct_across_sizes() {
        for (h, w, r) in [
            (8usize, 8usize, 3usize),
            (12, 10, 5),
            (16, 16, 11),
            (7, 9, 2),
        ] {
            let input = seeded(h * w, (h * w) as u64);
            let filter = seeded(r * r, r as u64);
            let fast = fft_conv2d_valid(&input, h, w, &filter, r).unwrap();
            let slow = direct_conv2d_valid(&input, h, w, &filter, r);
            assert_eq!(fast.len(), slow.len());
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "({h},{w},{r}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn one_by_one_filter_scales_input() {
        let input = seeded(16, 3);
        let out = fft_conv2d_valid(&input, 4, 4, &[2.0], 1).unwrap();
        for (o, i) in out.iter().zip(&input) {
            assert!((o - 2.0 * i).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(fft_conv2d_valid(&[0.0; 16], 4, 4, &[0.0; 25], 5).is_err());
        assert!(fft_conv2d_valid(&[0.0; 15], 4, 4, &[0.0; 9], 3).is_err());
        assert!(Fft2dPlan::<f64>::new(3, 4).is_err());
    }

    #[test]
    fn f32_precision_is_adequate() {
        let input: Vec<f32> = seeded(64, 9).iter().map(|&v| v as f32).collect();
        let filter: Vec<f32> = seeded(9, 10).iter().map(|&v| v as f32).collect();
        let fast = fft_conv2d_valid(&input, 8, 8, &filter, 3).unwrap();
        let slow = direct_conv2d_valid(&input, 8, 8, &filter, 3);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
