//! A minimal complex-number type.
//!
//! The CirCNN datapath works on complex values only inside the
//! FFT ↔ element-wise-multiply ↔ IFFT pipeline, so this type stays small:
//! arithmetic, conjugation, polar construction, and magnitude. Everything is
//! `#[inline]` plain math — the compiler autovectorizes the hot loops in
//! [`crate::FftPlan`].

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::float::Float;

/// A complex number `re + i·im` over an [`Float`] scalar.
///
/// # Examples
///
/// ```
/// use circnn_fft::Complex;
///
/// let a = Complex::new(1.0_f64, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// assert_eq!(a.conj(), Complex::new(1.0, -2.0));
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex number, the DNN stack's working type.
pub type Complex32 = Complex<f32>;
/// Double-precision complex number, used for high-accuracy references.
pub type Complex64 = Complex<f64>;

impl<T: Float> Complex<T> {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The additive identity `0 + 0i`.
    #[inline]
    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    /// The multiplicative identity `1 + 0i`.
    #[inline]
    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    /// The imaginary unit `0 + 1i`.
    #[inline]
    pub fn i() -> Self {
        Self::new(T::ZERO, T::ONE)
    }

    /// A purely real complex number.
    #[inline]
    pub fn from_real(re: T) -> Self {
        Self::new(re, T::ZERO)
    }

    /// Builds `r·(cos θ + i sin θ)`.
    ///
    /// This is how FFT twiddle factors `e^{-2πik/n}` are tabulated.
    #[inline]
    pub fn from_polar(r: T, theta: T) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²` (avoids the square root).
    #[inline]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: T) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Fused `self + a * b`, the butterfly accumulation primitive.
    #[inline]
    pub fn mul_acc(self, a: Self, b: Self) -> Self {
        self + a * b
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite_val() && self.im.is_finite_val()
    }
}

impl<T: Float> Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Float> Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Float> Mul for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: Float> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Float> Div for Complex<T> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl<T: Float> Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Float> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Float> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Float> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Float> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<T: Float> From<T> for Complex<T> {
    #[inline]
    fn from(re: T) -> Self {
        Self::from_real(re)
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?} + {:?}i)", self.re, self.im)
    }
}

impl<T: Float> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.0, -3.0);
        assert_eq!(z + Complex::zero(), z);
        assert_eq!(z * Complex::one(), z);
        assert_eq!(z - z, Complex::zero());
        assert_eq!(-z, Complex::new(-2.0, 3.0));
        assert_eq!(z * Complex::i(), Complex::new(3.0, 2.0));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        // (1+2i)(-3+0.5i) = -3 + 0.5i - 6i + i² = -4 - 5.5i
        assert!(close(a * b, Complex::new(-4.0, -5.5)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.25, -0.5);
        let b = Complex::new(0.75, 2.0);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(0.3, 0.4);
        assert_eq!(z.conj().conj(), z);
        assert!((z * z.conj()).im.abs() < 1e-15);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < 1e-15);
    }

    #[test]
    fn polar_construction() {
        let z = Complex::from_polar(2.0, core::f64::consts::FRAC_PI_2);
        assert!(close(z, Complex::new(0.0, 2.0)));
        let w = Complex::from_polar(1.0, core::f64::consts::PI);
        assert!(close(w, Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn magnitude() {
        assert!((Complex::new(3.0, 4.0).abs() - 5.0_f64).abs() < 1e-12);
        assert_eq!(Complex::new(3.0, 4.0).norm_sqr(), 25.0);
    }

    #[test]
    fn assign_operators() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(2.0, -1.0);
        assert_eq!(z, Complex::new(3.0, 0.0));
        z -= Complex::new(1.0, 0.0);
        assert_eq!(z, Complex::new(2.0, 0.0));
        z *= Complex::new(0.0, 1.0);
        assert_eq!(z, Complex::new(0.0, 2.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4).map(|i| Complex::new(i as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn mul_acc_is_fused_multiply_add() {
        let acc = Complex::new(1.0, 1.0);
        let out = acc.mul_acc(Complex::new(2.0, 0.0), Complex::new(0.0, 3.0));
        assert_eq!(out, Complex::new(1.0, 7.0));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let z = Complex::new(1.0, -2.0);
        assert!(!format!("{z}").is_empty());
        assert!(!format!("{z:?}").is_empty());
    }

    #[test]
    fn finite_detection() {
        assert!(Complex::new(1.0_f64, 2.0).is_finite());
        assert!(!Complex::new(f64::NAN, 2.0).is_finite());
        assert!(!Complex::new(1.0, f64::INFINITY).is_finite());
    }
}
