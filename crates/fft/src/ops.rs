//! Closed-form operation counts for FFT-based workloads.
//!
//! The hardware simulator (`circnn-hw`) prices cycles and energy from
//! butterfly and multiply counts; these formulas are the single source of
//! truth and are cross-validated against [`crate::recursive::trace_butterflies`].
//!
//! Conventions (classical radix-2 accounting):
//! * one **butterfly** = 1 complex multiply + 2 complex adds
//!   = 4 real multiplies + 6 real adds = 10 flops;
//! * one **complex multiply** = 4 real multiplies + 2 real adds = 6 flops.

/// Real multiplies in one complex multiply.
pub const MULS_PER_COMPLEX_MUL: u64 = 4;
/// Real adds in one complex multiply.
pub const ADDS_PER_COMPLEX_MUL: u64 = 2;
/// Flops in one complex multiply.
pub const FLOPS_PER_COMPLEX_MUL: u64 = MULS_PER_COMPLEX_MUL + ADDS_PER_COMPLEX_MUL;
/// Real multiplies in one radix-2 butterfly.
pub const MULS_PER_BUTTERFLY: u64 = 4;
/// Real adds in one radix-2 butterfly (complex-multiply adds + two complex adds).
pub const ADDS_PER_BUTTERFLY: u64 = 6;
/// Flops in one radix-2 butterfly.
pub const FLOPS_PER_BUTTERFLY: u64 = MULS_PER_BUTTERFLY + ADDS_PER_BUTTERFLY;

/// Exact `log₂(n)` for powers of two, `None` otherwise.
///
/// # Examples
///
/// ```
/// use circnn_fft::ops::log2_exact;
/// assert_eq!(log2_exact(1024), Some(10));
/// assert_eq!(log2_exact(12), None);
/// assert_eq!(log2_exact(0), None);
/// ```
pub fn log2_exact(n: usize) -> Option<u32> {
    if n != 0 && n.is_power_of_two() {
        Some(n.trailing_zeros())
    } else {
        None
    }
}

/// Butterflies in a size-`n` **complex** FFT: `(n/2)·log₂n`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn complex_fft_butterflies(n: usize) -> u64 {
    let log = log2_exact(n).expect("fft size must be a power of two");
    (n as u64 / 2) * u64::from(log)
}

/// Butterflies in a size-`n` **real-input** FFT implemented as a half-size
/// complex FFT: `(n/4)·log₂(n/2)`.
///
/// This captures the paper's Hermitian-symmetry saving (Fig. 10): slightly
/// better than half the complex-FFT count.
///
/// # Panics
///
/// Panics if `n < 2` or `n` is not a power of two.
pub fn rfft_butterflies(n: usize) -> u64 {
    assert!(n >= 2, "real fft needs n >= 2");
    complex_fft_butterflies(n / 2)
}

/// Complex multiplies in the real-FFT unpack/combine stage: `n/2`
/// (one twiddle multiply per unique non-DC bin).
pub fn rfft_combine_muls(n: usize) -> u64 {
    assert!(log2_exact(n).is_some(), "fft size must be a power of two");
    n as u64 / 2
}

/// Total flops of a size-`n` complex FFT.
pub fn complex_fft_flops(n: usize) -> u64 {
    complex_fft_butterflies(n) * FLOPS_PER_BUTTERFLY
}

/// Total flops of a size-`n` real-input FFT (half-size FFT + combine).
pub fn rfft_flops(n: usize) -> u64 {
    rfft_butterflies(n) * FLOPS_PER_BUTTERFLY + rfft_combine_muls(n) * FLOPS_PER_COMPLEX_MUL
}

/// Flops for an element-wise complex multiply over `bins` spectrum bins.
pub fn pointwise_mul_flops(bins: usize) -> u64 {
    bins as u64 * FLOPS_PER_COMPLEX_MUL
}

/// Number of unique spectrum bins of a real length-`n` signal: `n/2 + 1`.
pub fn real_spectrum_bins(n: usize) -> usize {
    n / 2 + 1
}

/// Dense-equivalent operation count of an `m×n` mat-vec (the paper's
/// "equivalent GOPS" convention: one multiply + one add per weight).
pub fn dense_matvec_ops(m: usize, n: usize) -> u64 {
    2 * m as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recursive::trace_butterflies;

    #[test]
    fn butterflies_match_recursive_trace() {
        for log in 1..=12 {
            let n = 1usize << log;
            assert_eq!(
                complex_fft_butterflies(n),
                trace_butterflies(n).unwrap().total() as u64
            );
        }
    }

    #[test]
    fn rfft_is_cheaper_than_half_complex() {
        for n in [8usize, 64, 512, 4096] {
            assert!(rfft_butterflies(n) < complex_fft_butterflies(n) / 2 + n as u64);
            assert!(rfft_flops(n) < complex_fft_flops(n));
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(complex_fft_butterflies(8), 12); // 4 * 3
        assert_eq!(complex_fft_butterflies(1024), 512 * 10);
        assert_eq!(rfft_butterflies(8), 4); // complex fft of 4: 2*2
        assert_eq!(rfft_combine_muls(8), 4);
        assert_eq!(real_spectrum_bins(128), 65);
        assert_eq!(dense_matvec_ops(4096, 9216), 2 * 4096 * 9216);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn panics_on_non_power_of_two() {
        let _ = complex_fft_butterflies(12);
    }

    #[test]
    fn asymptotic_advantage_grows() {
        // O(n log n) vs O(n²): ratio improves with n — the core claim.
        let r1 = dense_matvec_ops(256, 256) as f64 / rfft_flops(256) as f64;
        let r2 = dense_matvec_ops(4096, 4096) as f64 / rfft_flops(4096) as f64;
        assert!(r2 > r1 * 4.0);
    }
}
