//! Batch-plane FFT: one transform over many signals at once.
//!
//! The batched block-circulant engine holds its spectra in
//! structure-of-arrays planes `[index][batch]` (split re/im), with the batch
//! dimension innermost. Transforming `batch` signals one at a time wastes
//! that layout — every butterfly of a radix-2 FFT applied at index granularity
//! is the *same* operation for every signal in the batch, so this plan runs
//! each butterfly across the whole length-`batch` row at once: stride-1
//! loops the compiler turns into SIMD, and one plan dispatch per *block*
//! instead of per *sample*.
//!
//! This is the software analogue of feeding the paper's FFT datapath a new
//! input vector every cycle: the butterfly structure is fixed, only the data
//! streams.

use crate::complex::Complex;
use crate::error::FftError;
use crate::float::Float;

/// A planned radix-2 FFT of power-of-two length `n` over `[n][batch]`
/// split re/im planes.
///
/// # Examples
///
/// ```
/// use circnn_fft::BatchFftPlan;
///
/// # fn main() -> Result<(), circnn_fft::FftError> {
/// let plan = BatchFftPlan::<f32>::new(4)?;
/// // Two interleaved signals: [1,0,0,0] and [0,1,0,0] (batch-innermost).
/// let mut re = vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0];
/// let mut im = vec![0.0; 8];
/// plan.forward_planes(&mut re, &mut im, 2)?;
/// assert_eq!(re[0], 1.0); // DC bin of signal 0
/// assert_eq!(re[1], 1.0); // DC bin of signal 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchFftPlan<T> {
    n: usize,
    /// Flattened per-stage twiddles `e^{-2πi j/len}`, stages in order
    /// `len = 2, 4, …, n`, `j in 0..len/2` each.
    tw_re: Vec<T>,
    tw_im: Vec<T>,
    /// Bit-reversal permutation of `0..n`.
    bitrev: Vec<usize>,
    /// Half-length plan driving the real-input transforms (`None` for
    /// `n < 2` and for the inner half plans themselves).
    half: Option<Box<BatchFftPlan<T>>>,
    /// Real-transform unpack twiddles `e^{-2πik/n}` for `k in 0..=n/2`
    /// (empty on inner half plans).
    rtw_re: Vec<T>,
    rtw_im: Vec<T>,
}

impl<T: Float> BatchFftPlan<T> {
    /// Builds a plan for batched transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ZeroLength`] if `n == 0` and
    /// [`FftError::NotPowerOfTwo`] otherwise for non-power-of-two `n`.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Self::build(n, true)
    }

    /// Shared constructor; `real_support` adds the half plan + unpack
    /// twiddles that [`BatchFftPlan::forward_planes_real`] needs (skipped
    /// on the inner half plan, which only ever runs the complex path).
    fn build(n: usize, real_support: bool) -> Result<Self, FftError> {
        if n == 0 {
            return Err(FftError::ZeroLength);
        }
        if !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo(n));
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    (i as u64).reverse_bits().wrapping_shr(64 - bits) as usize
                }
            })
            .collect();
        let mut tw_re = Vec::new();
        let mut tw_im = Vec::new();
        let mut len = 2;
        while len <= n {
            for j in 0..len / 2 {
                let theta = -T::TWO * T::PI * T::from_usize(j) / T::from_usize(len);
                let w = Complex::from_polar(T::ONE, theta);
                tw_re.push(w.re);
                tw_im.push(w.im);
            }
            len <<= 1;
        }
        let (half, mut rtw_re, mut rtw_im) = (None, Vec::new(), Vec::new());
        let half = if real_support && n >= 2 {
            for k in 0..=n / 2 {
                let theta = -T::TWO * T::PI * T::from_usize(k) / T::from_usize(n);
                let w = Complex::from_polar(T::ONE, theta);
                rtw_re.push(w.re);
                rtw_im.push(w.im);
            }
            Some(Box::new(Self::build(n / 2, false)?))
        } else {
            half
        };
        Ok(Self {
            n,
            tw_re,
            tw_im,
            bitrev,
            half,
            rtw_re,
            rtw_im,
        })
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; provided for API completeness alongside [`len`].
    ///
    /// [`len`]: Self::len
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn validate(&self, re: &[T], im: &[T], batch: usize) -> Result<(), FftError> {
        if batch == 0 {
            return Err(FftError::ZeroLength);
        }
        let want = self.n * batch;
        if re.len() != want || im.len() != want {
            return Err(FftError::LengthMismatch {
                expected: want,
                got: re.len().min(im.len()),
            });
        }
        Ok(())
    }

    /// In-place forward DFT of `batch` signals held as `[n][batch]` planes.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if the planes are not `n·batch` long or the
    /// batch is zero.
    pub fn forward_planes(&self, re: &mut [T], im: &mut [T], batch: usize) -> Result<(), FftError> {
        self.validate(re, im, batch)?;
        self.permute(re, im, batch);
        self.butterflies(re, im, batch, false);
        Ok(())
    }

    /// In-place inverse DFT (scaled by `1/n`) of `batch` signals.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if the planes are not `n·batch` long or the
    /// batch is zero.
    pub fn inverse_planes(&self, re: &mut [T], im: &mut [T], batch: usize) -> Result<(), FftError> {
        self.validate(re, im, batch)?;
        self.permute(re, im, batch);
        self.butterflies(re, im, batch, true);
        let scale = T::ONE / T::from_usize(self.n);
        for v in re.iter_mut() {
            *v = *v * scale;
        }
        for v in im.iter_mut() {
            *v = *v * scale;
        }
        Ok(())
    }

    /// In-place forward DFT of `batch` **real** signals held as an
    /// `[n][batch]` plane in `re` (`im` is pure scratch — its contents are
    /// ignored and destroyed). On return the unique `n/2 + 1` half-spectrum
    /// rows sit in `re[..(n/2 + 1)·batch]` / `im[..(n/2 + 1)·batch]`;
    /// higher rows are garbage. The redundant mirror rows
    /// (`X[n−r] = conj(X[r])`) are never computed or stored — the software
    /// form of the paper's Fig. 10 observation that real inputs let half
    /// the butterfly outcomes be skipped.
    ///
    /// Each lane packs its own even/odd samples into one half-length
    /// complex lane (the [`RealFftPlan`](crate::RealFftPlan) trick), runs
    /// the half-length complex plane FFT, and unpacks — lanes never mix, so
    /// a lane's spectrum is bit-identical no matter which batch carries it
    /// (the batch-composition invariance the serving stack relies on).
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if the planes are not `n·batch` long or the
    /// batch is zero.
    pub fn forward_planes_real(
        &self,
        re: &mut [T],
        im: &mut [T],
        batch: usize,
    ) -> Result<(), FftError> {
        self.validate(re, im, batch)?;
        let n = self.n;
        if n == 1 {
            im[..batch].fill(T::ZERO);
            return Ok(());
        }
        let h = n / 2;
        // Pack lane-wise: half-signal row m is x[2m] + i·x[2m+1]. Ascending
        // m only writes rows ≤ m while reading rows 2m and 2m+1 ≥ m.
        for m in 0..h {
            re.copy_within(2 * m * batch..(2 * m + 1) * batch, m * batch);
            let src = (2 * m + 1) * batch;
            im[m * batch..(m + 1) * batch].copy_from_slice(&re[src..src + batch]);
        }
        let half = self.half.as_ref().expect("n >= 2 always has a half plan");
        half.forward_planes(&mut re[..h * batch], &mut im[..h * batch], batch)?;
        // Unpack the interleaved spectrum Z into the real signal's bins:
        // E[k] = (Z[k] + conj(Z[h−k]))/2, O[k] = (Z[k] − conj(Z[h−k]))/(2i),
        // X[k] = E[k] + e^{−2πik/n}·O[k]. The mirror bin of the pair reuses
        // the same E/O (conjugated), so each pair is loaded once. Lanes run
        // in fixed-size register tiles (loads complete before the aliased
        // rows are overwritten, and the stride-1 tile loops vectorize).
        const L: usize = 16;
        let mut zkr = [T::ZERO; L];
        let mut zki = [T::ZERO; L];
        let mut znr = [T::ZERO; L];
        let mut zni = [T::ZERO; L];
        let mut xr = [T::ZERO; L];
        let mut xi = [T::ZERO; L];
        let mut mr = [T::ZERO; L];
        let mut mi = [T::ZERO; L];
        for k in 0..=h / 2 {
            let km = (h - k) % h;
            let (twr, twi) = (self.rtw_re[k], self.rtw_im[k]);
            let (twr2, twi2) = (self.rtw_re[h - k], self.rtw_im[h - k]);
            let write_mirror = h - k != k;
            let mut b0 = 0;
            while b0 < batch {
                let l = L.min(batch - b0);
                zkr[..l].copy_from_slice(&re[k * batch + b0..][..l]);
                zki[..l].copy_from_slice(&im[k * batch + b0..][..l]);
                znr[..l].copy_from_slice(&re[km * batch + b0..][..l]);
                zni[..l].copy_from_slice(&im[km * batch + b0..][..l]);
                for t in 0..l {
                    // conj(Z[h−k]) has imaginary −zni.
                    let er = (zkr[t] + znr[t]) * T::HALF;
                    let ei = (zki[t] - zni[t]) * T::HALF;
                    let or_ = (zki[t] + zni[t]) * T::HALF;
                    let oi = (znr[t] - zkr[t]) * T::HALF;
                    xr[t] = er + twr * or_ - twi * oi;
                    xi[t] = ei + twr * oi + twi * or_;
                    // X[h−k] = conj(E) + e^{−2πi(h−k)/n}·conj(O).
                    mr[t] = er + twr2 * or_ + twi2 * oi;
                    mi[t] = twi2 * or_ - twr2 * oi - ei;
                }
                re[k * batch + b0..][..l].copy_from_slice(&xr[..l]);
                im[k * batch + b0..][..l].copy_from_slice(&xi[..l]);
                if write_mirror {
                    re[(h - k) * batch + b0..][..l].copy_from_slice(&mr[..l]);
                    im[(h - k) * batch + b0..][..l].copy_from_slice(&mi[..l]);
                }
                b0 += l;
            }
        }
        Ok(())
    }

    /// Inverse of [`BatchFftPlan::forward_planes_real`]: the unique
    /// `n/2 + 1` half-spectrum rows enter in `re[..(n/2 + 1)·batch]` /
    /// `im[..(n/2 + 1)·batch]` (higher rows ignored; `im` is destroyed),
    /// and the `batch` real time-domain signals (scaled by `1/n`) leave in
    /// the full `[n][batch]` plane `re`. Lanes never mix.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if the planes are not `n·batch` long or the
    /// batch is zero.
    pub fn inverse_planes_real(
        &self,
        re: &mut [T],
        im: &mut [T],
        batch: usize,
    ) -> Result<(), FftError> {
        self.validate(re, im, batch)?;
        let n = self.n;
        if n == 1 {
            return Ok(()); // DC bin is the signal; 1/1 scaling.
        }
        self.inverse_planes_real_core(re, im, batch)?;
        let h = n / 2;
        // Unpack lane-wise: x[2m] = Z[m].re, x[2m+1] = Z[m].im. Descending
        // m only writes rows ≥ 2m while reading rows m ≤ 2m.
        for m in (0..h).rev() {
            let src = m * batch;
            re.copy_within(src..src + batch, 2 * m * batch);
            re[(2 * m + 1) * batch..(2 * m + 2) * batch].copy_from_slice(&im[src..src + batch]);
        }
        Ok(())
    }

    /// [`BatchFftPlan::inverse_planes_real`] with a **fused epilogue**: the
    /// final lane-unpack pass hands each finished time-domain row to `sink`
    /// (`sink(row, lanes)` for `row in 0..n`, ascending) instead of writing
    /// it back into the plane, so a caller can apply a bias/activation and
    /// scatter the row to its destination while it is still in cache — no
    /// separate post-IFFT pass over the full plane. The rows handed out are
    /// mutable views into the scratch planes; `sink` may edit them in
    /// place. Arithmetic is identical to
    /// [`BatchFftPlan::inverse_planes_real`], so results are bitwise equal.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if the planes are not `n·batch` long or the
    /// batch is zero.
    pub fn inverse_planes_real_epilogue(
        &self,
        re: &mut [T],
        im: &mut [T],
        batch: usize,
        sink: &mut dyn FnMut(usize, &mut [T]),
    ) -> Result<(), FftError> {
        self.validate(re, im, batch)?;
        let n = self.n;
        if n == 1 {
            sink(0, &mut re[..batch]);
            return Ok(());
        }
        self.inverse_planes_real_core(re, im, batch)?;
        // Unpack lane-wise through the sink: x[2m] = Z[m].re,
        // x[2m+1] = Z[m].im. Nothing is written back into the planes, so
        // ascending order is safe and rows stream out cache-warm.
        let h = n / 2;
        for m in 0..h {
            let src = m * batch;
            sink(2 * m, &mut re[src..src + batch]);
            sink(2 * m + 1, &mut im[src..src + batch]);
        }
        Ok(())
    }

    /// Shared body of the real-input inverse transforms: re-packs the
    /// unique half-spectrum rows into the half-length interleaved spectrum
    /// and runs the half-length complex inverse. Callers (`n ≥ 2`,
    /// pre-validated) unpack rows `0..n/2` of `re`/`im` as
    /// `x[2m] = Z[m].re`, `x[2m+1] = Z[m].im`.
    fn inverse_planes_real_core(
        &self,
        re: &mut [T],
        im: &mut [T],
        batch: usize,
    ) -> Result<(), FftError> {
        let h = self.n / 2;
        // Re-pack bins into the half-length interleaved spectrum:
        // Z[k] = E[k] + i·O[k] with E[k] = (X[k] + conj(X[h−k]))/2 and
        // O[k] = e^{+2πik/n}·(X[k] − conj(X[h−k]))/2; the pair's mirror row
        // reuses the same intermediates.
        const L: usize = 16;
        let mut xkr = [T::ZERO; L];
        let mut xki = [T::ZERO; L];
        let mut xnr = [T::ZERO; L];
        let mut xni = [T::ZERO; L];
        let mut zr = [T::ZERO; L];
        let mut zi = [T::ZERO; L];
        let mut wr = [T::ZERO; L];
        let mut wi = [T::ZERO; L];
        for k in 0..=h / 2 {
            let k2 = h - k;
            let (twr, twi) = (self.rtw_re[k], self.rtw_im[k]);
            let (twr2, twi2) = (self.rtw_re[k2], self.rtw_im[k2]);
            let write_mirror = k2 != k && k2 < h;
            let mut b0 = 0;
            while b0 < batch {
                let l = L.min(batch - b0);
                xkr[..l].copy_from_slice(&re[k * batch + b0..][..l]);
                xki[..l].copy_from_slice(&im[k * batch + b0..][..l]);
                xnr[..l].copy_from_slice(&re[k2 * batch + b0..][..l]);
                xni[..l].copy_from_slice(&im[k2 * batch + b0..][..l]);
                for t in 0..l {
                    // conj(X[h−k]) has imaginary −xni.
                    let er = (xkr[t] + xnr[t]) * T::HALF;
                    let ei = (xki[t] - xni[t]) * T::HALF;
                    let dr = (xkr[t] - xnr[t]) * T::HALF;
                    let di = (xki[t] + xni[t]) * T::HALF;
                    // O[k] = conj(tw[k])·d  (tw stores e^{−2πik/n}).
                    let or_ = twr * dr + twi * di;
                    let oi = twr * di - twi * dr;
                    zr[t] = er - oi;
                    zi[t] = ei + or_;
                    // E[h−k] = conj(E), d[h−k] = −conj(d).
                    let or2 = twi2 * di - twr2 * dr;
                    let oi2 = twr2 * di + twi2 * dr;
                    wr[t] = er - oi2;
                    wi[t] = or2 - ei;
                }
                re[k * batch + b0..][..l].copy_from_slice(&zr[..l]);
                im[k * batch + b0..][..l].copy_from_slice(&zi[..l]);
                if write_mirror {
                    re[k2 * batch + b0..][..l].copy_from_slice(&wr[..l]);
                    im[k2 * batch + b0..][..l].copy_from_slice(&wi[..l]);
                }
                b0 += l;
            }
        }
        let half = self.half.as_ref().expect("n >= 2 always has a half plan");
        half.inverse_planes(&mut re[..h * batch], &mut im[..h * batch], batch)
    }

    /// Applies the bit-reversal row permutation.
    fn permute(&self, re: &mut [T], im: &mut [T], batch: usize) {
        for (i, &j) in self.bitrev.iter().enumerate() {
            if i < j {
                for b in 0..batch {
                    re.swap(i * batch + b, j * batch + b);
                    im.swap(i * batch + b, j * batch + b);
                }
            }
        }
    }

    /// Runs every butterfly stage; `inverse` conjugates the twiddles.
    fn butterflies(&self, re: &mut [T], im: &mut [T], batch: usize, inverse: bool) {
        let n = self.n;
        let mut len = 2;
        let mut tw_off = 0;
        while len <= n {
            let half = len / 2;
            for start in (0..n).step_by(len) {
                for j in 0..half {
                    let wr = self.tw_re[tw_off + j];
                    let wi0 = self.tw_im[tw_off + j];
                    let wi = if inverse { T::ZERO - wi0 } else { wi0 };
                    let lo = (start + j) * batch;
                    let hi = (start + j + half) * batch;
                    // Rows `lo` and `hi` are disjoint (`lo < hi`).
                    let (re_a, re_b) = re.split_at_mut(hi);
                    let (im_a, im_b) = im.split_at_mut(hi);
                    let ar = &mut re_a[lo..lo + batch];
                    let ai = &mut im_a[lo..lo + batch];
                    let br = &mut re_b[..batch];
                    let bi = &mut im_b[..batch];
                    // One butterfly across every signal in the batch —
                    // stride-1 lanes the compiler vectorizes.
                    for (((a_r, a_i), b_r), b_i) in ar
                        .iter_mut()
                        .zip(ai.iter_mut())
                        .zip(br.iter_mut())
                        .zip(bi.iter_mut())
                    {
                        let tr = wr * *b_r - wi * *b_i;
                        let ti = wr * *b_i + wi * *b_r;
                        *b_r = *a_r - tr;
                        *b_i = *a_i - ti;
                        *a_r = *a_r + tr;
                        *a_i = *a_i + ti;
                    }
                }
            }
            tw_off += half;
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FftPlan;

    fn seeded(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(BatchFftPlan::<f64>::new(0).is_err());
        assert!(BatchFftPlan::<f64>::new(12).is_err());
        let plan = BatchFftPlan::<f64>::new(4).unwrap();
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        assert!(plan.forward_planes(&mut re, &mut im, 3).is_err());
        assert!(plan.forward_planes(&mut re, &mut im, 0).is_err());
    }

    #[test]
    fn matches_scalar_fft_per_lane() {
        for log in 0..=7 {
            let n = 1usize << log;
            let batch = 5;
            let plan = BatchFftPlan::<f64>::new(n).unwrap();
            let scalar = FftPlan::<f64>::new(n).unwrap();
            // Batch of distinct signals.
            let signals: Vec<Vec<f64>> = (0..batch).map(|b| seeded(n, 7 + b as u64)).collect();
            let mut re = vec![0.0f64; n * batch];
            let mut im = vec![0.0f64; n * batch];
            for (b, sig) in signals.iter().enumerate() {
                for (t, &v) in sig.iter().enumerate() {
                    re[t * batch + b] = v;
                }
            }
            plan.forward_planes(&mut re, &mut im, batch).unwrap();
            for (b, sig) in signals.iter().enumerate() {
                let spec = scalar.forward_real(sig).unwrap();
                for t in 0..n {
                    let d = (re[t * batch + b] - spec[t].re).abs()
                        + (im[t * batch + b] - spec[t].im).abs();
                    assert!(d < 1e-9 * n as f64, "n={n} lane {b} bin {t}: err {d}");
                }
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let n = 64;
        let batch = 3;
        let plan = BatchFftPlan::<f64>::new(n).unwrap();
        let orig = seeded(n * batch, 3);
        let mut re = orig.clone();
        let mut im = seeded(n * batch, 4);
        let orig_im = im.clone();
        plan.forward_planes(&mut re, &mut im, batch).unwrap();
        plan.inverse_planes(&mut re, &mut im, batch).unwrap();
        for i in 0..n * batch {
            assert!((re[i] - orig[i]).abs() < 1e-10);
            assert!((im[i] - orig_im[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn real_planes_match_complex_planes_on_real_data() {
        for log in 0..=8 {
            let n = 1usize << log;
            let batch = 3;
            let plan = BatchFftPlan::<f64>::new(n).unwrap();
            let x = seeded(n * batch, 11 + log as u64);
            // Complex reference path on the same real data.
            let mut cre = x.clone();
            let mut cim = vec![0.0f64; n * batch];
            plan.forward_planes(&mut cre, &mut cim, batch).unwrap();
            // Real path; imaginary plane starts as garbage on purpose.
            let mut rre = x.clone();
            let mut rim = seeded(n * batch, 999);
            plan.forward_planes_real(&mut rre, &mut rim, batch).unwrap();
            let bins = n / 2 + 1;
            for r in 0..bins {
                for b in 0..batch {
                    let i = r * batch + b;
                    let d = (rre[i] - cre[i]).abs() + (rim[i] - cim[i]).abs();
                    assert!(d < 1e-10 * n as f64, "n={n} bin {r} lane {b}: err {d}");
                }
            }
        }
    }

    #[test]
    fn real_planes_round_trip_is_identity() {
        for n in [1usize, 2, 4, 16, 128] {
            let batch = 4;
            let plan = BatchFftPlan::<f64>::new(n).unwrap();
            let x = seeded(n * batch, n as u64);
            let mut re = x.clone();
            let mut im = vec![0.0f64; n * batch];
            plan.forward_planes_real(&mut re, &mut im, batch).unwrap();
            plan.inverse_planes_real(&mut re, &mut im, batch).unwrap();
            for (i, (&a, &e)) in re.iter().zip(&x).enumerate() {
                assert!((a - e).abs() < 1e-10, "n={n} idx {i}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn real_plane_lanes_are_batch_composition_invariant() {
        // A lane's spectrum must be bit-identical whether it runs alone or
        // inside a wider batch — lanes never mix in the real path.
        let n = 32;
        let plan = BatchFftPlan::<f32>::new(n).unwrap();
        let batch = 5;
        let signals: Vec<Vec<f32>> = (0..batch)
            .map(|b| seeded(n, 40 + b as u64).iter().map(|&v| v as f32).collect())
            .collect();
        let mut re = vec![0.0f32; n * batch];
        let mut im = vec![0.0f32; n * batch];
        for (b, sig) in signals.iter().enumerate() {
            for (t, &v) in sig.iter().enumerate() {
                re[t * batch + b] = v;
            }
        }
        plan.forward_planes_real(&mut re, &mut im, batch).unwrap();
        for (b, sig) in signals.iter().enumerate() {
            let mut sre = sig.clone();
            let mut sim = vec![0.0f32; n];
            plan.forward_planes_real(&mut sre, &mut sim, 1).unwrap();
            for r in 0..n / 2 + 1 {
                assert_eq!(re[r * batch + b], sre[r], "lane {b} bin {r} re");
                assert_eq!(im[r * batch + b], sim[r], "lane {b} bin {r} im");
            }
        }
    }

    #[test]
    fn epilogue_inverse_matches_in_place_inverse_bitwise() {
        // The fused-epilogue inverse must hand out exactly the rows the
        // in-place inverse would have written — same arithmetic, same bits.
        for n in [1usize, 2, 4, 16, 64] {
            let batch = 3;
            let plan = BatchFftPlan::<f32>::new(n).unwrap();
            let bins = n / 2 + 1;
            let mut re = vec![0.0f32; n * batch];
            let mut im = vec![0.0f32; n * batch];
            for (i, v) in seeded(bins * batch, 5 + n as u64).iter().enumerate() {
                re[i] = *v as f32;
            }
            for (i, v) in seeded(bins * batch, 6 + n as u64).iter().enumerate() {
                im[i] = *v as f32;
            }
            let mut re2 = re.clone();
            let mut im2 = im.clone();
            plan.inverse_planes_real(&mut re, &mut im, batch).unwrap();
            let mut got = vec![f32::NAN; n * batch];
            plan.inverse_planes_real_epilogue(&mut re2, &mut im2, batch, &mut |row, lanes| {
                got[row * batch..(row + 1) * batch].copy_from_slice(lanes);
            })
            .unwrap();
            assert_eq!(&got, &re[..n * batch], "n={n}");
        }
    }

    #[test]
    fn epilogue_rows_arrive_once_each_and_are_mutable() {
        let n = 8;
        let batch = 2;
        let plan = BatchFftPlan::<f64>::new(n).unwrap();
        let x = seeded(n * batch, 77);
        let mut re = x.clone();
        let mut im = vec![0.0f64; n * batch];
        plan.forward_planes_real(&mut re, &mut im, batch).unwrap();
        let mut seen = vec![0u32; n];
        let mut out = vec![0.0f64; n * batch];
        plan.inverse_planes_real_epilogue(&mut re, &mut im, batch, &mut |row, lanes| {
            seen[row] += 1;
            for v in lanes.iter_mut() {
                *v += 1.0; // epilogue may edit the row in place
            }
            out[row * batch..(row + 1) * batch].copy_from_slice(lanes);
        })
        .unwrap();
        assert!(
            seen.iter().all(|&c| c == 1),
            "rows must arrive exactly once"
        );
        for (i, (&a, &e)) in out.iter().zip(&x).enumerate() {
            assert!((a - (e + 1.0)).abs() < 1e-10, "idx {i}: {a} vs {e}+1");
        }
    }

    #[test]
    fn real_planes_validate_sizes() {
        let plan = BatchFftPlan::<f64>::new(8).unwrap();
        let mut re = vec![0.0; 15];
        let mut im = vec![0.0; 15];
        assert!(plan.forward_planes_real(&mut re, &mut im, 2).is_err());
        assert!(plan.inverse_planes_real(&mut re, &mut im, 0).is_err());
    }

    #[test]
    fn length_one_is_identity() {
        let plan = BatchFftPlan::<f32>::new(1).unwrap();
        let mut re = vec![2.5f32, -1.0];
        let mut im = vec![0.5f32, 0.25];
        plan.forward_planes(&mut re, &mut im, 2).unwrap();
        assert_eq!(re, vec![2.5, -1.0]);
        plan.inverse_planes(&mut re, &mut im, 2).unwrap();
        assert_eq!(re, vec![2.5, -1.0]);
    }
}
