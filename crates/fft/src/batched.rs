//! Batch-plane FFT: one transform over many signals at once.
//!
//! The batched block-circulant engine holds its spectra in
//! structure-of-arrays planes `[index][batch]` (split re/im), with the batch
//! dimension innermost. Transforming `batch` signals one at a time wastes
//! that layout — every butterfly of a radix-2 FFT applied at index granularity
//! is the *same* operation for every signal in the batch, so this plan runs
//! each butterfly across the whole length-`batch` row at once: stride-1
//! loops the compiler turns into SIMD, and one plan dispatch per *block*
//! instead of per *sample*.
//!
//! This is the software analogue of feeding the paper's FFT datapath a new
//! input vector every cycle: the butterfly structure is fixed, only the data
//! streams.

use crate::complex::Complex;
use crate::error::FftError;
use crate::float::Float;

/// A planned radix-2 FFT of power-of-two length `n` over `[n][batch]`
/// split re/im planes.
///
/// # Examples
///
/// ```
/// use circnn_fft::BatchFftPlan;
///
/// # fn main() -> Result<(), circnn_fft::FftError> {
/// let plan = BatchFftPlan::<f32>::new(4)?;
/// // Two interleaved signals: [1,0,0,0] and [0,1,0,0] (batch-innermost).
/// let mut re = vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0];
/// let mut im = vec![0.0; 8];
/// plan.forward_planes(&mut re, &mut im, 2)?;
/// assert_eq!(re[0], 1.0); // DC bin of signal 0
/// assert_eq!(re[1], 1.0); // DC bin of signal 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchFftPlan<T> {
    n: usize,
    /// Flattened per-stage twiddles `e^{-2πi j/len}`, stages in order
    /// `len = 2, 4, …, n`, `j in 0..len/2` each.
    tw_re: Vec<T>,
    tw_im: Vec<T>,
    /// Bit-reversal permutation of `0..n`.
    bitrev: Vec<usize>,
}

impl<T: Float> BatchFftPlan<T> {
    /// Builds a plan for batched transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ZeroLength`] if `n == 0` and
    /// [`FftError::NotPowerOfTwo`] otherwise for non-power-of-two `n`.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n == 0 {
            return Err(FftError::ZeroLength);
        }
        if !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo(n));
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    (i as u64).reverse_bits().wrapping_shr(64 - bits) as usize
                }
            })
            .collect();
        let mut tw_re = Vec::new();
        let mut tw_im = Vec::new();
        let mut len = 2;
        while len <= n {
            for j in 0..len / 2 {
                let theta = -T::TWO * T::PI * T::from_usize(j) / T::from_usize(len);
                let w = Complex::from_polar(T::ONE, theta);
                tw_re.push(w.re);
                tw_im.push(w.im);
            }
            len <<= 1;
        }
        Ok(Self {
            n,
            tw_re,
            tw_im,
            bitrev,
        })
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; provided for API completeness alongside [`len`].
    ///
    /// [`len`]: Self::len
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn validate(&self, re: &[T], im: &[T], batch: usize) -> Result<(), FftError> {
        if batch == 0 {
            return Err(FftError::ZeroLength);
        }
        let want = self.n * batch;
        if re.len() != want || im.len() != want {
            return Err(FftError::LengthMismatch {
                expected: want,
                got: re.len().min(im.len()),
            });
        }
        Ok(())
    }

    /// In-place forward DFT of `batch` signals held as `[n][batch]` planes.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if the planes are not `n·batch` long or the
    /// batch is zero.
    pub fn forward_planes(&self, re: &mut [T], im: &mut [T], batch: usize) -> Result<(), FftError> {
        self.validate(re, im, batch)?;
        self.permute(re, im, batch);
        self.butterflies(re, im, batch, false);
        Ok(())
    }

    /// In-place inverse DFT (scaled by `1/n`) of `batch` signals.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] if the planes are not `n·batch` long or the
    /// batch is zero.
    pub fn inverse_planes(&self, re: &mut [T], im: &mut [T], batch: usize) -> Result<(), FftError> {
        self.validate(re, im, batch)?;
        self.permute(re, im, batch);
        self.butterflies(re, im, batch, true);
        let scale = T::ONE / T::from_usize(self.n);
        for v in re.iter_mut() {
            *v = *v * scale;
        }
        for v in im.iter_mut() {
            *v = *v * scale;
        }
        Ok(())
    }

    /// Applies the bit-reversal row permutation.
    fn permute(&self, re: &mut [T], im: &mut [T], batch: usize) {
        for (i, &j) in self.bitrev.iter().enumerate() {
            if i < j {
                for b in 0..batch {
                    re.swap(i * batch + b, j * batch + b);
                    im.swap(i * batch + b, j * batch + b);
                }
            }
        }
    }

    /// Runs every butterfly stage; `inverse` conjugates the twiddles.
    fn butterflies(&self, re: &mut [T], im: &mut [T], batch: usize, inverse: bool) {
        let n = self.n;
        let mut len = 2;
        let mut tw_off = 0;
        while len <= n {
            let half = len / 2;
            for start in (0..n).step_by(len) {
                for j in 0..half {
                    let wr = self.tw_re[tw_off + j];
                    let wi0 = self.tw_im[tw_off + j];
                    let wi = if inverse { T::ZERO - wi0 } else { wi0 };
                    let lo = (start + j) * batch;
                    let hi = (start + j + half) * batch;
                    // Rows `lo` and `hi` are disjoint (`lo < hi`).
                    let (re_a, re_b) = re.split_at_mut(hi);
                    let (im_a, im_b) = im.split_at_mut(hi);
                    let ar = &mut re_a[lo..lo + batch];
                    let ai = &mut im_a[lo..lo + batch];
                    let br = &mut re_b[..batch];
                    let bi = &mut im_b[..batch];
                    // One butterfly across every signal in the batch —
                    // stride-1 lanes the compiler vectorizes.
                    for (((a_r, a_i), b_r), b_i) in ar
                        .iter_mut()
                        .zip(ai.iter_mut())
                        .zip(br.iter_mut())
                        .zip(bi.iter_mut())
                    {
                        let tr = wr * *b_r - wi * *b_i;
                        let ti = wr * *b_i + wi * *b_r;
                        *b_r = *a_r - tr;
                        *b_i = *a_i - ti;
                        *a_r = *a_r + tr;
                        *a_i = *a_i + ti;
                    }
                }
            }
            tw_off += half;
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FftPlan;

    fn seeded(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(BatchFftPlan::<f64>::new(0).is_err());
        assert!(BatchFftPlan::<f64>::new(12).is_err());
        let plan = BatchFftPlan::<f64>::new(4).unwrap();
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        assert!(plan.forward_planes(&mut re, &mut im, 3).is_err());
        assert!(plan.forward_planes(&mut re, &mut im, 0).is_err());
    }

    #[test]
    fn matches_scalar_fft_per_lane() {
        for log in 0..=7 {
            let n = 1usize << log;
            let batch = 5;
            let plan = BatchFftPlan::<f64>::new(n).unwrap();
            let scalar = FftPlan::<f64>::new(n).unwrap();
            // Batch of distinct signals.
            let signals: Vec<Vec<f64>> = (0..batch).map(|b| seeded(n, 7 + b as u64)).collect();
            let mut re = vec![0.0f64; n * batch];
            let mut im = vec![0.0f64; n * batch];
            for (b, sig) in signals.iter().enumerate() {
                for (t, &v) in sig.iter().enumerate() {
                    re[t * batch + b] = v;
                }
            }
            plan.forward_planes(&mut re, &mut im, batch).unwrap();
            for (b, sig) in signals.iter().enumerate() {
                let spec = scalar.forward_real(sig).unwrap();
                for t in 0..n {
                    let d = (re[t * batch + b] - spec[t].re).abs()
                        + (im[t * batch + b] - spec[t].im).abs();
                    assert!(d < 1e-9 * n as f64, "n={n} lane {b} bin {t}: err {d}");
                }
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let n = 64;
        let batch = 3;
        let plan = BatchFftPlan::<f64>::new(n).unwrap();
        let orig = seeded(n * batch, 3);
        let mut re = orig.clone();
        let mut im = seeded(n * batch, 4);
        let orig_im = im.clone();
        plan.forward_planes(&mut re, &mut im, batch).unwrap();
        plan.inverse_planes(&mut re, &mut im, batch).unwrap();
        for i in 0..n * batch {
            assert!((re[i] - orig[i]).abs() < 1e-10);
            assert!((im[i] - orig_im[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn length_one_is_identity() {
        let plan = BatchFftPlan::<f32>::new(1).unwrap();
        let mut re = vec![2.5f32, -1.0];
        let mut im = vec![0.5f32, 0.25];
        plan.forward_planes(&mut re, &mut im, 2).unwrap();
        assert_eq!(re, vec![2.5, -1.0]);
        plan.inverse_planes(&mut re, &mut im, 2).unwrap();
        assert_eq!(re, vec![2.5, -1.0]);
    }
}
