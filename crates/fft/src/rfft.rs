//! Real-input FFT exploiting Hermitian symmetry.
//!
//! DNN activations and weights are real-valued, so their spectra satisfy
//! `X[k] = conj(X[n−k])` and only `n/2 + 1` bins carry information. The
//! paper leans on exactly this in hardware (Fig. 10: "the outcomes in the
//! red circles do not need to be calculated and stored"). In software the
//! same saving is realized by packing the real signal into a half-length
//! complex signal, running one half-size FFT, and unpacking — roughly a 2×
//! reduction in both compute and intermediate storage.

use crate::complex::Complex;
use crate::error::FftError;
use crate::float::Float;
use crate::plan::FftPlan;

/// A planned real-input FFT of power-of-two length `n`.
///
/// The forward transform maps `n` reals to the `n/2 + 1` unique spectrum
/// bins; the inverse maps them back.
///
/// # Examples
///
/// ```
/// use circnn_fft::RealFftPlan;
///
/// # fn main() -> Result<(), circnn_fft::FftError> {
/// let plan = RealFftPlan::<f64>::new(8)?;
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// let spectrum = plan.forward(&x)?;
/// assert_eq!(spectrum.len(), 5); // n/2 + 1 unique bins
/// let back = plan.inverse(&spectrum)?;
/// assert!((back[3] - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RealFftPlan<T> {
    n: usize,
    /// Half-size complex plan (`None` for the trivial n = 1 transform).
    half: Option<FftPlan<T>>,
    /// Unpack twiddles `e^{-2πik/n}` for `k in 0..=n/2`.
    twiddles: Vec<Complex<T>>,
}

impl<T: Float> RealFftPlan<T> {
    /// Builds a plan for real transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::ZeroLength`] if `n == 0` and
    /// [`FftError::NotPowerOfTwo`] otherwise for non-power-of-two `n`.
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n == 0 {
            return Err(FftError::ZeroLength);
        }
        if !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo(n));
        }
        let half = if n >= 2 {
            Some(FftPlan::new(n / 2)?)
        } else {
            None
        };
        let mut twiddles = Vec::with_capacity(n / 2 + 1);
        for k in 0..=n / 2 {
            let theta = -T::TWO * T::PI * T::from_usize(k) / T::from_usize(n);
            twiddles.push(Complex::from_polar(T::ONE, theta));
        }
        Ok(Self { n, half, twiddles })
    }

    /// Real signal length this plan transforms.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; provided for API completeness alongside [`len`].
    ///
    /// [`len`]: Self::len
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of unique spectrum bins, `n/2 + 1`.
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward transform into a freshly allocated spectrum buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != self.len()`.
    pub fn forward(&self, input: &[T]) -> Result<Vec<Complex<T>>, FftError> {
        let mut out = vec![Complex::zero(); self.spectrum_len()];
        let mut scratch = vec![Complex::zero(); self.n / 2];
        self.forward_with_scratch(input, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Forward transform using caller-provided buffers (no allocation).
    ///
    /// `out` must hold `n/2 + 1` bins and `scratch` must hold `n/2` values.
    /// This is the hot path used by the block-circulant layers.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if any buffer has the wrong size.
    pub fn forward_with_scratch(
        &self,
        input: &[T],
        out: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) -> Result<(), FftError> {
        if input.len() != self.n {
            return Err(FftError::LengthMismatch {
                expected: self.n,
                got: input.len(),
            });
        }
        if out.len() != self.spectrum_len() {
            return Err(FftError::LengthMismatch {
                expected: self.spectrum_len(),
                got: out.len(),
            });
        }
        if self.n == 1 {
            out[0] = Complex::from_real(input[0]);
            return Ok(());
        }
        let n2 = self.n / 2;
        if scratch.len() != n2 {
            return Err(FftError::LengthMismatch {
                expected: n2,
                got: scratch.len(),
            });
        }
        // Pack x[2m] + i·x[2m+1] and run the half-size complex FFT.
        for m in 0..n2 {
            scratch[m] = Complex::new(input[2 * m], input[2 * m + 1]);
        }
        let half = self.half.as_ref().expect("n >= 2 always has a half plan");
        half.forward(scratch)?;
        // Unpack: E[k] = (Z[k] + conj(Z[n2−k]))/2 is the even-sample DFT,
        // O[k] = (Z[k] − conj(Z[n2−k]))/(2i) the odd-sample DFT, and
        // X[k] = E[k] + e^{-2πik/n}·O[k].
        let half_scalar = T::HALF;
        for k in 0..=n2 {
            let zk = scratch[k % n2];
            let znk = scratch[(n2 - k) % n2].conj();
            let even = (zk + znk).scale(half_scalar);
            let diff = zk - znk;
            // (a+bi)/(2i) = (b - ai)/2
            let odd = Complex::new(diff.im, -diff.re).scale(half_scalar);
            out[k] = even + odd * self.twiddles[k];
        }
        Ok(())
    }

    /// Inverse transform into a freshly allocated real buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `spectrum.len() != n/2 + 1`.
    pub fn inverse(&self, spectrum: &[Complex<T>]) -> Result<Vec<T>, FftError> {
        let mut out = vec![T::ZERO; self.n];
        let mut scratch = vec![Complex::zero(); self.n / 2];
        self.inverse_with_scratch(spectrum, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Inverse transform using caller-provided buffers (no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if any buffer has the wrong size.
    pub fn inverse_with_scratch(
        &self,
        spectrum: &[Complex<T>],
        out: &mut [T],
        scratch: &mut [Complex<T>],
    ) -> Result<(), FftError> {
        if spectrum.len() != self.spectrum_len() {
            return Err(FftError::LengthMismatch {
                expected: self.spectrum_len(),
                got: spectrum.len(),
            });
        }
        if out.len() != self.n {
            return Err(FftError::LengthMismatch {
                expected: self.n,
                got: out.len(),
            });
        }
        if self.n == 1 {
            out[0] = spectrum[0].re;
            return Ok(());
        }
        let n2 = self.n / 2;
        if scratch.len() != n2 {
            return Err(FftError::LengthMismatch {
                expected: n2,
                got: scratch.len(),
            });
        }
        // Re-pack: E[k] = (X[k] + conj(X[n2−k]))/2,
        // O[k] = e^{+2πik/n}·(X[k] − conj(X[n2−k]))/2, Z[k] = E[k] + i·O[k].
        let half_scalar = T::HALF;
        for k in 0..n2 {
            let xk = spectrum[k];
            let xnk = spectrum[n2 - k].conj();
            let even = (xk + xnk).scale(half_scalar);
            let odd = (xk - xnk).scale(half_scalar) * self.twiddles[k].conj();
            scratch[k] = even + Complex::new(-odd.im, odd.re); // + i·odd
        }
        let half = self.half.as_ref().expect("n >= 2 always has a half plan");
        half.inverse(scratch)?;
        for m in 0..n2 {
            out[2 * m] = scratch[m].re;
            out[2 * m + 1] = scratch[m].im;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FftPlan;

    fn seeded_real(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(RealFftPlan::<f64>::new(0).is_err());
        assert!(RealFftPlan::<f64>::new(6).is_err());
    }

    #[test]
    fn trivial_length_one() {
        let plan = RealFftPlan::<f64>::new(1).unwrap();
        let spec = plan.forward(&[5.0]).unwrap();
        assert_eq!(spec.len(), 1);
        assert_eq!(spec[0], Complex::new(5.0, 0.0));
        let back = plan.inverse(&spec).unwrap();
        assert_eq!(back, vec![5.0]);
    }

    #[test]
    fn length_two() {
        let plan = RealFftPlan::<f64>::new(2).unwrap();
        let spec = plan.forward(&[3.0, 1.0]).unwrap();
        assert!((spec[0].re - 4.0).abs() < 1e-12);
        assert!((spec[1].re - 2.0).abs() < 1e-12);
        let back = plan.inverse(&spec).unwrap();
        assert!((back[0] - 3.0).abs() < 1e-12 && (back[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_full_complex_fft() {
        for log in 1..=11 {
            let n = 1usize << log;
            let rplan = RealFftPlan::<f64>::new(n).unwrap();
            let cplan = FftPlan::<f64>::new(n).unwrap();
            let x = seeded_real(n, log as u64);
            let rspec = rplan.forward(&x).unwrap();
            let cspec = cplan.forward_real(&x).unwrap();
            for k in 0..=n / 2 {
                let d = (rspec[k] - cspec[k]).abs();
                assert!(d < 1e-10 * n as f64, "n = {n}, bin {k}: err {d}");
            }
        }
    }

    #[test]
    fn spectrum_len_is_half_plus_one() {
        for n in [1usize, 2, 4, 64, 4096] {
            let plan = RealFftPlan::<f64>::new(n).unwrap();
            assert_eq!(plan.spectrum_len(), n / 2 + 1);
            assert_eq!(plan.forward(&vec![0.5; n]).unwrap().len(), n / 2 + 1);
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for n in [2usize, 4, 16, 256, 2048] {
            let plan = RealFftPlan::<f64>::new(n).unwrap();
            let x = seeded_real(n, 1234 + n as u64);
            let spec = plan.forward(&x).unwrap();
            let back = plan.inverse(&spec).unwrap();
            for (a, b) in back.iter().zip(&x) {
                assert!((a - b).abs() < 1e-10, "n = {n}");
            }
        }
    }

    #[test]
    fn dc_and_nyquist_bins_are_real() {
        let n = 32;
        let plan = RealFftPlan::<f64>::new(n).unwrap();
        let x = seeded_real(n, 77);
        let spec = plan.forward(&x).unwrap();
        assert!(spec[0].im.abs() < 1e-12);
        assert!(spec[n / 2].im.abs() < 1e-12);
        let sum: f64 = x.iter().sum();
        assert!((spec[0].re - sum).abs() < 1e-10);
    }

    #[test]
    fn scratch_api_rejects_wrong_sizes() {
        let plan = RealFftPlan::<f64>::new(8).unwrap();
        let x = [0.0; 8];
        let mut out = vec![Complex::zero(); 5];
        let mut bad_scratch = vec![Complex::zero(); 3];
        assert!(plan
            .forward_with_scratch(&x, &mut out, &mut bad_scratch)
            .is_err());
        let mut bad_out = vec![Complex::zero(); 4];
        let mut scratch = vec![Complex::zero(); 4];
        assert!(plan
            .forward_with_scratch(&x, &mut bad_out, &mut scratch)
            .is_err());
        assert!(plan.forward(&[0.0; 7]).is_err());
        assert!(plan.inverse(&vec![Complex::zero(); 4]).is_err());
    }

    #[test]
    fn f32_round_trip() {
        let n = 128;
        let plan = RealFftPlan::<f32>::new(n).unwrap();
        let x: Vec<f32> = seeded_real(n, 9).iter().map(|&v| v as f32).collect();
        let spec = plan.forward(&x).unwrap();
        let back = plan.inverse(&spec).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
