//! Fixed-point FFT modelling the CirCNN hardware datapath.
//!
//! The paper's architecture computes with "16-bit fixed point numbers for
//! input and weight representations" (§4.2) and evaluates an aggressive
//! 4-bit mode for the near-threshold study (§5.2, noting accuracy collapses
//! below 20% for AlexNet at 4 bits). This module provides a bit-accurate
//! software model: inputs are quantized to a [`QFormat`], butterflies run in
//! integer arithmetic with round-to-nearest shifts, and every stage halves
//! the data (the standard hardware guard against overflow), so a forward
//! transform returns `DFT(x)/n`.
//!
//! Two consumers build on this model. `circnn-quant` sweeps accuracy vs.
//! bit width with the simulated fixed-point transform, reproducing the
//! qualitative 16-bit-fine / 4-bit-broken result. `circnn-core` uses only
//! [`QFormat`] from here — its serving-time quantized path
//! (`QuantizedOperator`) keeps the FFT itself in f32 and applies the
//! format's step size to hold **spectra** as i16 codes, because the
//! spectral-plane engine's cost is streaming weight planes through the
//! MAC, not the transform. The bit-accurate butterflies below stay the
//! reference for what a hardware datapath would additionally lose.

use crate::complex::Complex;
use crate::error::FftError;

/// A signed fixed-point format: `bits` total bits, `frac` fractional bits.
///
/// # Examples
///
/// ```
/// use circnn_fft::fixed::QFormat;
///
/// let q = QFormat::new(16, 12);
/// let x = q.quantize(0.7312);
/// assert!((q.dequantize(x) - 0.7312).abs() < 1.0 / 4096.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    bits: u32,
    frac: u32,
}

impl QFormat {
    /// Creates a format with `bits` total bits and `frac` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0, exceeds 32, or `frac >= bits`.
    pub fn new(bits: u32, frac: u32) -> Self {
        assert!(bits > 0 && bits <= 32, "bits must be in 1..=32");
        assert!(frac < bits, "need at least one integer/sign bit");
        Self { bits, frac }
    }

    /// The paper's default inference format: 16 bits with 12 fractional bits
    /// (±8 dynamic range, fine enough that "inaccuracy caused by quantization
    /// … will not accumulate significantly", §4.2).
    pub fn q16() -> Self {
        Self::new(16, 12)
    }

    /// The aggressive 4-bit near-threshold format of §5.2.
    pub fn q4() -> Self {
        Self::new(4, 2)
    }

    /// Total bit width.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Fractional bit count.
    #[inline]
    pub fn frac(&self) -> u32 {
        self.frac
    }

    /// The scale factor `2^frac`.
    #[inline]
    pub fn scale(&self) -> f64 {
        (1u64 << self.frac) as f64
    }

    /// Largest representable integer code.
    #[inline]
    pub fn max_code(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Smallest representable integer code.
    #[inline]
    pub fn min_code(&self) -> i64 {
        -(1i64 << (self.bits - 1))
    }

    /// Quantizes a real value: round to nearest, saturate to range.
    pub fn quantize(&self, x: f64) -> i64 {
        let v = (x * self.scale()).round() as i64;
        v.clamp(self.min_code(), self.max_code())
    }

    /// Converts an integer code back to a real value.
    pub fn dequantize(&self, code: i64) -> f64 {
        code as f64 / self.scale()
    }

    /// Saturates an integer to the representable code range.
    #[inline]
    pub fn saturate(&self, v: i64) -> i64 {
        v.clamp(self.min_code(), self.max_code())
    }

    /// Quantization step size in real units.
    pub fn step(&self) -> f64 {
        1.0 / self.scale()
    }
}

/// A complex value held as integer fixed-point codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixedComplex {
    /// Real-part code.
    pub re: i64,
    /// Imaginary-part code.
    pub im: i64,
}

/// Round-to-nearest arithmetic shift right.
#[inline]
fn rshift_round(v: i64, s: u32) -> i64 {
    if s == 0 {
        v
    } else {
        (v + (1i64 << (s - 1))) >> s
    }
}

/// A planned fixed-point complex FFT.
///
/// Twiddles are stored in Q(bits−1) (one sign bit, full fractional
/// precision, matching a hardware ROM); data uses the caller's [`QFormat`].
/// Each butterfly level halves its outputs, so `forward` computes
/// `DFT(x) / n` without overflow.
#[derive(Debug, Clone)]
pub struct FixedFftPlan {
    n: usize,
    format: QFormat,
    /// Twiddle fractional bits (`format.bits() − 1`).
    tw_frac: u32,
    twiddles: Vec<FixedComplex>,
    bitrev: Vec<u32>,
}

impl FixedFftPlan {
    /// Builds a fixed-point plan of length `n` in the given data format.
    ///
    /// # Errors
    ///
    /// Returns [`FftError`] for zero or non-power-of-two `n`.
    pub fn new(n: usize, format: QFormat) -> Result<Self, FftError> {
        if n == 0 {
            return Err(FftError::ZeroLength);
        }
        if !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo(n));
        }
        let log2n = n.trailing_zeros();
        let tw_frac = format.bits().max(8) - 1; // ROM precision tracks datapath width, >= Q7
        let tw_scale = (1i64 << tw_frac) as f64;
        let mut twiddles = Vec::with_capacity(n / 2);
        for k in 0..n / 2 {
            let theta = -2.0 * core::f64::consts::PI * k as f64 / n as f64;
            twiddles.push(FixedComplex {
                re: (theta.cos() * tw_scale).round() as i64,
                im: (theta.sin() * tw_scale).round() as i64,
            });
        }
        let mut bitrev = vec![0u32; n];
        if n > 1 {
            for (i, slot) in bitrev.iter_mut().enumerate() {
                *slot = (i as u32).reverse_bits() >> (32 - log2n);
            }
        }
        Ok(Self {
            n,
            format,
            tw_frac,
            twiddles,
            bitrev,
        })
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Data format of this plan.
    #[inline]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// In-place forward transform; the result is `DFT(x) / n` in integer
    /// codes of [`Self::format`] (per-stage halving).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on buffer size mismatch.
    pub fn forward(&self, data: &mut [FixedComplex]) -> Result<(), FftError> {
        if data.len() != self.n {
            return Err(FftError::LengthMismatch {
                expected: self.n,
                got: data.len(),
            });
        }
        if self.n == 1 {
            return Ok(());
        }
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let mut half = 1usize;
        while half < self.n {
            let stride = self.n / (2 * half);
            for start in (0..self.n).step_by(2 * half) {
                for k in 0..half {
                    let tw = self.twiddles[k * stride];
                    let a = data[start + k];
                    let b = data[start + k + half];
                    // b * tw in integer arithmetic, rescaled by tw_frac.
                    let br = rshift_round(b.re * tw.re - b.im * tw.im, self.tw_frac);
                    let bi = rshift_round(b.re * tw.im + b.im * tw.re, self.tw_frac);
                    // Per-stage halving keeps the datapath in range; this is
                    // the standard scaled-FFT hardware schedule.
                    let sum_re = rshift_round(a.re + br, 1);
                    let sum_im = rshift_round(a.im + bi, 1);
                    let dif_re = rshift_round(a.re - br, 1);
                    let dif_im = rshift_round(a.im - bi, 1);
                    data[start + k] = FixedComplex {
                        re: self.format.saturate(sum_re),
                        im: self.format.saturate(sum_im),
                    };
                    data[start + k + half] = FixedComplex {
                        re: self.format.saturate(dif_re),
                        im: self.format.saturate(dif_im),
                    };
                }
            }
            half *= 2;
        }
        Ok(())
    }

    /// Convenience: quantize a real `f64` signal, run the fixed-point FFT,
    /// and return the de-quantized spectrum **rescaled by `n`** so it is
    /// directly comparable with a floating-point DFT.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != self.len()`.
    pub fn forward_real(&self, input: &[f64]) -> Result<Vec<Complex<f64>>, FftError> {
        if input.len() != self.n {
            return Err(FftError::LengthMismatch {
                expected: self.n,
                got: input.len(),
            });
        }
        let mut data: Vec<FixedComplex> = input
            .iter()
            .map(|&x| FixedComplex {
                re: self.format.quantize(x),
                im: 0,
            })
            .collect();
        self.forward(&mut data)?;
        let n = self.n as f64;
        Ok(data
            .iter()
            .map(|c| {
                Complex::new(
                    self.format.dequantize(c.re) * n,
                    self.format.dequantize(c.im) * n,
                )
            })
            .collect())
    }
}

/// Signal-to-noise ratio (dB) of the fixed-point FFT of `signal` relative to
/// a double-precision reference. Higher is better; with the per-stage
/// halving schedule, 16-bit formats land around 40–45 dB at n = 256 while
/// 4-bit formats collapse below ~15 dB.
///
/// # Errors
///
/// Returns [`FftError`] if `signal.len()` is not a power of two.
pub fn fixed_fft_snr_db(signal: &[f64], format: QFormat) -> Result<f64, FftError> {
    let n = signal.len();
    let plan = FixedFftPlan::new(n, format)?;
    let approx = plan.forward_real(signal)?;
    let refplan = crate::plan::FftPlan::<f64>::new(n)?;
    let exact = refplan.forward_real(signal)?;
    let mut sig_energy = 0.0;
    let mut err_energy = 0.0;
    for (a, e) in approx.iter().zip(&exact) {
        sig_energy += e.norm_sqr();
        err_energy += (*a - *e).norm_sqr();
    }
    if err_energy == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (sig_energy / err_energy).log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * 0.9
            })
            .collect()
    }

    #[test]
    fn qformat_round_trip_within_one_step() {
        let q = QFormat::q16();
        for &x in &[0.0, 0.5, -0.75, 1.9, -1.99, 7.5] {
            let back = q.dequantize(q.quantize(x));
            assert!((back - x).abs() <= q.step(), "x = {x}");
        }
    }

    #[test]
    fn qformat_saturates() {
        let q = QFormat::new(8, 6); // range ±2
        assert_eq!(q.quantize(100.0), q.max_code());
        assert_eq!(q.quantize(-100.0), q.min_code());
        assert!(q.dequantize(q.max_code()) < 2.0);
    }

    #[test]
    #[should_panic(expected = "integer/sign bit")]
    fn qformat_rejects_all_fraction() {
        let _ = QFormat::new(8, 8);
    }

    #[test]
    fn rshift_rounds_to_nearest() {
        assert_eq!(rshift_round(5, 1), 3); // 2.5 -> 3
        assert_eq!(rshift_round(4, 1), 2);
        assert_eq!(rshift_round(-5, 1), -2); // -2.5 -> -2 (round half up)
        assert_eq!(rshift_round(7, 0), 7);
    }

    #[test]
    fn sixteen_bit_fft_is_accurate() {
        let n = 256;
        let snr = fixed_fft_snr_db(&seeded(n, 1), QFormat::q16()).unwrap();
        assert!(snr > 35.0, "16-bit SNR too low: {snr} dB");
    }

    #[test]
    fn four_bit_fft_is_badly_degraded() {
        // Mirrors §5.2: "overall accuracy when using 4-bit representation is
        // low" — the datapath itself is the bottleneck.
        let n = 256;
        let snr16 = fixed_fft_snr_db(&seeded(n, 2), QFormat::q16()).unwrap();
        let snr4 = fixed_fft_snr_db(&seeded(n, 2), QFormat::q4()).unwrap();
        assert!(snr4 < 20.0, "4-bit SNR unexpectedly high: {snr4} dB");
        assert!(snr16 > snr4 + 25.0);
    }

    #[test]
    fn snr_improves_monotonically_with_bits() {
        let sig = seeded(128, 3);
        let mut last = -100.0;
        for bits in [6u32, 8, 10, 12, 16] {
            let snr = fixed_fft_snr_db(&sig, QFormat::new(bits, bits - 4)).unwrap();
            assert!(snr > last, "bits = {bits}: {snr} !> {last}");
            last = snr;
        }
    }

    #[test]
    fn forward_real_matches_float_dft_shape() {
        let n = 64;
        let sig = seeded(n, 4);
        let plan = FixedFftPlan::new(n, QFormat::q16()).unwrap();
        let approx = plan.forward_real(&sig).unwrap();
        let exact = crate::plan::FftPlan::<f64>::new(n)
            .unwrap()
            .forward_real(&sig)
            .unwrap();
        // DC bin should agree to within quantization noise.
        assert!((approx[0].re - exact[0].re).abs() < 0.1);
    }

    #[test]
    fn plan_rejects_bad_lengths_and_buffers() {
        assert!(FixedFftPlan::new(0, QFormat::q16()).is_err());
        assert!(FixedFftPlan::new(12, QFormat::q16()).is_err());
        let plan = FixedFftPlan::new(8, QFormat::q16()).unwrap();
        let mut buf = vec![FixedComplex::default(); 4];
        assert!(plan.forward(&mut buf).is_err());
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FixedFftPlan::new(1, QFormat::q16()).unwrap();
        let mut buf = vec![FixedComplex { re: 100, im: -3 }];
        plan.forward(&mut buf).unwrap();
        assert_eq!(buf[0], FixedComplex { re: 100, im: -3 });
    }
}
