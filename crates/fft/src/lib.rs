//! # circnn-fft
//!
//! From-scratch FFT substrate for the CirCNN reproduction.
//!
//! CirCNN (Ding et al., MICRO'17) replaces dense weight matrices by
//! block-circulant ones and computes every matrix–vector product as
//! `IFFT(FFT(w) ∘ FFT(x))`. The FFT is therefore the single computational
//! kernel of the whole system — both of the software algorithms
//! (Algorithms 1–2 of the paper) and of the hardware architecture
//! (Section 4, where the *basic computing block* is a butterfly array).
//!
//! This crate provides everything those layers need, with no external
//! numeric dependencies:
//!
//! * [`Complex`] — a minimal complex-number type generic over [`Float`]
//!   (`f32`/`f64`).
//! * [`FftPlan`] — a planned, iterative radix-2 decimation-in-time FFT with
//!   precomputed twiddle factors and bit-reversal tables.
//! * [`RealFftPlan`] — a real-input FFT exploiting Hermitian symmetry via the
//!   half-size complex-FFT packing trick. This is the software analogue of
//!   the paper's Fig. 10 observation that real inputs let the hardware skip
//!   the symmetric half of each butterfly level ("red circles").
//! * [`convolve`] — circular convolution/correlation, both direct `O(n²)`
//!   and FFT-based `O(n log n)`; the circulant-matvec identities the whole
//!   project rests on are tested here against brute force.
//! * [`fft2d`] — 2-D FFT and LeCun-style spatial FFT convolution (the
//!   paper's §2.3 related-work baseline \[52\]).
//! * [`fixed`] — a 16-bit-style fixed-point FFT with per-stage scaling,
//!   modelling the hardware datapath of Section 4.2 ("16-bit fixed point
//!   numbers for input and weight representations").
//! * [`recursive`] — an explicit recursive decomposition mirroring the
//!   paper's Fig. 9, with a butterfly trace used to cross-validate the
//!   cycle model in `circnn-hw`.
//! * [`ops`] — closed-form operation counts for FFT workloads.
//!
//! ## Example
//!
//! ```
//! use circnn_fft::{FftPlan, Complex};
//!
//! # fn main() -> Result<(), circnn_fft::FftError> {
//! let plan = FftPlan::<f64>::new(8)?;
//! let mut data: Vec<Complex<f64>> =
//!     (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! plan.forward(&mut data)?;
//! plan.inverse(&mut data)?;
//! assert!((data[3].re - 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batched;
mod complex;
mod error;
mod float;
mod plan;
mod rfft;

pub mod convolve;
pub mod fft2d;
pub mod fixed;
pub mod ops;
pub mod recursive;

pub use batched::BatchFftPlan;
pub use complex::{Complex, Complex32, Complex64};
pub use error::FftError;
pub use float::Float;
pub use plan::{FftDirection, FftPlan};
pub use rfft::RealFftPlan;
