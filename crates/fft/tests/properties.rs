//! Property-based tests for the FFT substrate.
//!
//! These pin the algebraic laws the rest of the CirCNN stack relies on:
//! invertibility, linearity, Parseval, the convolution/correlation theorems,
//! and the Hermitian symmetry that justifies the real-FFT (and the paper's
//! Fig. 10 hardware saving).

use circnn_fft::convolve::{
    circulant_from_first_row, circular_convolve_direct, circular_correlate_direct,
    CircularConvolver,
};
use circnn_fft::{Complex, FftPlan, RealFftPlan};
use proptest::prelude::*;

/// Strategy: a power-of-two length in `[2, 256]` plus that many doubles.
fn real_signal() -> impl Strategy<Value = Vec<f64>> {
    (1u32..=8).prop_flat_map(|log| {
        let n = 1usize << log;
        prop::collection::vec(-100.0..100.0f64, n..=n)
    })
}

fn complex_signal() -> impl Strategy<Value = Vec<Complex<f64>>> {
    (1u32..=8).prop_flat_map(|log| {
        let n = 1usize << log;
        prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), n..=n)
            .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
    })
}

fn max_abs(v: &[Complex<f64>]) -> f64 {
    v.iter().map(|z| z.abs()).fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fft_round_trip_recovers_signal(sig in complex_signal()) {
        let plan = FftPlan::new(sig.len()).unwrap();
        let mut buf = sig.clone();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        let scale = max_abs(&sig).max(1.0);
        for (a, b) in buf.iter().zip(&sig) {
            prop_assert!((*a - *b).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn fft_is_linear(sig in complex_signal(), alpha in -10.0..10.0f64) {
        let n = sig.len();
        let plan = FftPlan::new(n).unwrap();
        let mut scaled: Vec<Complex<f64>> = sig.iter().map(|z| z.scale(alpha)).collect();
        plan.forward(&mut scaled).unwrap();
        let mut base = sig.clone();
        plan.forward(&mut base).unwrap();
        let scale = max_abs(&base).max(1.0) * alpha.abs().max(1.0);
        for (a, b) in scaled.iter().zip(&base) {
            prop_assert!((*a - b.scale(alpha)).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn parseval_holds(sig in complex_signal()) {
        let n = sig.len();
        let plan = FftPlan::new(n).unwrap();
        let time: f64 = sig.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = sig.clone();
        plan.forward(&mut freq).unwrap();
        let spec: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - spec).abs() < 1e-7 * time.max(1.0));
    }

    #[test]
    fn real_fft_matches_complex_fft(sig in real_signal()) {
        let n = sig.len();
        let rplan = RealFftPlan::new(n).unwrap();
        let cplan = FftPlan::new(n).unwrap();
        let rspec = rplan.forward(&sig).unwrap();
        let cspec = cplan.forward_real(&sig).unwrap();
        let scale = max_abs(&cspec).max(1.0);
        for k in 0..=n / 2 {
            prop_assert!((rspec[k] - cspec[k]).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn real_fft_round_trip(sig in real_signal()) {
        let plan = RealFftPlan::new(sig.len()).unwrap();
        let spec = plan.forward(&sig).unwrap();
        let back = plan.inverse(&spec).unwrap();
        let scale = sig.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for (a, b) in back.iter().zip(&sig) {
            prop_assert!((a - b).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn convolution_theorem(ab in (1u32..=7).prop_flat_map(|log| {
        let n = 1usize << log;
        (prop::collection::vec(-10.0..10.0f64, n..=n),
         prop::collection::vec(-10.0..10.0f64, n..=n))
    })) {
        let (a, b) = ab;
        let conv = CircularConvolver::new(a.len()).unwrap();
        let fast = conv.convolve(&a, &b).unwrap();
        let slow = circular_convolve_direct(&a, &b);
        let scale = slow.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f - s).abs() < 1e-8 * scale);
        }
    }

    #[test]
    fn correlation_theorem_is_first_row_circulant_matvec(wx in (1u32..=6).prop_flat_map(|log| {
        let n = 1usize << log;
        (prop::collection::vec(-10.0..10.0f64, n..=n),
         prop::collection::vec(-10.0..10.0f64, n..=n))
    })) {
        let (w, x) = wx;
        let k = w.len();
        // Dense reference: build the circulant matrix, multiply explicitly.
        let dense = circulant_from_first_row(&w);
        let reference: Vec<f64> = (0..k)
            .map(|i| (0..k).map(|j| dense[i * k + j] * x[j]).sum())
            .collect();
        // Fast path used by the CirCNN layers.
        let conv = CircularConvolver::new(k).unwrap();
        let fast = conv.correlate(&w, &x).unwrap();
        // And the direct O(k²) correlation.
        let direct = circular_correlate_direct(&w, &x);
        let scale = reference.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        for i in 0..k {
            prop_assert!((fast[i] - reference[i]).abs() < 1e-8 * scale);
            prop_assert!((direct[i] - reference[i]).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn real_spectrum_is_hermitian(sig in real_signal()) {
        let n = sig.len();
        let plan = FftPlan::new(n).unwrap();
        let spec = plan.forward_real(&sig).unwrap();
        let scale = max_abs(&spec).max(1.0);
        for k in 1..n {
            prop_assert!((spec[k] - spec[n - k].conj()).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn convolution_is_commutative_and_bilinear(
        abc in (1u32..=6).prop_flat_map(|log| {
            let n = 1usize << log;
            (prop::collection::vec(-5.0..5.0f64, n..=n),
             prop::collection::vec(-5.0..5.0f64, n..=n),
             prop::collection::vec(-5.0..5.0f64, n..=n))
        }),
        alpha in -3.0..3.0f64,
    ) {
        let (a, b, c) = abc;
        let n = a.len();
        let ab = circular_convolve_direct(&a, &b);
        let ba = circular_convolve_direct(&b, &a);
        // a ⊛ (b + αc) = a ⊛ b + α (a ⊛ c)
        let bc: Vec<f64> = b.iter().zip(&c).map(|(&x, &y)| x + alpha * y).collect();
        let lhs = circular_convolve_direct(&a, &bc);
        let ac = circular_convolve_direct(&a, &c);
        for i in 0..n {
            prop_assert!((ab[i] - ba[i]).abs() < 1e-9 * ab[i].abs().max(1.0));
            let rhs = ab[i] + alpha * ac[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-8 * rhs.abs().max(1.0));
        }
    }
}

/// Strategy: a power-of-two plane length in `[1, 128]`, a batch in
/// `[1, 6]`, and `n·batch` lane values.
fn real_planes() -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (0u32..=7, 1usize..=6).prop_flat_map(|(log, batch)| {
        let n = 1usize << log;
        prop::collection::vec(-50.0..50.0f64, n * batch..=n * batch)
            .prop_map(move |v| (n, batch, v))
    })
}

proptest! {
    /// The real-input plane FFT must agree with the complex plane FFT run
    /// on the same real data (zero imaginary plane) on every unique
    /// half-spectrum bin — the Fig.-10 specialization changes the work,
    /// not the transform.
    #[test]
    fn real_plane_fft_matches_complex_plane_fft((n, batch, data) in real_planes()) {
        let plan = circnn_fft::BatchFftPlan::<f64>::new(n).unwrap();
        let mut cre = data.clone();
        let mut cim = vec![0.0f64; n * batch];
        plan.forward_planes(&mut cre, &mut cim, batch).unwrap();
        let mut rre = data.clone();
        let mut rim = vec![123.0f64; n * batch]; // scratch: contents ignored
        plan.forward_planes_real(&mut rre, &mut rim, batch).unwrap();
        let scale = data.iter().fold(1.0f64, |a, &v| a.max(v.abs())) * n as f64;
        for r in 0..n / 2 + 1 {
            for b in 0..batch {
                let i = r * batch + b;
                prop_assert!(
                    (rre[i] - cre[i]).abs() + (rim[i] - cim[i]).abs() < 1e-12 * scale,
                    "n={n} batch={batch} bin {r} lane {b}: ({}, {}) vs ({}, {})",
                    rre[i], rim[i], cre[i], cim[i]
                );
            }
        }
    }

    /// Real-plane forward → inverse is the identity (to rounding), for
    /// every lane independently.
    #[test]
    fn real_plane_round_trip_recovers_signal((n, batch, data) in real_planes()) {
        let plan = circnn_fft::BatchFftPlan::<f64>::new(n).unwrap();
        let mut re = data.clone();
        let mut im = vec![0.0f64; n * batch];
        plan.forward_planes_real(&mut re, &mut im, batch).unwrap();
        plan.inverse_planes_real(&mut re, &mut im, batch).unwrap();
        let scale = data.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
        for (i, (&a, &e)) in re.iter().zip(&data).enumerate() {
            prop_assert!((a - e).abs() < 1e-12 * scale.max(1.0) * n as f64,
                "n={n} idx {i}: {a} vs {e}");
        }
    }
}
