//! # circnn-tensor
//!
//! Minimal dense-tensor substrate for the CirCNN reproduction.
//!
//! The paper's training stack (Caffe + GPUs in the original) is replaced by
//! a small, deterministic CPU library. It provides exactly what the DNN and
//! block-circulant layers need:
//!
//! * [`Tensor`] — a row-major `f32` n-d array with element-wise arithmetic,
//!   2-D matrix multiplication, transposition and reshaping.
//! * [`im2col`] — the convolution-lowering transform of the paper's Fig. 6
//!   ("reformulation of Eqn. (6) to matrix multiplication"), plus its
//!   adjoint `col2im` used by the backward pass.
//! * [`init`] — seeded Xavier/He initializers built on `rand`.
//!
//! Everything is deterministic given a seed; no threading, no SIMD
//! intrinsics — results are bit-reproducible across runs, which the
//! experiment harness relies on.
//!
//! ## Example
//!
//! ```
//! use circnn_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod shape;
mod tensor;

pub mod im2col;
pub mod init;

pub use shape::Shape;
pub use tensor::{stack_samples, Tensor};
