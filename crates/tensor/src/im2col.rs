//! Convolution lowering (the paper's Fig. 6) and its adjoint.
//!
//! CirCNN's CONV-layer algorithm (§3.2) reformulates the tensor convolution
//! of Eqn. (6) as a matrix multiplication `Y = X·F` where each row of `X` is
//! one receptive-field patch. Eqn. (7) then shows that, when every slice
//! `F(·,·,i,j)` is circulant across the channel dimensions, the lowered
//! matrix `F ∈ R^{Cr²×P}` is **block-circulant** — provided the patch layout
//! keeps the input channel as the fastest-varying index within each kernel
//! offset. This module implements exactly that layout:
//!
//! ```text
//! column index of (kh, kw, c)  =  (kh · r + kw) · C + c
//! ```
//!
//! (`c` fastest, matching the paper's `a + C(i−1) + Cr(j−1)` indexing), and
//! the adjoint scatter-add `col2im` used by the backward pass.

use crate::tensor::Tensor;

/// Geometry of a 2-D convolution over a `[C, H, W]` input.
///
/// # Examples
///
/// ```
/// use circnn_tensor::im2col::ConvGeometry;
///
/// let g = ConvGeometry::new(3, 32, 32, 5, 1, 2);
/// assert_eq!((g.out_height(), g.out_width()), (32, 32)); // "same" padding
/// assert_eq!(g.patch_len(), 3 * 5 * 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels `C`.
    pub channels: usize,
    /// Input height `H`.
    pub height: usize,
    /// Input width `W`.
    pub width: usize,
    /// Square kernel size `r`.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry, validating that at least one output pixel exists.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (with padding) does not fit in the input, or if
    /// any of `channels`, `height`, `width`, `kernel`, `stride` is zero.
    pub fn new(
        channels: usize,
        height: usize,
        width: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(channels > 0 && height > 0 && width > 0, "degenerate input");
        assert!(kernel > 0 && stride > 0, "degenerate kernel/stride");
        assert!(
            height + 2 * padding >= kernel && width + 2 * padding >= kernel,
            "kernel {kernel} larger than padded input {height}x{width}+{padding}"
        );
        Self {
            channels,
            height,
            width,
            kernel,
            stride,
            padding,
        }
    }

    /// Output feature-map height.
    pub fn out_height(&self) -> usize {
        (self.height + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output feature-map width.
    pub fn out_width(&self) -> usize {
        (self.width + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Patch length `C·r²` — one row of the lowered matrix.
    pub fn patch_len(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }

    /// Number of patches (output pixels) `out_h · out_w`.
    pub fn num_patches(&self) -> usize {
        self.out_height() * self.out_width()
    }

    /// Input element count `C·H·W`.
    pub fn input_len(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// Lowers a `[C, H, W]` input to the patch matrix `[num_patches, C·r²]`.
///
/// Column layout: channel fastest within each kernel offset (see module
/// docs) so a channel-circulant filter bank lowers to a block-circulant
/// matrix per Eqn. (7).
///
/// # Panics
///
/// Panics if `input` is not `[C, H, W]` for the given geometry.
pub fn im2col(input: &Tensor, geom: &ConvGeometry) -> Tensor {
    assert_eq!(
        input.dims(),
        &[geom.channels, geom.height, geom.width],
        "input shape does not match geometry"
    );
    let (oh, ow) = (geom.out_height(), geom.out_width());
    let (r, c_in) = (geom.kernel, geom.channels);
    let mut out = vec![0.0f32; geom.num_patches() * geom.patch_len()];
    let data = input.data();
    let patch_len = geom.patch_len();
    for oy in 0..oh {
        for ox in 0..ow {
            let patch = (oy * ow + ox) * patch_len;
            for kh in 0..r {
                let iy = (oy * geom.stride + kh) as isize - geom.padding as isize;
                for kw in 0..r {
                    let ix = (ox * geom.stride + kw) as isize - geom.padding as isize;
                    let col_base = patch + (kh * r + kw) * c_in;
                    if iy < 0 || ix < 0 || iy >= geom.height as isize || ix >= geom.width as isize {
                        continue; // zero padding: leave zeros
                    }
                    let (iy, ix) = (iy as usize, ix as usize);
                    for c in 0..c_in {
                        out[col_base + c] = data[(c * geom.height + iy) * geom.width + ix];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[geom.num_patches(), patch_len])
}

/// Adjoint of [`im2col`]: scatter-adds a patch-matrix gradient back onto the
/// `[C, H, W]` input grid. Satisfies `⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩`.
///
/// # Panics
///
/// Panics if `cols` is not `[num_patches, C·r²]` for the geometry.
pub fn col2im(cols: &Tensor, geom: &ConvGeometry) -> Tensor {
    assert_eq!(
        cols.dims(),
        &[geom.num_patches(), geom.patch_len()],
        "patch matrix shape does not match geometry"
    );
    let (oh, ow) = (geom.out_height(), geom.out_width());
    let (r, c_in) = (geom.kernel, geom.channels);
    let mut out = vec![0.0f32; geom.input_len()];
    let data = cols.data();
    let patch_len = geom.patch_len();
    for oy in 0..oh {
        for ox in 0..ow {
            let patch = (oy * ow + ox) * patch_len;
            for kh in 0..r {
                let iy = (oy * geom.stride + kh) as isize - geom.padding as isize;
                for kw in 0..r {
                    let ix = (ox * geom.stride + kw) as isize - geom.padding as isize;
                    if iy < 0 || ix < 0 || iy >= geom.height as isize || ix >= geom.width as isize {
                        continue;
                    }
                    let (iy, ix) = (iy as usize, ix as usize);
                    let col_base = patch + (kh * r + kw) * c_in;
                    for c in 0..c_in {
                        out[(c * geom.height + iy) * geom.width + ix] += data[col_base + c];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[geom.channels, geom.height, geom.width])
}

/// Direct evaluation of the paper's Eqn. (6) — the `O(WHr²CP)` reference
/// convolution used to validate the lowered path.
///
/// `filters` is `[P, r, r, C]`-shaped logically but passed as a flat tensor
/// `[P, r*r*C]` whose inner layout matches the im2col column order.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn conv2d_direct(input: &Tensor, filters: &Tensor, geom: &ConvGeometry) -> Tensor {
    assert_eq!(input.dims(), &[geom.channels, geom.height, geom.width]);
    assert_eq!(
        filters.dims()[1],
        geom.patch_len(),
        "filter patch length mismatch"
    );
    let p_out = filters.dims()[0];
    let cols = im2col(input, geom);
    let out = cols.matmul(&filters.transpose());
    // out is [num_patches, P]; rearrange to [P, out_h, out_w].
    let (oh, ow) = (geom.out_height(), geom.out_width());
    let mut chw = vec![0.0f32; p_out * oh * ow];
    for patch in 0..geom.num_patches() {
        for p in 0..p_out {
            chw[p * oh * ow + patch] = out.data()[patch * p_out + p];
        }
    }
    Tensor::from_vec(chw, &[p_out, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_input(c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_vec((0..c * h * w).map(|i| i as f32).collect(), &[c, h, w])
    }

    #[test]
    fn geometry_formulas() {
        let g = ConvGeometry::new(1, 28, 28, 5, 1, 0);
        assert_eq!(g.out_height(), 24);
        assert_eq!(g.out_width(), 24);
        assert_eq!(g.num_patches(), 576);
        assert_eq!(g.patch_len(), 25);
        let strided = ConvGeometry::new(3, 32, 32, 3, 2, 1);
        assert_eq!(strided.out_height(), 16);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn geometry_rejects_oversized_kernel() {
        let _ = ConvGeometry::new(1, 4, 4, 7, 1, 0);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1×1 kernel, stride 1: each patch is exactly one input pixel.
        let g = ConvGeometry::new(2, 3, 3, 1, 1, 0);
        let x = counting_input(2, 3, 3);
        let cols = im2col(&x, &g);
        assert_eq!(cols.dims(), &[9, 2]);
        // Patch (0,0) holds channel-0 pixel 0 and channel-1 pixel 9.
        assert_eq!(cols.at(&[0, 0]), 0.0);
        assert_eq!(cols.at(&[0, 1]), 9.0);
    }

    #[test]
    fn channel_is_fastest_within_kernel_offset() {
        // The Eqn.-(7) layout requirement.
        let g = ConvGeometry::new(3, 2, 2, 2, 1, 0);
        let x = counting_input(3, 2, 2);
        let cols = im2col(&x, &g);
        assert_eq!(cols.dims(), &[1, 12]);
        // First three entries: (kh=0,kw=0) across channels 0,1,2 = pixels 0, 4, 8.
        assert_eq!(&cols.data()[0..3], &[0.0, 4.0, 8.0]);
        // Next three: (kh=0, kw=1) across channels = pixels 1, 5, 9.
        assert_eq!(&cols.data()[3..6], &[1.0, 5.0, 9.0]);
    }

    #[test]
    fn padding_produces_zeros() {
        let g = ConvGeometry::new(1, 2, 2, 3, 1, 1);
        let x = Tensor::ones(&[1, 2, 2]);
        let cols = im2col(&x, &g);
        assert_eq!(g.num_patches(), 4);
        // Top-left patch: only the bottom-right 2×2 of the kernel overlaps.
        let first = cols.row(0);
        let nonzero = first.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 4);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ for arbitrary x, y.
        let g = ConvGeometry::new(2, 5, 4, 3, 1, 1);
        let x = counting_input(2, 5, 4).map(|v| (v * 0.37).sin());
        let y = Tensor::from_vec(
            (0..g.num_patches() * g.patch_len())
                .map(|i| ((i * 7919) % 13) as f32 - 6.0)
                .collect(),
            &[g.num_patches(), g.patch_len()],
        );
        let lhs: f32 = im2col(&x, &g)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, &g).data())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn direct_convolution_matches_hand_computation() {
        // 1 channel, 3×3 input, 2×2 averaging-ish kernel.
        let g = ConvGeometry::new(1, 3, 3, 2, 1, 0);
        let x = counting_input(1, 3, 3); // 0..9 grid
        let f = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 4]);
        let y = conv2d_direct(&x, &f, &g);
        assert_eq!(y.dims(), &[1, 2, 2]);
        // Patch sums: (0+1+3+4), (1+2+4+5), (3+4+6+7), (4+5+7+8)
        assert_eq!(y.data(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn stride_two_downsamples() {
        let g = ConvGeometry::new(1, 4, 4, 2, 2, 0);
        let x = counting_input(1, 4, 4);
        let f = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[1, 4]);
        let y = conv2d_direct(&x, &f, &g);
        assert_eq!(y.dims(), &[1, 2, 2]);
        assert_eq!(y.data(), &[0.0, 2.0, 8.0, 10.0]); // top-left of each patch
    }

    #[test]
    fn multi_output_channels() {
        let g = ConvGeometry::new(1, 3, 3, 2, 1, 0);
        let x = Tensor::ones(&[1, 3, 3]);
        let f = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0], &[2, 4]);
        let y = conv2d_direct(&x, &f, &g);
        assert_eq!(y.dims(), &[2, 2, 2]);
        assert!(y.data()[0..4].iter().all(|&v| v == 4.0));
        assert!(y.data()[4..8].iter().all(|&v| v == 8.0));
    }
}
