//! Seeded weight initializers.
//!
//! CirCNN "directly trains the vectors w_ij" (§3.1) rather than converting a
//! pre-trained dense model, so initialization matters for both the dense
//! baselines and the circulant variants. All initializers take an explicit
//! RNG so every experiment is reproducible from a single seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// Creates the workspace's standard deterministic RNG from a seed.
///
/// # Examples
///
/// ```
/// use circnn_tensor::init::{seeded_rng, uniform};
///
/// let mut rng = seeded_rng(42);
/// let t = uniform(&mut rng, &[4, 4], -1.0, 1.0);
/// let mut rng2 = seeded_rng(42);
/// let t2 = uniform(&mut rng2, &[4, 4], -1.0, 1.0);
/// assert_eq!(t.data(), t2.data()); // bit-reproducible
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform initialization over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform<R: Rng>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "empty uniform range [{lo}, {hi})");
    let shape = crate::shape::Shape::new(dims);
    let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, dims)
}

/// One standard-normal sample via Box–Muller (keeps us inside plain `rand`
/// without the `rand_distr` dependency).
fn standard_normal<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
            return z as f32;
        }
    }
}

/// Normal initialization with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std` is negative.
pub fn normal<R: Rng>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Tensor {
    assert!(std >= 0.0, "negative standard deviation");
    let shape = crate::shape::Shape::new(dims);
    let data = (0..shape.len())
        .map(|_| mean + std * standard_normal(rng))
        .collect();
    Tensor::from_vec(data, dims)
}

/// Xavier/Glorot uniform initialization: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. The default for sigmoid/tanh layers.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng>(
    rng: &mut R,
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "zero fan");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, dims, -a, a)
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))`. The default
/// for ReLU layers (all CirCNN benchmark nets use ReLU).
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn he_normal<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "zero fan-in");
    normal(rng, dims, 0.0, (2.0 / fan_in as f32).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_from_seed() {
        let a = normal(&mut seeded_rng(7), &[100], 0.0, 1.0);
        let b = normal(&mut seeded_rng(7), &[100], 0.0, 1.0);
        assert_eq!(a.data(), b.data());
        let c = normal(&mut seeded_rng(8), &[100], 0.0, 1.0);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(&mut seeded_rng(1), &[10_000], -0.25, 0.75);
        assert!(t.data().iter().all(|&v| (-0.25..0.75).contains(&v)));
        // Mean of U(-0.25, 0.75) is 0.25.
        assert!((t.mean() - 0.25).abs() < 0.02);
    }

    #[test]
    fn normal_moments_are_close() {
        let t = normal(&mut seeded_rng(2), &[20_000], 1.0, 2.0);
        assert!((t.mean() - 1.0).abs() < 0.05);
        let var: f32 = t
            .data()
            .iter()
            .map(|&v| (v - t.mean()).powi(2))
            .sum::<f32>()
            / t.len() as f32;
        assert!((var.sqrt() - 2.0).abs() < 0.06, "std = {}", var.sqrt());
    }

    #[test]
    fn xavier_bound_formula() {
        let t = xavier_uniform(&mut seeded_rng(3), &[64, 64], 64, 64);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= a));
        assert!(t.max() > 0.5 * a, "should come close to the bound");
    }

    #[test]
    fn he_scale_tracks_fan_in() {
        let narrow = he_normal(&mut seeded_rng(4), &[10_000], 10);
        let wide = he_normal(&mut seeded_rng(4), &[10_000], 1000);
        let std = |t: &Tensor| (t.norm_sqr() / t.len() as f32).sqrt();
        assert!(std(&narrow) > 5.0 * std(&wide));
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn uniform_rejects_inverted_range() {
        let _ = uniform(&mut seeded_rng(0), &[1], 1.0, 1.0);
    }
}
