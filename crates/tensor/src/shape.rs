//! Tensor shapes and row-major index arithmetic.

use core::fmt;

/// The extent of each tensor dimension, row-major (last dimension fastest).
///
/// # Examples
///
/// ```
/// use circnn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (zero-sized tensors are never
    /// meaningful in this workspace and usually indicate a bug).
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in shape {dims:?}"
        );
        Self {
            dims: dims.to_vec(),
        }
    }

    /// A scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Self { dims: Vec::new() }
    }

    /// Dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (1 for a scalar).
    #[inline]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// `true` only for the degenerate rank-0 case with no elements — never
    /// constructed here; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-index into a row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank differs or any coordinate is out of range.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut flat = 0usize;
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(i < d, "index {i} out of range for axis {axis} (extent {d})");
            flat = flat * d + i;
        }
        flat
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.len(), 60);
        assert_eq!(s.dim(1), 4);
        assert_eq!(s.dims(), &[3, 4, 5]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.flat_index(&[]), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
    }

    #[test]
    fn flat_index_round_trips_with_strides() {
        let s = Shape::new(&[2, 3, 4]);
        let strides = s.strides();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let manual = i * strides[0] + j * strides[1] + k * strides[2];
                    assert_eq!(s.flat_index(&[i, j, k]), manual);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero-sized dimension")]
    fn rejects_zero_dims() {
        let _ = Shape::new(&[2, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_index() {
        let _ = Shape::new(&[2, 2]).flat_index(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn rejects_wrong_rank_index() {
        let _ = Shape::new(&[2, 2]).flat_index(&[1]);
    }

    #[test]
    fn conversions_and_formatting() {
        let s: Shape = [2usize, 3].into();
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(format!("{s}"), "[2, 3]");
        assert!(format!("{s:?}").contains("Shape"));
    }
}
