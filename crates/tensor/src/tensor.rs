//! The dense `f32` tensor used throughout the DNN stack.

use core::fmt;

use crate::shape::Shape;

/// A row-major dense `f32` tensor.
///
/// Storage is a contiguous `Vec<f32>`; all views copy (the workloads in this
/// workspace are small enough that clarity beats zero-copy cleverness, and
/// the hot paths — FFT butterflies and `matmul` — operate on contiguous
/// slices anyway).
///
/// # Examples
///
/// ```
/// use circnn_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2]);
/// let relu = x.map(|v| v.max(0.0));
/// assert_eq!(relu.data(), &[1.0, 0.0, 3.0, 0.0]);
/// assert_eq!(x.transpose().data(), &[1.0, 3.0, -2.0, -4.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from data in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape} ({} elements)",
            data.len(),
            shape.len()
        );
        Self { data, shape }
    }

    /// An all-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// An all-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::filled(dims, 1.0)
    }

    /// A tensor filled with a constant.
    pub fn filled(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// The `n×n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Borrows the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents (shorthand for `shape().dims()`).
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements (impossible by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-range coordinates.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.flat_index(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-range coordinates.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.shape.flat_index(index);
        self.data[i] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} elements into {shape}",
            self.len()
        );
        Self {
            data: self.data.clone(),
            shape,
        }
    }

    /// Applies a function element-wise, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Self {
        Self {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies a function element-wise in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise binary operation.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Self, f: F) -> Self {
        assert_eq!(self.shape, other.shape, "shape mismatch in element-wise op");
        Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Accumulates `alpha * other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element (−∞ for the impossible empty case).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element (first occurrence).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm.
    pub fn norm_sqr(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Matrix multiplication of two rank-2 tensors: `(m×k)·(k×n) → (m×n)`.
    ///
    /// Cache-friendly i-k-j loop order. This is the `O(n²)`-per-matvec dense
    /// baseline the block-circulant layers are measured against.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.shape.rank(), 2, "matmul lhs must be a matrix");
        assert_eq!(other.shape.rank(), 2, "matmul rhs must be a matrix");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Self {
            data: out,
            shape: Shape::new(&[m, n]),
        }
    }

    /// Matrix–vector product of a rank-2 tensor with a slice.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank-2 or `x.len()` differs from the column count.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.shape.rank(), 2, "matvec needs a matrix");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        assert_eq!(x.len(), k, "vector length mismatch");
        (0..m)
            .map(|i| {
                self.data[i * k..(i + 1) * k]
                    .iter()
                    .zip(x)
                    .map(|(&a, &b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank-2.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.shape.rank(), 2, "transpose needs a matrix");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Self {
            data: out,
            shape: Shape::new(&[n, m]),
        }
    }

    /// Copies row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank-2 or `r` is out of range.
    pub fn row(&self, r: usize) -> Vec<f32> {
        assert_eq!(self.shape.rank(), 2, "row access needs a matrix");
        let n = self.shape.dim(1);
        assert!(r < self.shape.dim(0), "row {r} out of range");
        self.data[r * n..(r + 1) * n].to_vec()
    }

    /// Writes `values` into row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics on rank/row/length mismatch.
    pub fn set_row(&mut self, r: usize, values: &[f32]) {
        assert_eq!(self.shape.rank(), 2, "row access needs a matrix");
        let n = self.shape.dim(1);
        assert!(r < self.shape.dim(0), "row {r} out of range");
        assert_eq!(values.len(), n, "row length mismatch");
        self.data[r * n..(r + 1) * n].copy_from_slice(values);
    }

    /// Splits the leading axis, returning the `i`-th sub-tensor
    /// (e.g. one image out of an `[N, C, H, W]` batch).
    ///
    /// # Panics
    ///
    /// Panics if `self` is rank-0 or `i` exceeds the leading extent.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(self.shape.rank() >= 1, "cannot index a scalar");
        let n0 = self.shape.dim(0);
        assert!(i < n0, "index {i} out of range for leading axis {n0}");
        let rest: Vec<usize> = self.shape.dims()[1..].to_vec();
        let chunk = self.len() / n0;
        let dims = if rest.is_empty() { vec![1] } else { rest };
        Tensor::from_vec(self.data[i * chunk..(i + 1) * chunk].to_vec(), &dims)
    }
}

/// Stacks `batch` per-sample tensors along a new leading axis: calls
/// `f(0..batch)` and concatenates the results into a `[batch, ...]` tensor.
///
/// All samples must share the first sample's shape. This is the one stacking
/// loop behind every `Layer::forward_batch`/`backward_batch` fallback.
///
/// # Panics
///
/// Panics if `batch == 0` or a later sample's shape differs from the first.
pub fn stack_samples<F: FnMut(usize) -> Tensor>(batch: usize, mut f: F) -> Tensor {
    assert!(batch > 0, "empty batch");
    let first = f(0);
    let sample_dims = first.dims().to_vec();
    let mut data = Vec::with_capacity(batch * first.len());
    data.extend_from_slice(first.data());
    for b in 1..batch {
        let y = f(b);
        assert_eq!(y.dims(), &sample_dims[..], "sample {b} shape diverged");
        data.extend_from_slice(y.data());
    }
    let mut dims = vec![batch];
    dims.extend_from_slice(&sample_dims);
    Tensor::from_vec(data, &dims)
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 16 {
            write!(f, "Tensor{} {:?}", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor{} [{} elements, mean {:.4}]",
                self.shape,
                self.len(),
                self.mean()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.len(), 6);
        assert_eq!(t.dims(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn fills() {
        assert!(Tensor::zeros(&[3, 3]).data().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(&[4]).data().iter().all(|&v| v == 1.0));
        assert!(Tensor::filled(&[2], 2.5).data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn identity_matmul_is_neutral() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_agrees_with_matvec() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32 * 0.5 - 2.0).collect(), &[3, 4]);
        let x = [1.0, -1.0, 0.5, 2.0];
        let via_vec = a.matvec(&x);
        let via_mat = a.matmul(&Tensor::from_vec(x.to_vec(), &[4, 1]));
        assert_eq!(via_vec, via_mat.data());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_validates_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn transpose_distributes_over_matmul() {
        let a = Tensor::from_vec((0..6).map(|i| (i as f32).sin()).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).cos()).collect(), &[3, 4]);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.data(), &[2.5, 4.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.5, 0.5], &[4]);
        assert_eq!(t.sum(), 3.0);
        assert_eq!(t.mean(), 0.75);
        assert_eq!(t.max(), 3.5);
        assert_eq!(t.argmax(), 2);
        assert!((t.norm_sqr() - (1.0 + 4.0 + 12.25 + 0.25)).abs() < 1e-6);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_validates_count() {
        let _ = Tensor::zeros(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn rows_and_axis_indexing() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        assert_eq!(t.row(1), vec![4.0, 5.0, 6.0, 7.0]);
        let mut t2 = t.clone();
        t2.set_row(0, &[9.0, 9.0, 9.0, 9.0]);
        assert_eq!(t2.row(0), vec![9.0; 4]);
        let batch = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let img = batch.index_axis0(1);
        assert_eq!(img.dims(), &[3, 4]);
        assert_eq!(img.at(&[0, 0]), 12.0);
    }

    #[test]
    fn map_and_zip() {
        let t = Tensor::from_vec(vec![-1.0, 2.0], &[2]);
        assert_eq!(t.map(f32::abs).data(), &[1.0, 2.0]);
        let mut u = t.clone();
        u.map_inplace(|v| v + 1.0);
        assert_eq!(u.data(), &[0.0, 3.0]);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert!(!format!("{:?}", Tensor::zeros(&[2, 2])).is_empty());
        assert!(!format!("{:?}", Tensor::zeros(&[64, 64])).is_empty());
    }
}
