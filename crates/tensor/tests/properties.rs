//! Property tests for the tensor substrate.

use circnn_tensor::im2col::{col2im, im2col, ConvGeometry};
use circnn_tensor::Tensor;
use proptest::prelude::*;

fn matrix(max: usize) -> impl Strategy<Value = Tensor> {
    (1usize..max, 1usize..max).prop_flat_map(move |(m, n)| {
        prop::collection::vec(-10.0f32..10.0, m * n..=m * n)
            .prop_map(move |data| Tensor::from_vec(data, &[m, n]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(a in matrix(12)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_identity_is_neutral(a in matrix(10)) {
        let n = a.dims()[1];
        let prod = a.matmul(&Tensor::eye(n));
        for (x, y) in prod.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(8), seed in any::<u64>()) {
        // (A·B)ᵀ == Bᵀ·Aᵀ for a random compatible B.
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let _ = m;
        let n = (seed % 6 + 1) as usize;
        let bdata: Vec<f32> = (0..k * n).map(|i| ((i as f32) * 0.37).sin()).collect();
        let b = Tensor::from_vec(bdata, &[k, n]);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matvec_matches_matmul(a in matrix(10)) {
        let n = a.dims()[1];
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.71).cos()).collect();
        let via_vec = a.matvec(&x);
        let via_mat = a.matmul(&Tensor::from_vec(x.clone(), &[n, 1]));
        for (u, v) in via_vec.iter().zip(via_mat.data()) {
            prop_assert!((u - v).abs() < 1e-4);
        }
    }

    #[test]
    fn elementwise_ops_commute_appropriately(a in matrix(8)) {
        let b = a.map(|v| v * 0.5 + 1.0);
        let (ab, ba) = (a.add(&b), b.add(&a));
        prop_assert_eq!(ab.data(), ba.data());
        let (am, bm) = (a.mul(&b), b.mul(&a));
        prop_assert_eq!(am.data(), bm.data());
        let zero = a.sub(&a);
        prop_assert!(zero.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reductions_are_consistent(a in matrix(10)) {
        let sum = a.sum();
        let mean = a.mean();
        prop_assert!((sum - mean * a.len() as f32).abs() < 1e-2 * sum.abs().max(1.0));
        let max = a.max();
        prop_assert!(a.data().iter().all(|&v| v <= max));
        prop_assert_eq!(a.data()[a.argmax()], max);
    }

    #[test]
    fn im2col_col2im_adjointness(
        (c, h, w, r, s, p) in (1usize..4, 3usize..9, 3usize..9, 1usize..4, 1usize..3, 0usize..2)
    ) {
        prop_assume!(h + 2 * p >= r && w + 2 * p >= r);
        let geom = ConvGeometry::new(c, h, w, r, s, p);
        let x = Tensor::from_vec(
            (0..c * h * w).map(|i| ((i as f32) * 0.13).sin()).collect(),
            &[c, h, w],
        );
        let y = Tensor::from_vec(
            (0..geom.num_patches() * geom.patch_len())
                .map(|i| ((i as f32) * 0.29).cos())
                .collect(),
            &[geom.num_patches(), geom.patch_len()],
        );
        let lhs: f32 = im2col(&x, &geom).data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(col2im(&y, &geom).data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_preserves_energy_bound(
        (c, h, w) in (1usize..4, 4usize..10, 4usize..10)
    ) {
        // Each input pixel appears at most r² times in the patch matrix.
        let r = 3usize;
        prop_assume!(h >= r && w >= r);
        let geom = ConvGeometry::new(c, h, w, r, 1, 0);
        let x = Tensor::ones(&[c, h, w]);
        let cols = im2col(&x, &geom);
        let total: f32 = cols.data().iter().sum();
        prop_assert!(total <= (r * r * c * h * w) as f32 + 0.5);
    }
}
