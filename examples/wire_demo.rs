//! Network-serving demo: a `WireServer` hosting two tenants — a
//! block-circulant MLP and a block-circulant convnet — queried over TCP
//! by concurrent `WireClient` connections, with every answer checked
//! bit-for-bit against the direct read-only inference path, plus a
//! deadline that cannot be met failing with the typed error.
//!
//! Run with `cargo run --release --example wire_demo`.

use std::sync::Arc;
use std::time::Duration;

use circnn::core::{CirculantConv2d, CirculantLinear};
use circnn::nn::{Flatten, InferScratch, Layer, Linear, MaxPool2d, Relu, Sequential};
use circnn::serve::TenantConfig;
use circnn::tensor::init::seeded_rng;
use circnn::tensor::Tensor;
use circnn::wire::{ErrorCode, ModelRegistry, WireClient, WireConfig, WireError, WireServer};

fn mlp(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new()
        .add(CirculantLinear::new(&mut rng, 128, 256, 32).expect("valid block"))
        .add(Relu::new())
        .add(CirculantLinear::new(&mut rng, 256, 64, 16).expect("valid block"))
        .add(Relu::new())
        .add(Linear::new(&mut rng, 64, 10))
}

fn convnet(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new()
        .add(CirculantConv2d::new(&mut rng, 4, 8, 3, 1, 1, 4).expect("valid block"))
        .add(Relu::new())
        .add(MaxPool2d::new(2, 2))
        .add(Flatten::new())
        .add(CirculantLinear::new(&mut rng, 8 * 8 * 8, 32, 16).expect("valid block"))
        .add(Relu::new())
        .add(Linear::new(&mut rng, 32, 10))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== circnn-wire demo ==\n");

    // 1) Register two tenants: the registry owns the shared worker pool.
    let registry = Arc::new(ModelRegistry::new(2)?);
    registry.add_network("mlp", mlp(7), &[128], TenantConfig::default())?;
    registry.add_network("convnet", convnet(8), &[4, 16, 16], TenantConfig::default())?;

    // 2) Serve them over TCP (ephemeral port).
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default())?;
    let addr = server.local_addr();
    println!("serving on {addr}");

    let mut probe = WireClient::connect(addr)?;
    probe.ping()?;
    for m in probe.list_models()? {
        println!(
            "  model {:10} {:>5} -> {:<4} ({} queued)",
            m.name, m.input_len, m.output_len, m.pending
        );
    }

    // 3) Concurrent connections across both tenants, bitwise-checked
    //    against the direct read-only inference path.
    let clients = 8;
    let requests = 40;
    println!("\n{clients} connections x {requests} requests, bitwise-checked…");
    std::thread::scope(|s| {
        for c in 0..clients {
            let (mut reference, model, len, dims) = if c % 2 == 0 {
                (mlp(7), "mlp", 128usize, vec![1usize, 128])
            } else {
                (convnet(8), "convnet", 4 * 16 * 16, vec![1, 4, 16, 16])
            };
            reference.set_training(false);
            s.spawn(move || {
                let mut wire = WireClient::connect(addr).expect("connect");
                let mut scratch = InferScratch::new();
                let mut rng = seeded_rng(100 + c as u64);
                for _ in 0..requests {
                    let x = circnn::tensor::init::uniform(&mut rng, &[len], -1.0, 1.0);
                    let served = wire.infer(model, x.data()).expect("served");
                    let direct =
                        reference.infer(&Tensor::from_vec(x.data().to_vec(), &dims), &mut scratch);
                    assert_eq!(served, direct.data(), "wire answer diverged");
                }
            });
        }
    });
    println!(
        "all {} answers bit-identical to direct infer",
        clients * requests
    );

    // 4) Per-tenant statistics over the wire.
    for name in ["mlp", "convnet"] {
        println!("  {name:10} {}", probe.stats(name)?);
    }

    // 5) Deadlines: an impossible budget fails fast with a typed error.
    match probe.infer_deadline("mlp", &vec![0.0; 128], Some(Duration::from_micros(1))) {
        Err(WireError::Remote {
            code: ErrorCode::DeadlineExceeded,
            ..
        }) => {
            println!("\n1 µs deadline: typed DeadlineExceeded, as designed")
        }
        other => println!("\nunexpected deadline outcome: {other:?}"),
    }

    // 6) Hot removal: the tenant disappears mid-flight.
    registry.remove_model("convnet");
    match probe.infer("convnet", &vec![0.0; 4 * 16 * 16]) {
        Err(WireError::Remote {
            code: ErrorCode::UnknownModel,
            ..
        }) => {
            println!("after hot removal: typed UnknownModel")
        }
        other => println!("unexpected removal outcome: {other:?}"),
    }

    server.shutdown();
    println!("\nserver drained and stopped");
    Ok(())
}
