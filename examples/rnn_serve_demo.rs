//! Recurrent serving demo: train a block-circulant reservoir classifier
//! on frequency patterns, assemble it into a servable `Sequential`
//! (reservoir feature layer + trained dense readout), register it with
//! the wire registry, and classify sequences over TCP — every wire reply
//! checked bit-for-bit against the direct read-only inference path.
//!
//! This is the engine-unification payoff end to end: the same
//! spectral-plane core that serves FC nets and convnets runs the
//! recurrence (fused step: one accumulator set for both matmuls, bias and
//! tanh inside the IFFT's unpack pass, weight spectra resident across
//! timesteps).
//!
//! Run with `cargo run --release --example rnn_serve_demo`.

use std::sync::Arc;

use circnn::core::ReservoirClassifier;
use circnn::nn::InferScratch;
use circnn::serve::TenantConfig;
use circnn::tensor::init::seeded_rng;
use circnn::tensor::Tensor;
use circnn::wire::{ModelRegistry, WireClient, WireConfig, WireServer};

const STEPS: usize = 24;

fn make_seq(freq: f32, phase: f32) -> Vec<Vec<f32>> {
    (0..STEPS)
        .map(|t| vec![(freq * t as f32 + phase).sin()])
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== circnn recurrent serving demo ==\n");

    // 1) Train: a fixed circulant reservoir encodes each sequence; only
    //    the dense readout learns (low vs high frequency sinusoids).
    let mut sequences = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        let phase = i as f32 * 0.7;
        sequences.push(make_seq(0.25, phase));
        labels.push(0usize);
        sequences.push(make_seq(1.1, phase));
        labels.push(1);
    }
    let mut rng = seeded_rng(42);
    let mut clf = ReservoirClassifier::new(&mut rng, 1, 64, 16, 2)?;
    let acc = clf.fit(&sequences, &labels, 60)?;
    println!(
        "reservoir readout trained: {:.1}% on the training set",
        acc * 100.0
    );

    // 2) Assemble the servable network (CirculantRnn feature layer +
    //    readout) and register it: sequences arrive as flat [T·1] vectors
    //    that reshape to [T, 1] per sample.
    let net = clf.into_network();
    let registry = Arc::new(ModelRegistry::new(2)?);
    registry.add_network("reservoir", net, &[STEPS, 1], TenantConfig::default())?;

    // 3) Serve over TCP and classify held-out sequences.
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&registry), WireConfig::default())?;
    let addr = server.local_addr();
    println!("serving on {addr}\n");

    // Reference copy of the same network for the bitwise check.
    let mut rng = seeded_rng(42);
    let mut ref_clf = ReservoirClassifier::new(&mut rng, 1, 64, 16, 2)?;
    ref_clf.fit(&sequences, &labels, 60)?;
    let ref_net = ref_clf.into_network();
    let mut scratch = InferScratch::new();

    let mut wire = WireClient::connect(addr)?;
    let mut correct = 0;
    let mut total = 0;
    for i in 0..8 {
        let phase = 100.0 + i as f32 * 0.31;
        for (freq, label) in [(0.25f32, 0usize), (1.1, 1)] {
            let seq = make_seq(freq, phase);
            let flat: Vec<f32> = seq.iter().flatten().copied().collect();
            let served = wire.infer("reservoir", &flat)?;
            let direct = ref_net
                .infer(&Tensor::from_vec(flat, &[1, STEPS, 1]), &mut scratch)
                .data()
                .to_vec();
            assert_eq!(served, direct, "wire reply diverged from direct infer");
            let class = if served[0] >= served[1] { 0 } else { 1 };
            total += 1;
            if class == label {
                correct += 1;
            }
        }
    }
    println!("held-out sequences over the wire: {correct}/{total} correct");
    println!("every reply bit-identical to direct Sequential::infer");

    let stats = wire.stats("reservoir")?;
    println!("\ntenant stats: {stats}");
    server.shutdown();
    Ok(())
}
