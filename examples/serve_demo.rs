//! Serving-layer demo: concurrent clients against the dynamic-batching
//! server, with every answer checked bit-for-bit against direct batched
//! inference.
//!
//! Two servers are exercised:
//!
//! 1. a raw [`BlockCirculantMatrix`] operator (`y = W·x`), verified
//!    against direct [`BlockCirculantMatrix::matmat`] calls;
//! 2. a whole block-circulant MLP behind [`SequentialModel`], verified
//!    against the read-only [`Sequential::infer`] path.
//!
//! Run with `cargo run --release --example serve_demo`.

use std::sync::Arc;
use std::time::Duration;

use circnn::core::{BlockCirculantMatrix, CirculantLinear, Workspace};
use circnn::nn::{InferScratch, Layer, Linear, Relu, Sequential};
use circnn::serve::{SequentialModel, ServeConfig, Server};
use circnn::tensor::init::seeded_rng;
use circnn::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (m, n, k) = (512, 512, 16);
    let clients = 8;
    let requests_per_client = 50;

    println!("== circnn-serve demo ==\n");
    println!("1) raw operator: {m}×{n}, block {k}, {clients} concurrent clients\n");

    let w = Arc::new(BlockCirculantMatrix::random(&mut seeded_rng(7), m, n, k)?);
    let server = Server::start_shared(
        Arc::clone(&w),
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(300),
            queue_capacity: 256,
            workers: 2,
            ..Default::default()
        },
    )?;

    std::thread::scope(|s| {
        for c in 0..clients {
            let (server, w) = (&server, Arc::clone(&w));
            s.spawn(move || {
                let mut rng = seeded_rng(1000 + c as u64);
                let mut ws = Workspace::new();
                for _ in 0..requests_per_client {
                    let x = circnn::tensor::init::uniform(&mut rng, &[n], -1.0, 1.0);
                    let x = x.data().to_vec();
                    let served = server
                        .submit(x.clone())
                        .expect("accepting")
                        .wait()
                        .expect("served");
                    let direct = w.matmat(&x, 1, &mut ws).expect("direct");
                    assert_eq!(served, direct, "server diverged from direct matmat");
                }
            });
        }
    });
    let stats = server.shutdown();
    println!(
        "   all {} answers bit-identical to direct matmat",
        stats.requests
    );
    println!("   {stats}\n");

    println!("2) block-circulant MLP behind SequentialModel\n");
    let mut rng = seeded_rng(21);
    let mut net = Sequential::new()
        .add(CirculantLinear::new(&mut rng, n, 256, 16)?)
        .add(Relu::new())
        .add(CirculantLinear::new(&mut rng, 256, 128, 8)?)
        .add(Relu::new())
        .add(Linear::new(&mut rng, 128, 10));
    net.set_training(false);

    // Reference answers through the same read-only path the server uses.
    let inputs: Vec<Vec<f32>> = (0..64)
        .map(|i| {
            circnn::tensor::init::uniform(&mut seeded_rng(5000 + i), &[n], -1.0, 1.0)
                .data()
                .to_vec()
        })
        .collect();
    let mut scratch = InferScratch::new();
    let direct: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| {
            let t = Tensor::from_vec(x.clone(), &[1, n]);
            net.infer(&t, &mut scratch).data().to_vec()
        })
        .collect();

    let model = SequentialModel::new(net, n).map_err(std::io::Error::other)?;
    let server = Server::start(
        model,
        ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_micros(300),
            queue_capacity: 128,
            workers: 2,
            ..Default::default()
        },
    )?;
    let handles: Vec<_> = inputs
        .iter()
        .map(|x| server.submit(x.clone()).expect("accepting"))
        .collect();
    for (h, expect) in handles.into_iter().zip(&direct) {
        assert_eq!(&h.wait().expect("served"), expect, "MLP serving diverged");
    }
    let stats = server.shutdown();
    println!(
        "   all {} answers bit-identical to direct infer",
        stats.requests
    );
    println!("   {stats}");
    Ok(())
}
