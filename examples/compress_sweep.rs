//! The §2.4 "fine-grained tradeoff": sweep the block size k and report
//! compression vs accuracy on the MNIST stand-in (Fig. 7 ablation).
//!
//! ```text
//! cargo run --example compress_sweep --release
//! ```

use circnn::core::CirculantLinear;
use circnn::nn::trainer::{evaluate_accuracy, train_classifier, TrainConfig};
use circnn::nn::{Adam, Flatten, Linear, Relu, Sequential};
use circnn::tensor::init::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = circnn::data::catalog::mnist_like(800, 3);
    let (train, test) = full.split_at(600);
    println!("{:>5}  {:>12}  {:>9}", "k", "compression", "accuracy");
    for k in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut rng = seeded_rng(13);
        let mut net = Sequential::new()
            .add(Flatten::new())
            .add(CirculantLinear::new(&mut rng, 784, 128, k)?)
            .add(Relu::new())
            .add(Linear::new(&mut rng, 128, 10));
        let mut opt = Adam::new(0.002);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 16,
            shuffle_seed: 1,
            ..Default::default()
        };
        let _ = train_classifier(&mut net, &mut opt, &train.images, &train.labels, &cfg);
        let acc = evaluate_accuracy(&mut net, &test.images, &test.labels);
        println!("{k:>5}  {:>11}x  {:>8.1}%", k, 100.0 * acc);
    }
    println!("\nlarger k -> more compression, eventually costing accuracy (paper Sec. 2.4)");
    Ok(())
}
