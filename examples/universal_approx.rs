//! §3.3 empirically: block-circulant networks are universal approximators,
//! with error falling as the width grows — at a fraction of the dense
//! parameter count.
//!
//! ```text
//! cargo run --example universal_approx --release
//! ```

use circnn::core::approx::{circulant_regressor, dense_regressor, train_and_eval};
use circnn::tensor::init::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("target: fixed smooth function on [0,1]^8; held-out MSE vs hidden width\n");
    println!(
        "{:>6}  {:>16}  {:>14}  {:>16}  {:>14}",
        "width", "circulant MSE", "circ params", "dense MSE", "dense params"
    );
    for width in [8usize, 16, 32, 64, 128] {
        let k = width.min(8);
        let mut rng = seeded_rng(9);
        let mut circ = circulant_regressor(&mut rng, width, k)?;
        let rc = train_and_eval(&mut circ, width, 30, 9);
        let mut rng = seeded_rng(9);
        let mut dense = dense_regressor(&mut rng, width);
        let rd = train_and_eval(&mut dense, width, 30, 9);
        println!(
            "{width:>6}  {:>16.5}  {:>14}  {:>16.5}  {:>14}",
            rc.test_mse, rc.params, rd.test_mse, rd.params
        );
    }
    println!("\nerror falls with width for both; the circulant net needs ~k x fewer parameters");
    Ok(())
}
