//! The hardware side: run Algorithm 3 (design-space optimization) and then
//! simulate AlexNet on every platform preset (the Fig. 13/15 pipeline).
//!
//! ```text
//! cargo run --example hw_design_space --release
//! ```

use circnn::hw::dse::{evaluate, optimize, DseConfig};
use circnn::hw::netdesc::NetworkDescriptor;
use circnn::hw::platform;
use circnn::hw::simulator::simulate;

fn main() {
    // Algorithm 3 on the Cyclone V envelope.
    let cfg = DseConfig::cyclone_v();
    let result = optimize(&cfg);
    println!("== Algorithm 3 (block 128, Cyclone V) ==");
    println!("bandwidth-derived p bound : {}", result.p_bound);
    println!(
        "selected (p, d)           : ({}, {}) at {:.1} butterflies/cycle, {:.2} W\n",
        result.best.p, result.best.d, result.best.throughput, result.best.power_w
    );
    println!("sample of the design space (throughput / power / efficiency):");
    for (p, d) in [
        (8usize, 1usize),
        (16, 1),
        (32, 1),
        (32, 2),
        (32, 3),
        (38, 3),
    ] {
        let e = evaluate(&cfg, p, d);
        println!(
            "  p={p:>3} d={d}: {:>6.1} bf/cyc  {:>5.2} W  {:>7.1} bf/cyc/W",
            e.throughput, e.power_w, e.metric
        );
    }

    // Simulate AlexNet on every platform.
    println!("\n== AlexNet (block-circulant) across platforms ==");
    let net = NetworkDescriptor::alexnet_circulant();
    for p in [
        platform::cyclone_v(),
        platform::asic_45nm(),
        platform::asic_near_threshold(),
    ] {
        let r = simulate(&net, &p);
        println!("{}", r.summary_row());
    }
    let dense = NetworkDescriptor::alexnet_dense();
    let r = simulate(&dense, &platform::dense_mac_baseline());
    println!("{}   <- uncompressed, weights in DRAM", r.summary_row());
}
