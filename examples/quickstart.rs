//! Quickstart: the block-circulant representation in five minutes.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Demonstrates the paper's three headline properties on one layer:
//! O(n) storage, O(n log n) compute, and direct training (no conversion
//! from a dense model).

use circnn::core::{BlockCirculantMatrix, CirculantLinear};
use circnn::nn::{Layer, MseLoss, Optimizer, Sgd};
use circnn::tensor::{init::seeded_rng, Tensor};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(7);

    // 1. Storage: a 1024×2048 weight matrix as 128-blocks.
    let w = BlockCirculantMatrix::random(&mut rng, 1024, 2048, 128)?;
    println!("== storage ==");
    println!("dense parameters     : {}", w.dense_parameters());
    println!("circulant parameters : {}", w.num_parameters());
    println!("compression ratio    : {:.0}x\n", w.compression_ratio());

    // 2. Compute: the FFT path matches the dense materialization and is
    //    asymptotically cheaper.
    let x: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.01).sin()).collect();
    let t = Instant::now();
    let fast = w.matvec(&x)?;
    let fast_time = t.elapsed();
    let dense = w.to_dense();
    let t = Instant::now();
    let slow = dense.matvec(&x);
    let slow_time = t.elapsed();
    let max_err = fast
        .iter()
        .zip(&slow)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("== compute ==");
    println!("FFT path   : {fast_time:?}");
    println!("dense path : {slow_time:?}");
    println!("max |diff| : {max_err:.2e}\n");

    // 3. Training: Algorithm 2 end to end — fit y = W*·x with a circulant
    //    layer; the loss drops without ever materializing a dense matrix.
    let mut layer = CirculantLinear::new(&mut rng, 32, 32, 8)?;
    let target_op = BlockCirculantMatrix::random(&mut rng, 32, 32, 8)?;
    let mse = MseLoss::new();
    // 0.05/0.9 diverges on unlucky inits (effective step ~0.5); this is
    // stable across seeds.
    let mut opt = Sgd::new(0.02, 0.5);
    println!("== training (fit a random circulant operator) ==");
    for step in 0..=60 {
        let xs: Vec<f32> = (0..32).map(|i| ((i + step) as f32 * 0.3).sin()).collect();
        let target = Tensor::from_vec(target_op.matvec(&xs)?, &[32]);
        let out = layer.forward(&Tensor::from_vec(xs, &[32]));
        let (loss, grad) = mse.loss(&out, &target);
        layer.zero_grads();
        layer.backward(&grad);
        opt.step(&mut layer);
        if step % 20 == 0 {
            println!("step {step:>3}: loss {loss:.5}");
        }
    }
    Ok(())
}
