//! Sharded-serving demo: one big block-circulant operator is row-sliced
//! across two shard processes (here: two `WireServer`s), a `ShardRouter`
//! scatter-gathers the segments, and a small MLP tenant is forwarded
//! whole to a ring-chosen replica. Every answer is checked bit-for-bit
//! against the single-process path, then a replica is killed to show
//! transparent failover.
//!
//! Run with `cargo run --release --example shard_demo`.

use std::sync::Arc;
use std::time::Duration;

use circnn::core::{BlockCirculantMatrix, CirculantLinear, Workspace};
use circnn::nn::{InferScratch, Layer, Linear, Relu, Sequential};
use circnn::serve::TenantConfig;
use circnn::shard::topology::{segment_ranges, split_operator, ClusterSpec, ShardSpec};
use circnn::shard::{spawn_health_poller, RouterConfig, RouterServer, ShardRouter};
use circnn::tensor::init::{seeded_rng, uniform};
use circnn::wire::{ModelRegistry, WireClient, WireConfig, WireServer};

fn mlp(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new()
        .add(CirculantLinear::new(&mut rng, 64, 128, 16).expect("valid block"))
        .add(Relu::new())
        .add(Linear::new(&mut rng, 128, 10))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== circnn-shard demo ==\n");

    // 1) One 256x192 operator, split into two row-slices. Each shard gets
    //    its slice; shard 0 additionally gets a second replica so we can
    //    kill the primary later.
    let w = BlockCirculantMatrix::random(&mut seeded_rng(11), 256, 192, 16)?;
    let slices = split_operator(&w, 2)?;
    println!(
        "operator {}x{} (k={}) split into {} slices: {:?}",
        w.rows(),
        w.cols(),
        w.block_size(),
        slices.len(),
        segment_ranges(&slices)
    );

    let mut servers: Vec<Vec<WireServer>> = Vec::new();
    let mut spec = ClusterSpec { shards: Vec::new() };
    for slice in &slices {
        let replicas = if servers.is_empty() { 2 } else { 1 };
        let mut shard_servers = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..replicas {
            let registry = Arc::new(ModelRegistry::new(2)?);
            registry.add_segment("big", slice.clone(), TenantConfig::default())?;
            // Forwarded tenants are registered whole on every replica.
            registry.add_network("mlp", mlp(7), &[64], TenantConfig::default())?;
            let server = WireServer::bind("127.0.0.1:0", registry, WireConfig::default())?;
            println!(
                "  shard {} replica on {} serves rows {}..{}",
                spec.shards.len(),
                server.local_addr(),
                slice.row_start,
                slice.row_end()
            );
            addrs.push(server.local_addr());
            shard_servers.push(server);
        }
        servers.push(shard_servers);
        spec.shards.push(ShardSpec { replicas: addrs });
    }

    // 2) The router: "big" scatter-gathers across the shards, "mlp" is
    //    forwarded whole by consistent hashing. A background poller keeps
    //    replica health fresh.
    let router = Arc::new(ShardRouter::new(&spec, RouterConfig::default())?);
    router.add_sharded_model("big", w.cols(), &segment_ranges(&slices))?;
    router.add_forwarded_model("mlp", 64, 10)?;
    let poller = spawn_health_poller(Arc::clone(&router), Duration::from_millis(200));

    // 3) An ordinary wire front-end: clients speak plain Infer frames and
    //    never learn the cluster exists.
    let front = RouterServer::bind("127.0.0.1:0", Arc::clone(&router), WireConfig::default())?;
    println!("\nrouter serving on {}", front.local_addr());
    let mut client = WireClient::connect(front.local_addr())?;
    for m in client.list_models()? {
        println!(
            "  model {:>4}: {:>3} -> {}",
            m.name, m.input_len, m.output_len
        );
    }

    // 4) Serve and verify bit-for-bit against the single-process path.
    let x = uniform(&mut seeded_rng(42), &[192], -1.0, 1.0)
        .data()
        .to_vec();
    let served = client.infer("big", &x)?;
    let direct = w.matmat(&x, 1, &mut Workspace::new())?;
    assert_eq!(served, direct, "stitched reply must be bit-identical");
    println!("\nbig: stitched reply is bit-identical to the single-process product");

    let xm = uniform(&mut seeded_rng(43), &[64], -1.0, 1.0)
        .data()
        .to_vec();
    let served = client.infer("mlp", &xm)?;
    let mut reference = mlp(7);
    reference.set_training(false);
    let expect = reference
        .infer(
            &circnn::tensor::Tensor::from_vec(xm.clone(), &[1, 64]),
            &mut InferScratch::new(),
        )
        .data()
        .to_vec();
    assert_eq!(served, expect, "forwarded reply must be bit-identical");
    println!("mlp: forwarded reply is bit-identical to in-process inference");

    // 5) Kill shard 0's primary replica; the router fails over and the
    //    answers stay bit-identical.
    let primary = servers[0].remove(0);
    primary.shutdown();
    println!("\nkilled shard 0's primary replica");
    for i in 0..4 {
        let x = uniform(&mut seeded_rng(100 + i), &[192], -1.0, 1.0)
            .data()
            .to_vec();
        let served = client.infer("big", &x)?;
        assert_eq!(served, w.matmat(&x, 1, &mut Workspace::new())?);
    }
    println!("4 post-kill requests served, all bit-identical (failover is invisible)");
    println!("healthy replicas after poll: {}", router.poll_health_once());

    drop(client);
    poller.stop();
    front.shutdown();
    router.drain_pools();
    for shard in servers {
        for server in shard {
            server.shutdown();
        }
    }
    println!("\nall servers drained; demo complete");
    Ok(())
}
