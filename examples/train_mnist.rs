//! Fig. 7(b) in miniature: train LeNet-5 dense vs block-circulant on the
//! synthetic MNIST stand-in and compare accuracy and model size.
//!
//! ```text
//! cargo run --example train_mnist --release
//! ```

use circnn::models::{lenet5_circulant, lenet5_dense};
use circnn::nn::trainer::{evaluate_accuracy, train_classifier, TrainConfig};
use circnn::nn::{Adam, Layer, Sequential};
use circnn::tensor::init::seeded_rng;

fn run(name: &str, mut net: Sequential) -> Result<(), Box<dyn std::error::Error>> {
    let full = circnn::data::catalog::mnist_like(1000, 11);
    let (train, test) = full.split_at(800);
    let mut opt = Adam::new(0.002);
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 16,
        shuffle_seed: 5,
        verbose: true,
        ..Default::default()
    };
    println!("-- {name} ({} parameters) --", net.param_count());
    let report = train_classifier(&mut net, &mut opt, &train.images, &train.labels, &cfg);
    let acc = evaluate_accuracy(&mut net, &test.images, &test.labels);
    println!(
        "{name}: final train loss {:.4}, test accuracy {:.1}%\n",
        report.final_loss(),
        100.0 * acc
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(42);
    let dense = lenet5_dense(&mut rng);
    let mut rng = seeded_rng(42);
    let circulant = lenet5_circulant(&mut rng);
    println!(
        "parameter reduction: {:.1}x\n",
        dense.param_count() as f64 / circulant.param_count() as f64
    );
    run("dense LeNet-5", dense)?;
    run("block-circulant LeNet-5", circulant)?;
    Ok(())
}
