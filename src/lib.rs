//! # circnn — facade crate
//!
//! Re-exports the whole CirCNN reproduction workspace under one roof so the
//! examples and integration tests can `use circnn::…` uniformly.
//!
//! The interesting code lives in the member crates:
//!
//! * [`fft`] — FFT substrate (complex/real plans, fixed point, op counts).
//! * [`tensor`] — dense tensors, im2col, initializers.
//! * [`nn`] — training substrate (layers, losses, optimizers, baselines).
//! * [`core`] — **the paper's contribution**: block-circulant matrices and
//!   the FFT-based FC/CONV layers (Algorithms 1–2).
//! * [`quant`] — fixed-point quantization (16-bit default, 4-bit study).
//! * [`data`] — synthetic datasets standing in for MNIST/CIFAR-10/SVHN/….
//! * [`hw`] — cycle/energy simulator of the CirCNN accelerator (Section 4).
//! * [`models`] — LeNet-5 / CIFAR / SVHN / AlexNet model zoo.
//! * [`serve`] — dynamic request-batching inference server (coalesces
//!   requests into `[B, n]` slabs for the batched engine), including the
//!   multi-tenant deadline-aware scheduler.
//! * [`wire`] — TCP wire protocol, model registry and network serving
//!   front-end over [`serve`].
//! * [`shard`] — sharded serving tier: row-slices an operator across
//!   shard processes, scatter-gathers bit-identical outputs, forwards
//!   small tenants by consistent hashing with replica failover.
//!
//! ## Quickstart
//!
//! ```
//! use circnn::core::BlockCirculantMatrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 256×512 weight matrix stored as 8×16 circulant blocks of size 32:
//! // 4096 parameters instead of 131072 (32× compression).
//! let w = BlockCirculantMatrix::zeros(256, 512, 32)?;
//! assert_eq!(w.num_parameters(), 256 * 512 / 32);
//! let y = w.matvec(&vec![0.5_f32; 512])?;
//! assert_eq!(y.len(), 256);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use circnn_core as core;
pub use circnn_data as data;
pub use circnn_fft as fft;
pub use circnn_hw as hw;
pub use circnn_models as models;
pub use circnn_nn as nn;
pub use circnn_quant as quant;
pub use circnn_serve as serve;
pub use circnn_shard as shard;
pub use circnn_tensor as tensor;
pub use circnn_wire as wire;
