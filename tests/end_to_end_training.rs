//! End-to-end training integration: dense and block-circulant models
//! trained through identical pipelines on the synthetic benchmarks —
//! the Fig. 7(b) comparison at CI scale.

use circnn::models::zoo::Benchmark;
use circnn::nn::trainer::{evaluate_accuracy, train_classifier, TrainConfig};
use circnn::nn::{Adam, Layer};
use circnn::tensor::init::seeded_rng;

fn train_pair(benchmark: Benchmark, train_n: usize, test_n: usize, epochs: usize) -> (f32, f32) {
    // Single generation, then split: prototypes are seed-derived, so the
    // held-out set must come from the same generation pass.
    let full = benchmark.dataset(train_n + test_n, 11);
    let (train, test) = full.split_at(train_n);
    let cfg = TrainConfig {
        epochs,
        batch_size: 16,
        shuffle_seed: 7,
        ..Default::default()
    };
    let mut rng = seeded_rng(42);
    let mut dense = benchmark.build_dense(&mut rng);
    let mut opt = Adam::new(0.002);
    let _ = train_classifier(&mut dense, &mut opt, &train.images, &train.labels, &cfg);
    let acc_dense = evaluate_accuracy(&mut dense, &test.images, &test.labels);
    let mut rng = seeded_rng(42);
    let mut circ = benchmark.build_circulant(&mut rng);
    let mut opt = Adam::new(0.002);
    let _ = train_classifier(&mut circ, &mut opt, &train.images, &train.labels, &cfg);
    let acc_circ = evaluate_accuracy(&mut circ, &test.images, &test.labels);
    (acc_dense, acc_circ)
}

#[test]
fn circulant_lenet_learns_the_mnist_standin() {
    // 5 epochs: the circulant net needs a little longer than the dense one
    // to converge, and the Fig.-7b gap claim is about converged models.
    let (dense, circ) = train_pair(Benchmark::Mnist, 300, 100, 5);
    assert!(dense > 0.6, "dense accuracy {dense}");
    assert!(circ > 0.6, "circulant accuracy {circ}");
    // The Fig.-7b claim at CI scale: the gap is small.
    assert!(
        (dense - circ).abs() < 0.25,
        "dense {dense} vs circulant {circ} diverged"
    );
}

#[test]
fn circulant_svhn_net_learns() {
    let (dense, circ) = train_pair(Benchmark::Svhn, 250, 100, 6);
    assert!(dense > 0.4, "dense accuracy {dense}");
    assert!(circ > 0.4, "circulant accuracy {circ}");
}

#[test]
fn circulant_models_are_much_smaller_at_similar_topology() {
    let mut rng = seeded_rng(1);
    for b in Benchmark::all() {
        let dense = b.build_dense(&mut rng);
        let circ = b.build_circulant(&mut rng);
        let ratio = dense.param_count() as f64 / circ.param_count() as f64;
        assert!(ratio > 3.0, "{}: only {ratio:.1}x smaller", b.name());
    }
}

#[test]
fn training_is_deterministic_given_seeds() {
    let (d1, c1) = train_pair(Benchmark::Mnist, 100, 40, 1);
    let (d2, c2) = train_pair(Benchmark::Mnist, 100, 40, 1);
    assert_eq!(d1, d2);
    assert_eq!(c1, c2);
}
