//! Fault injection + quick-mode smoke runs of every experiment harness
//! (the binaries exercised as library calls so `cargo test` covers them).

use circnn::models::robustness::{accuracy_under_faults, inject_bit_flips};
use circnn::models::zoo::Benchmark;
use circnn::nn::trainer::{evaluate_accuracy, train_classifier, TrainConfig};
use circnn::nn::Adam;
use circnn::tensor::init::seeded_rng;

#[test]
fn few_bit_flips_degrade_gracefully_many_destroy() {
    let full = Benchmark::Mnist.dataset(280, 1);
    let (train, test) = full.split_at(200);
    let mut rng = seeded_rng(3);
    let mut net = Benchmark::Mnist.build_circulant(&mut rng);
    let mut opt = Adam::new(0.002);
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 16,
        ..Default::default()
    };
    let _ = train_classifier(&mut net, &mut opt, &train.images, &train.labels, &cfg);
    let clean = evaluate_accuracy(&mut net, &test.images, &test.labels);
    assert!(clean > 0.5, "model failed to train: {clean}");
    // A handful of flips: accuracy holds up.
    let mut light = {
        let mut rng2 = seeded_rng(3);
        let mut fresh = Benchmark::Mnist.build_circulant(&mut rng2);
        let mut opt2 = Adam::new(0.002);
        let _ = train_classifier(&mut fresh, &mut opt2, &train.images, &train.labels, &cfg);
        fresh
    };
    inject_bit_flips(&mut light, 3, &mut seeded_rng(5));
    let light_acc = evaluate_accuracy(&mut light, &test.images, &test.labels);
    assert!(
        light_acc > clean - 0.3,
        "3 flips collapsed accuracy: {clean} -> {light_acc}"
    );
}

#[test]
fn fault_curve_is_monotone_in_expectation_at_the_extremes() {
    // Untrained models: the curve utility itself must be well-formed.
    let ds = Benchmark::Mnist.dataset(30, 9);
    let mut rng = seeded_rng(11);
    let pts = accuracy_under_faults(
        |r| Benchmark::Mnist.build_circulant(r),
        &ds,
        &[0, 2, 2000],
        &mut rng,
    );
    assert_eq!(pts.len(), 3);
    assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.accuracy)));
}

#[test]
fn quick_mode_experiment_suite_runs() {
    // Exercises fig13/14/15 + alg3 end to end (cheap, simulation-only).
    let f13 = circnn_bench::fig13::run();
    assert!(f13.ours.equiv_gops_per_w > 100.0);
    let f14 = circnn_bench::fig14::run();
    assert_eq!(f14.len(), 3);
    let f15 = circnn_bench::fig15::run();
    assert!(f15.asic_improvement() > 1.0);
    let alg3 = circnn_bench::alg3::example();
    assert!((alg3.p_perf_gain - 0.538).abs() < 0.02);
}
