//! Compression-pipeline integration: train → quantize → account — the full
//! Fig. 7 path, plus the baselines (pruning with index overhead, low-rank,
//! the [54] single circulant).

use circnn::core::compression::{fc_storage, QUANT_BITS};
use circnn::core::{CirculantLinear, SingleCirculantLinear};
use circnn::models::zoo::Benchmark;
use circnn::nn::lowrank::LowRankLinear;
use circnn::nn::prune::{magnitude_prune, CsrMatrix};
use circnn::nn::trainer::{evaluate_accuracy, train_classifier, TrainConfig};
use circnn::nn::{Adam, Layer, Linear};
use circnn::quant::fake_quantize_layer;
use circnn::tensor::init::seeded_rng;

#[test]
fn sixteen_bit_quantization_preserves_trained_accuracy() {
    let full = Benchmark::Mnist.dataset(350, 5);
    let (train, test) = full.split_at(250);
    let mut rng = seeded_rng(2);
    let mut net = Benchmark::Mnist.build_circulant(&mut rng);
    let mut opt = Adam::new(0.002);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 16,
        ..Default::default()
    };
    let _ = train_classifier(&mut net, &mut opt, &train.images, &train.labels, &cfg);
    let before = evaluate_accuracy(&mut net, &test.images, &test.labels);
    fake_quantize_layer(&mut net, 16);
    let after16 = evaluate_accuracy(&mut net, &test.images, &test.labels);
    assert!(
        (before - after16).abs() < 0.05,
        "16-bit quantization changed accuracy: {before} -> {after16}"
    );
    // 2-bit wrecks it (the paper's 4-bit AlexNet collapse, exaggerated for
    // a small model).
    fake_quantize_layer(&mut net, 2);
    let after2 = evaluate_accuracy(&mut net, &test.images, &test.labels);
    assert!(
        after2 < before - 0.1 || after2 < 0.6,
        "2-bit should degrade: {after2}"
    );
}

#[test]
fn storage_accounting_matches_live_layer_parameters() {
    let mut rng = seeded_rng(3);
    let layer = CirculantLinear::new(&mut rng, 1024, 512, 128).unwrap();
    let account = fc_storage("fc", 512, 1024, 128);
    // Accounting excludes bias (paper convention); layer includes it.
    assert_eq!(
        account.compressed_params as usize,
        layer.param_count() - 512
    );
    assert_eq!(account.compressed_bits, QUANT_BITS);
}

#[test]
fn pruning_baseline_pays_index_overhead_circulant_does_not() {
    let mut rng = seeded_rng(4);
    let mut dense = Linear::new(&mut rng, 128, 128);
    magnitude_prune(&mut dense, 0.9);
    let csr = CsrMatrix::from_dense(dense.weight());
    // Pruned-to-10% storage with 16-bit values + 16-bit indices.
    let pruned_bytes = csr.storage_bytes(16, 16);
    // Circulant at k = 16 stores 128·128/16 params at 16 bits, no indices.
    let circ_bytes = (128u64 * 128 / 16) * 2;
    assert!(
        circ_bytes < pruned_bytes,
        "circulant {circ_bytes} B should beat pruned-with-indices {pruned_bytes} B at similar reduction"
    );
}

#[test]
fn single_circulant_baseline_wastes_storage_on_rectangular_layers() {
    let mut rng = seeded_rng(5);
    // 1200→80: [54] pads to one 2048-vector; a third of the stored weights
    // only ever touch padding. Block-circulant layers (k ≤ min dims) waste
    // nothing and keep the accuracy knob.
    let single = SingleCirculantLinear::new(&mut rng, 1200, 80).unwrap();
    assert_eq!(single.padded_size(), 2048);
    assert!(
        single.padding_waste() > 0.3,
        "waste = {}",
        single.padding_waste()
    );
}

#[test]
fn low_rank_baseline_compresses_but_needs_more_params_for_same_error() {
    let mut rng = seeded_rng(6);
    let dense = Linear::new(&mut rng, 64, 64);
    let lr = LowRankLinear::compress(&dense, 8);
    assert!(lr.param_count() < dense.param_count());
    // Reconstruction error at 4× compression is nonzero for a random
    // (full-rank) matrix — the systematic-method accuracy cost the paper
    // cites (§2.2).
    let err: f32 = lr
        .reconstruct()
        .data()
        .iter()
        .zip(dense.weight().data())
        .map(|(a, b)| (a - b).powi(2))
        .sum();
    assert!(err > 0.01 * dense.weight().norm_sqr());
}
