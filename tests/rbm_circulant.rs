//! RBM/DBN integration: contrastive divergence over the block-circulant
//! operator (the §3.4 "training in the compressed representation" claim) —
//! the learning algorithm is identical, only `LinearOp` changes.

use circnn::core::BlockCirculantMatrix;
use circnn::nn::rbm::Rbm;
use circnn::nn::{DenseOp, LinearOp};
use circnn::tensor::init::seeded_rng;
use rand::Rng;

fn patterns(n: usize) -> Vec<Vec<f32>> {
    // Two complementary binary patterns plus a striped one.
    let a: Vec<f32> = (0..n).map(|i| f32::from(i < n / 2)).collect();
    let b: Vec<f32> = a.iter().map(|&x| 1.0 - x).collect();
    let c: Vec<f32> = (0..n).map(|i| f32::from(i % 2 == 0)).collect();
    vec![a, b, c]
}

fn train_rbm<Op: LinearOp>(op: Op, n: usize, epochs: usize, seed: u64) -> (f32, f32) {
    let mut rbm = Rbm::new(op);
    let data = patterns(n);
    let mut rng = seeded_rng(seed);
    let initial: f32 = data
        .iter()
        .map(|v| rbm.reconstruction_error(v))
        .sum::<f32>()
        / data.len() as f32;
    for _ in 0..epochs {
        for v in &data {
            rbm.cd1_step(v, 0.1, &mut rng);
        }
    }
    let trained: f32 = data
        .iter()
        .map(|v| rbm.reconstruction_error(v))
        .sum::<f32>()
        / data.len() as f32;
    (initial, trained)
}

#[test]
fn circulant_rbm_learns_binary_patterns() {
    let n = 32;
    let mut rng = seeded_rng(1);
    let mut op = BlockCirculantMatrix::zeros(24, n, 8).unwrap();
    // Tiny random init through the LinearOp surface.
    let h: Vec<f32> = (0..24).map(|_| rng.gen_range(-0.05f32..0.05)).collect();
    let v: Vec<f32> = (0..n).map(|_| rng.gen_range(-0.05f32..0.05)).collect();
    op.outer_update(&h, &v, 1.0);
    let (initial, trained) = train_rbm(op, n, 300, 7);
    assert!(
        trained < initial * 0.6,
        "circulant RBM did not learn: {initial} -> {trained}"
    );
    assert!(trained < 0.12, "final reconstruction error {trained}");
}

#[test]
fn circulant_and_dense_rbms_reach_similar_quality() {
    let n = 32;
    let (_, dense) = train_rbm(DenseOp::zeros(24, n), n, 300, 7);
    let mut rng = seeded_rng(2);
    let mut op = BlockCirculantMatrix::zeros(24, n, 8).unwrap();
    let h: Vec<f32> = (0..24).map(|_| rng.gen_range(-0.05f32..0.05)).collect();
    let v: Vec<f32> = (0..n).map(|_| rng.gen_range(-0.05f32..0.05)).collect();
    op.outer_update(&h, &v, 1.0);
    let (_, circ) = train_rbm(op, n, 300, 7);
    assert!(
        circ < dense * 4.0 + 0.05,
        "circulant RBM ({circ}) far behind dense ({dense})"
    );
}

#[test]
fn circulant_op_stores_fraction_of_dense_parameters() {
    let dense = DenseOp::zeros(512, 512);
    let circ = BlockCirculantMatrix::zeros(512, 512, 64).unwrap();
    assert_eq!(LinearOp::param_count(&dense), 512 * 512);
    assert_eq!(LinearOp::param_count(&circ), 512 * 512 / 64);
}
