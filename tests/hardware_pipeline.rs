//! Hardware-pipeline integration: every zoo descriptor simulates on every
//! platform; the cross-platform orderings the paper reports must hold.

use circnn::hw::netdesc::NetworkDescriptor;
use circnn::hw::platform;
use circnn::hw::simulator::simulate;
use circnn::models::zoo::Benchmark;

#[test]
fn every_benchmark_descriptor_simulates_on_every_platform() {
    let platforms = [
        platform::cyclone_v(),
        platform::asic_45nm(),
        platform::asic_near_threshold(),
    ];
    for b in Benchmark::all() {
        for p in &platforms {
            let r = simulate(&b.descriptor(), p);
            assert!(
                r.fps.is_finite() && r.fps > 0.0,
                "{} on {}",
                b.name(),
                p.name
            );
            assert!(r.energy_j > 0.0);
            assert!(
                r.equiv_gops >= r.actual_gops * 0.5,
                "{} on {}",
                b.name(),
                p.name
            );
        }
    }
}

#[test]
fn platform_ordering_fpga_asic_nt() {
    // Efficiency: NT > ASIC > FPGA; throughput: ASIC > FPGA > NT (clocked
    // down) — the Fig.-15 scatter's geometry.
    let net = NetworkDescriptor::alexnet_circulant();
    let fpga = simulate(&net, &platform::cyclone_v());
    let asic = simulate(&net, &platform::asic_45nm());
    let nt = simulate(&net, &platform::asic_near_threshold());
    assert!(nt.equiv_gops_per_w > asic.equiv_gops_per_w);
    assert!(asic.equiv_gops_per_w > fpga.equiv_gops_per_w);
    assert!(asic.equiv_gops > fpga.equiv_gops);
    assert!(asic.equiv_gops > nt.equiv_gops);
}

#[test]
fn compressed_weights_fit_on_chip_dense_do_not() {
    // The §4.4 FPGA observation: compressed AlexNet ≈ a few MB (fits in
    // block RAM); dense fp32 AlexNet ≈ 240 MB (does not).
    let circ = NetworkDescriptor::alexnet_circulant().weight_bytes(16);
    let dense = NetworkDescriptor::alexnet_dense().weight_bytes(32);
    assert!(circ < 8 * 1024 * 1024, "circulant bytes {circ}");
    assert!(dense > 100 * 1024 * 1024, "dense bytes {dense}");
}

#[test]
fn more_parallelism_never_slows_inference() {
    let net = NetworkDescriptor::lenet5_circulant();
    let mut base = platform::cyclone_v();
    let slow = simulate(&net, &base);
    base.bcb = circnn::hw::bcb::BasicComputingBlock::new(64, 3);
    base.cmul_lanes *= 2;
    let fast = simulate(&net, &base);
    assert!(fast.cycles <= slow.cycles);
}

#[test]
fn bigger_networks_cost_more_cycles_and_energy() {
    let p = platform::cyclone_v();
    let lenet = simulate(&NetworkDescriptor::lenet5_circulant(), &p);
    let alexnet = simulate(&NetworkDescriptor::alexnet_circulant(), &p);
    assert!(alexnet.cycles > 10.0 * lenet.cycles);
    assert!(alexnet.energy_j > 10.0 * lenet.energy_j);
}

#[test]
fn memory_is_not_the_bottleneck_on_circulant_configs() {
    // §5.4: "weight storage is no longer the system bottleneck".
    let r = simulate(
        &NetworkDescriptor::alexnet_circulant(),
        &platform::asic_45nm(),
    );
    let frac = r.memory_energy_fraction();
    assert!(frac < 0.5, "memory fraction {frac}");
    assert!(frac > 0.02, "memory should still be visible: {frac}");
}
